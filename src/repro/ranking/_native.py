"""Optional compiled CSR block-step kernel for the blocked engine.

scipy's ``csr_matvecs`` walks the matrix with a scalar inner loop and writes
every partial sum back to memory, which makes a blocked multiplication cost
as much per column as ``k`` separate matrix–vector products.  This module
compiles (once per process, with the system C compiler) a kernel that keeps
each row's ``k`` accumulators in registers, prefetches the gathered rows of
``X`` (the CSR column indices tell us which rows are needed several nonzeros
ahead), and fuses the damping/jump update and the per-column residual sums,
computing

    Y = damping * (A @ X) + jump        and        r_c = sum_i |Y_ic - X_ic|

in one pass over the matrix.  The inner loop is specialized at compile time
for the block widths the engine actually uses (:data:`SPECIALIZED_WIDTHS`),
so the accumulators live in SIMD registers instead of a stack array, and the
jump term is passed *row-compacted*: restart distributions put mass on a few
base-set rows, so streaming a dense ``(n, k)`` jump slab every iteration
would roughly double the kernel's memory traffic for nothing.

Per column the accumulation order of ``Y`` is exactly scipy's sequential
per-row order and the update is the serial engine's ``multiply then add``,
compiled with ``-ffp-contract=off`` so no FMA contraction changes the
rounding — the scores are bit-for-bit compatible with
:func:`repro.ranking.pagerank.power_iteration`.  (Rows missing from the
jump list skip the ``+ 0.0`` — identical for every value except a ``-0.0``
accumulator, which nonnegative ranking iterates never produce.)  The fused
residuals use a sequential row-order sum (numpy uses pairwise summation), so
they agree with the numpy value only to ~n·eps relative; the engine treats
them as the fast approximate residual and recomputes exactly near the
tolerance boundary.

The kernel is best-effort: if no C compiler is available, compilation fails,
or a runtime probe shows the compiled code is *not* bitwise-identical to the
scipy sequence (an unexpected toolchain quirk), the caller silently falls
back to the scipy path.  Set ``REPRO_NO_NATIVE=1`` to force the fallback.
"""

from __future__ import annotations

import ctypes
import os
import subprocess
import tempfile
import threading

import numpy as np
from scipy import sparse

#: Hard cap on the block width the kernel's stack accumulator supports.
MAX_WIDTH = 512

#: Widths with a fully-unrolled, register-resident fast path.  Other widths
#: run through a runtime-width body that is correct but roughly half as fast;
#: callers that control their chunking should prefer these.
SPECIALIZED_WIDTHS = (2, 4, 8, 16, 32, 64)

_SOURCE = r"""
#include <stdint.h>
#include <math.h>

/* One step of blocked power iteration over a CSR matrix:
 *
 *     Y = damping * (A @ X) + jump,    resid[c] = sum_i |Y[i,c] - X[i,c]|
 *
 * X and Y are (n_row, width) C-contiguous.  The jump term is row-compacted:
 * jump_rows lists (sorted, ascending) the rows with any jump mass and jump
 * holds those rows' values as an (n_jump, width) slab — restart vectors are
 * sparse, and not streaming an (n_row, width) slab of mostly zeros is worth
 * more than the branch.  Rows not listed skip the add entirely, which is
 * bitwise-identical to adding 0.0 unless the accumulator is -0.0.
 *
 * Per column the accumulation order matches scipy's csr_matvec (sequential
 * over each row's nonzeros, starting from 0), and the update is `multiply
 * then add`, so with FMA contraction disabled Y is bit-for-bit what width
 * separate scipy matvecs (plus a jump add on listed rows) would produce.
 * The resid sums are in sequential row order (approximate relative to
 * numpy's pairwise sum by ~n*eps).
 *
 * DEFINE_STEP stamps out a width-specialized body: with W a compile-time
 * constant the accumulator array becomes SIMD registers and the inner loops
 * fully unroll.  The gathered rows of X are software-prefetched a few
 * nonzeros ahead (every cache line of the row); CSR gathers are
 * latency-bound on this access pattern.
 */

#define PREFETCH_DISTANCE 12

#define STEP_BODY(W)                                                         \
    int64_t jp = 0;                                                          \
    for (int64_t i = 0; i < n_row; i++) {                                    \
        double acc[W];                                                       \
        for (int64_t c = 0; c < W; c++) acc[c] = 0.0;                        \
        const int32_t row_end = indptr[i + 1];                               \
        for (int32_t jj = indptr[i]; jj < row_end; jj++) {                   \
            if (jj + PREFETCH_DISTANCE < row_end) {                          \
                const double *pf =                                           \
                    x + (int64_t)indices[jj + PREFETCH_DISTANCE] * W;        \
                for (int64_t l = 0; l < W; l += 8)                           \
                    __builtin_prefetch(pf + l, 0, 1);                        \
            }                                                                \
            const double a = data[jj];                                       \
            const double *xr = x + (int64_t)indices[jj] * W;                 \
            for (int64_t c = 0; c < W; c++) acc[c] += a * xr[c];             \
        }                                                                    \
        double *yr = y + i * W;                                              \
        const double *xo = x + i * W;                                        \
        if (jp < n_jump && jump_rows[jp] == i) {                             \
            const double *jr = jump + jp * W;                                \
            jp++;                                                            \
            for (int64_t c = 0; c < W; c++) {                                \
                const double v = damping * acc[c] + jr[c];                   \
                yr[c] = v;                                                   \
                resid[c] += fabs(v - xo[c]);                                 \
            }                                                                \
        } else {                                                             \
            for (int64_t c = 0; c < W; c++) {                                \
                const double v = damping * acc[c];                           \
                yr[c] = v;                                                   \
                resid[c] += fabs(v - xo[c]);                                 \
            }                                                                \
        }                                                                    \
    }

#define DEFINE_STEP(W)                                                       \
static void step_##W(const int64_t n_row,                                    \
                     const int32_t *indptr, const int32_t *indices,          \
                     const double *data, const double *x,                    \
                     const int64_t n_jump, const int32_t *jump_rows,         \
                     const double *jump, const double damping,               \
                     double *y, double *resid)                               \
{                                                                            \
    STEP_BODY(W)                                                             \
}

DEFINE_STEP(2)
DEFINE_STEP(4)
DEFINE_STEP(8)
DEFINE_STEP(16)
DEFINE_STEP(32)
DEFINE_STEP(64)

static void step_generic(const int64_t n_row, const int64_t width,
                         const int32_t *indptr, const int32_t *indices,
                         const double *data, const double *x,
                         const int64_t n_jump, const int32_t *jump_rows,
                         const double *jump, const double damping,
                         double *y, double *resid)
{
    const int64_t W = width;
    double acc[512];
    STEP_BODY(W)
}

void blocked_step(const int64_t n_row,
                  const int64_t width,
                  const int32_t *indptr,
                  const int32_t *indices,
                  const double *data,
                  const double *x,
                  const int64_t n_jump,
                  const int32_t *jump_rows,
                  const double *jump,
                  const double damping,
                  double *y,
                  double *resid)
{
    for (int64_t c = 0; c < width; c++) resid[c] = 0.0;
    switch (width) {
    case 2:  step_2(n_row, indptr, indices, data, x, n_jump, jump_rows, jump, damping, y, resid); break;
    case 4:  step_4(n_row, indptr, indices, data, x, n_jump, jump_rows, jump, damping, y, resid); break;
    case 8:  step_8(n_row, indptr, indices, data, x, n_jump, jump_rows, jump, damping, y, resid); break;
    case 16: step_16(n_row, indptr, indices, data, x, n_jump, jump_rows, jump, damping, y, resid); break;
    case 32: step_32(n_row, indptr, indices, data, x, n_jump, jump_rows, jump, damping, y, resid); break;
    case 64: step_64(n_row, indptr, indices, data, x, n_jump, jump_rows, jump, damping, y, resid); break;
    default:
        step_generic(n_row, width, indptr, indices, data, x, n_jump, jump_rows, jump, damping, y, resid);
    }
}
"""

_BASE_CFLAGS = ["-O3", "-fPIC", "-shared", "-ffp-contract=off", "-funroll-loops"]

#: Tried in order until one compiles: full tuning, then without the x86-only
#: vector-width hint, then without -march=native, then a bare portable build.
_CFLAG_VARIANTS = [
    _BASE_CFLAGS + ["-march=native", "-mprefer-vector-width=512"],
    _BASE_CFLAGS + ["-march=native"],
    _BASE_CFLAGS,
    ["-O2", "-fPIC", "-shared", "-ffp-contract=off"],
]

_lock = threading.Lock()
_kernel = None
_unavailable = False

_HUGE_PAGE = 2 << 20
_libc = None


def slab_empty(shape: tuple[int, ...], dtype=np.float64) -> np.ndarray:
    """``np.empty`` backed by transparent hugepages when the slab is large.

    The blocked engine gathers rows of its multi-MB slabs at effectively
    random offsets, so on 4K pages the slab spans thousands of TLB entries
    and a large fraction of gathers pay a page walk.  A 2MB-aligned
    anonymous mapping with ``MADV_HUGEPAGE`` covers the same slab with a
    handful of entries (measured ~15-25% off the kernel step).  Falls back
    to a plain ``np.empty`` for small slabs and on any platform refusal.
    """
    global _libc
    count = int(np.prod(shape))
    nbytes = count * np.dtype(dtype).itemsize
    if nbytes < _HUGE_PAGE:
        return np.empty(shape, dtype)
    try:
        import mmap as _mmap

        size = (nbytes + _HUGE_PAGE - 1) & ~(_HUGE_PAGE - 1)
        buf = _mmap.mmap(-1, size + _HUGE_PAGE)
        address = ctypes.addressof(ctypes.c_char.from_buffer(buf))
        aligned = (address + _HUGE_PAGE - 1) & ~(_HUGE_PAGE - 1)
        if _libc is None:
            _libc = ctypes.CDLL(None, use_errno=True)
        _libc.madvise(  # MADV_HUGEPAGE; refusal leaves ordinary pages
            ctypes.c_void_p(aligned), ctypes.c_size_t(size), 14
        )
        array = np.frombuffer(
            buf, dtype=dtype, count=count, offset=aligned - address
        )
        return array.reshape(shape)
    except Exception:
        return np.empty(shape, dtype)


def hugepage_csr(matrix: sparse.csr_matrix) -> sparse.csr_matrix:
    """Copy of ``matrix`` whose arrays sit on hugepage-backed slabs.

    The CSR data/index streams are re-read every iteration; moving them onto
    hugepages removes their share of TLB pressure too.  Returns the input
    unchanged when the kernel is unavailable (the scipy path gains nothing).
    """
    if not available():
        return matrix
    data = slab_empty(matrix.data.shape)
    data[:] = matrix.data
    indices = slab_empty(matrix.indices.shape, matrix.indices.dtype)
    indices[:] = matrix.indices
    indptr = slab_empty(matrix.indptr.shape, matrix.indptr.dtype)
    indptr[:] = matrix.indptr
    return sparse.csr_matrix(
        (data, indices, indptr), shape=matrix.shape, copy=False
    )


def _compile() -> ctypes.CDLL | None:
    """Compile the kernel into a per-process temp dir; None on any failure."""
    build_dir = tempfile.mkdtemp(prefix="repro-native-")
    source = os.path.join(build_dir, "blocked_step.c")
    with open(source, "w", encoding="utf-8") as handle:
        handle.write(_SOURCE)
    for variant, cflags in enumerate(_CFLAG_VARIANTS):
        library = os.path.join(build_dir, f"blocked_step{variant}.so")
        for compiler in ("cc", "gcc"):
            try:
                result = subprocess.run(
                    [compiler, *cflags, "-o", library, source],
                    capture_output=True,
                    timeout=60,
                )
            except (OSError, subprocess.TimeoutExpired):
                continue
            if result.returncode == 0:
                try:
                    return ctypes.CDLL(library)
                except OSError:
                    return None
    return None


def _load() -> ctypes.CDLL | None:
    lib = _compile()
    if lib is None:
        return None
    lib.blocked_step.restype = None
    lib.blocked_step.argtypes = [
        ctypes.c_int64,
        ctypes.c_int64,
        np.ctypeslib.ndpointer(np.int32, flags="C_CONTIGUOUS"),
        np.ctypeslib.ndpointer(np.int32, flags="C_CONTIGUOUS"),
        np.ctypeslib.ndpointer(np.float64, flags="C_CONTIGUOUS"),
        np.ctypeslib.ndpointer(np.float64, flags="C_CONTIGUOUS"),
        ctypes.c_int64,
        np.ctypeslib.ndpointer(np.int32, flags="C_CONTIGUOUS"),
        np.ctypeslib.ndpointer(np.float64, flags="C_CONTIGUOUS"),
        ctypes.c_double,
        np.ctypeslib.ndpointer(np.float64, flags="C_CONTIGUOUS"),
        np.ctypeslib.ndpointer(np.float64, flags="C_CONTIGUOUS"),
    ]
    if not _probe_bitwise(lib):
        return None
    return lib


def _call(lib, matrix, block, jump_rows, jump, damping, out, resid) -> None:
    lib.blocked_step(
        matrix.shape[0],
        block.shape[1],
        matrix.indptr,
        matrix.indices,
        matrix.data,
        block,
        jump_rows.shape[0],
        jump_rows,
        jump,
        damping,
        out,
        resid,
    )


def _probe_bitwise(lib: ctypes.CDLL) -> bool:
    """Verify the compiled code reproduces the scipy sequence bit-for-bit.

    Width 7 exercises the generic (runtime-width) body's tail lanes; width 32
    exercises a specialized unrolled body.  Each width is probed with a dense
    jump (every row listed, signed data — the exact dense sequence) and a
    sparse jump over nonnegative data (the row-skipping path).  Empty rows
    exercise the zero-accumulator path.  Floating point is deterministic per
    compiled binary, so a probe that matches here matches for every input.
    """
    rng = np.random.default_rng(12345)
    n = 57
    probe = sparse.random(n, n, density=0.21, random_state=7, format="csr")
    damping = 0.85
    for width in (7, 32):
        for dense in (True, False):
            if dense:
                probe.data = rng.standard_normal(probe.nnz)
                block = np.ascontiguousarray(rng.standard_normal((n, width)))
                jump_rows = np.arange(n, dtype=np.int32)
                jump = np.ascontiguousarray(rng.standard_normal((n, width)))
            else:
                probe.data = np.abs(rng.standard_normal(probe.nnz))
                block = np.ascontiguousarray(np.abs(rng.standard_normal((n, width))))
                jump_rows = np.flatnonzero(rng.random(n) < 0.2).astype(np.int32)
                jump = np.ascontiguousarray(
                    np.abs(rng.standard_normal((len(jump_rows), width)))
                )
            out = np.empty((n, width))
            resid = np.empty(width)
            try:
                _call(lib, probe, block, jump_rows, jump, damping, out, resid)
            except (ctypes.ArgumentError, ValueError):
                return False
            dense_jump = np.zeros((n, width))
            dense_jump[jump_rows] = jump
            expected = np.empty((n, width))
            for column in range(width):
                expected[:, column] = (
                    damping * (probe @ np.ascontiguousarray(block[:, column]))
                    + dense_jump[:, column]
                )
            if not np.array_equal(out, expected):
                return False
            if not np.allclose(
                resid, np.abs(out - block).sum(axis=0), rtol=1e-12, atol=0.0
            ):
                return False
    return True


def _ensure() -> ctypes.CDLL | None:
    """Lazily compile+probe the kernel once per process; None if unusable."""
    global _kernel, _unavailable
    if _unavailable:
        return None
    if _kernel is None:
        with _lock:
            if _kernel is None and not _unavailable:
                if os.environ.get("REPRO_NO_NATIVE"):
                    _unavailable = True
                else:
                    _kernel = _load()
                    _unavailable = _kernel is None
    return _kernel


def available() -> bool:
    """Whether the compiled kernel is usable (triggers the one-time build)."""
    return _ensure() is not None


def blocked_step(
    matrix: sparse.csr_matrix,
    block: np.ndarray,
    jump_rows: np.ndarray,
    jump: np.ndarray,
    damping: float,
    out: np.ndarray | None = None,
    resid: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray] | None:
    """``damping * (matrix @ block) + scattered jump`` via the compiled kernel.

    ``jump_rows`` is a sorted ``int32`` array of the rows carrying jump mass
    and ``jump`` their values, shape ``(len(jump_rows), k)`` — restart
    vectors are sparse and the dense slab is nearly all zeros.  Listing a
    zero row is harmless (it adds the serial engine's literal ``+ 0.0``);
    *omitting* a row is bitwise-safe as long as the accumulator cannot be
    ``-0.0`` there, which holds for the nonnegative iterates of every
    ranking in this package.

    Returns ``(scores, residuals)`` where ``residuals[c]`` is the sequential
    row-order sum of ``|scores[:, c] - block[:, c]|`` (an approximation of
    the numpy pairwise sum, good to ~n·eps relative).  Returns ``None`` when
    the kernel is unavailable or the inputs fall outside its supported
    shapes/dtypes; the caller then uses scipy.

    ``out``/``resid`` are optional preallocated result buffers.  Passing
    them matters: a multi-MB ``np.empty`` per step cycles freshly-mapped
    pages through the allocator and the resulting page faults can cost more
    than the kernel itself.  Mismatched buffers are silently replaced.
    """
    if _ensure() is None:
        return None
    if (
        block.shape[1] > MAX_WIDTH
        or matrix.indices.dtype != np.int32
        or matrix.indptr.dtype != np.int32
        or matrix.data.dtype != np.float64
        or block.dtype != np.float64
        or jump.dtype != np.float64
        or jump_rows.dtype != np.int32
        or jump.shape != (jump_rows.shape[0], block.shape[1])
        or not block.flags.c_contiguous
        or not jump.flags.c_contiguous
        or not jump_rows.flags.c_contiguous
    ):
        return None
    if (
        out is None
        or out.shape != block.shape
        or out.dtype != np.float64
        or not out.flags.c_contiguous
    ):
        out = np.empty_like(block)
    if (
        resid is None
        or resid.shape != (block.shape[1],)
        or resid.dtype != np.float64
        or not resid.flags.c_contiguous
    ):
        resid = np.empty(block.shape[1])
    _call(_kernel, matrix, block, jump_rows, jump, damping, out, resid)
    return out, resid
