"""Pure-IR ranking baseline (no link structure).

The paper's motivating claim (Sections 1 and 7): traditional IR ranking
"misses objects that are much related to the keywords, although they do not
contain them" — the "Data Cube" paper for the query "OLAP".  This baseline
ranks nodes purely by IR score so that the claim is testable: any node
without a query term scores exactly zero here, while ObjectRank2 can rank it
first.
"""

from __future__ import annotations

import numpy as np

from repro.errors import EmptyBaseSetError
from repro.graph.transfer_graph import AuthorityTransferDataGraph
from repro.ir.scoring import Scorer
from repro.query.query import QueryVector
from repro.ranking.convergence import RankedResult


def ir_only_rank(
    graph: AuthorityTransferDataGraph,
    scorer: Scorer,
    query_vector: QueryVector,
) -> RankedResult:
    """Rank nodes by ``IRScore(v, Q)`` alone (Equation 2, no authority flow).

    Returned as a :class:`RankedResult` (iterations = 0) so it slots into any
    comparison harness next to the authority-flow rankers.  Raises
    :class:`EmptyBaseSetError` when no node matches any query term, matching
    the authority-flow rankers' contract.
    """
    terms = [t for t in query_vector.terms if query_vector.weight(t) > 0]
    candidates = scorer.index.documents_with_any(terms)
    if not candidates:
        raise EmptyBaseSetError(tuple(terms))
    weights = query_vector.weights
    scores = np.zeros(graph.num_nodes)
    base: dict[str, float] = {}
    for doc_id in candidates:
        score = scorer.score(doc_id, weights)
        scores[graph.index_of(doc_id)] = score
        base[doc_id] = score
    return RankedResult(
        node_ids=graph.node_ids,
        scores=scores,
        iterations=0,
        converged=True,
        base_weights=base,
    )
