"""ObjectRank2: authority flow with an IR-weighted base set (Section 3).

The single change relative to ObjectRank [BHP04] is the base-set vector ``s``
of Equation 4: instead of 0/1 entries, ``s_i = IRScore(v_i, Q)`` for base-set
nodes, normalized to sum to one ("since they represent probabilities").  The
random surfer therefore jumps preferentially to base-set nodes whose text
matches the weighted query vector best — which is also what lets reformulated
(expanded, reweighted) queries of Section 5 influence the ranking.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import EmptyBaseSetError
from repro.graph.transfer_graph import AuthorityTransferDataGraph
from repro.ir.scoring import Scorer

if TYPE_CHECKING:  # avoid a circular import: repro.query depends on ranking
    from repro.query.query import QueryVector
from repro.ranking.convergence import RankedResult
from repro.ranking.pagerank import (
    DEFAULT_DAMPING,
    DEFAULT_MAX_ITERATIONS,
    DEFAULT_TOLERANCE,
    power_iteration,
)


def weighted_base_set(scorer: Scorer, query_vector: QueryVector) -> dict[str, float]:
    """The IR-weighted base set: node id -> normalized jump probability.

    Nodes enter the base set when they contain at least one positive-weight
    query term; each node's raw weight is ``IRScore(v, Q)`` (Equation 2) and
    the weights are normalized to sum to one.  Nodes whose IR score degenerates
    to zero (e.g. a term present in every document) are kept with a uniform
    share of the smallest positive score, so the base set never silently
    shrinks below ``S(Q)``.
    """
    terms = [t for t in query_vector.terms if query_vector.weight(t) > 0]
    candidates = scorer.index.documents_with_any(terms)
    if not candidates:
        raise EmptyBaseSetError(tuple(terms))

    weights = query_vector.weights
    raw = {doc_id: scorer.score(doc_id, weights) for doc_id in candidates}
    positive = [w for w in raw.values() if w > 0]
    floor = min(positive) if positive else 1.0
    adjusted = {doc_id: (w if w > 0 else floor) for doc_id, w in raw.items()}
    total = sum(adjusted.values())
    # Every adjusted weight is strictly positive, so with a non-empty base
    # set the sum is too; ``<= 0.0`` keeps the (theoretical) subnormal
    # underflow from dividing below, same guard as PrecomputedRanker.
    if total <= 0.0:
        raise EmptyBaseSetError(tuple(terms))
    return {doc_id: w / total for doc_id, w in adjusted.items()}


def objectrank2(
    graph: AuthorityTransferDataGraph,
    scorer: Scorer,
    query_vector: QueryVector,
    damping: float = DEFAULT_DAMPING,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    init: np.ndarray | None = None,
) -> RankedResult:
    """Compute ObjectRank2 scores for a weighted query vector (Equation 4).

    ``init`` warm-starts the power iteration with a previous score vector
    (Section 6.2); the benchmarks for Figures 14b-17b use it to reproduce the
    iteration-count drop for reformulated queries.
    """
    base = weighted_base_set(scorer, query_vector)
    restart = np.zeros(graph.num_nodes)
    for node_id, weight in base.items():
        restart[graph.index_of(node_id)] = weight

    outcome = power_iteration(
        graph.matrix(), restart, damping, tolerance, max_iterations, init
    )
    return RankedResult(
        node_ids=graph.node_ids,
        scores=outcome.scores,
        iterations=outcome.iterations,
        converged=outcome.converged,
        base_weights=base,
        residuals=outcome.residuals,
    )
