"""Topic-sensitive PageRank [Hav02], as a precomputation baseline.

Haveliwala's approach precomputes one PageRank vector per topic and, at query
time, blends the vectors of the topics most relevant to the query.  It is the
Web-side analogue of ObjectRank's query-specific base sets and is included as
a baseline: it shows what ObjectRank-style ranking looks like when only a
fixed set of base sets is available.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.transfer_graph import AuthorityTransferDataGraph
from repro.ranking.pagerank import (
    DEFAULT_DAMPING,
    DEFAULT_MAX_ITERATIONS,
    DEFAULT_TOLERANCE,
    personalized_pagerank,
)


@dataclass
class TopicSensitiveRanker:
    """Precomputed per-topic authority vectors with query-time blending."""

    graph: AuthorityTransferDataGraph
    damping: float = DEFAULT_DAMPING
    tolerance: float = DEFAULT_TOLERANCE
    max_iterations: int = DEFAULT_MAX_ITERATIONS

    def __post_init__(self) -> None:
        self._topic_vectors: dict[str, np.ndarray] = {}

    @property
    def topics(self) -> list[str]:
        return list(self._topic_vectors)

    def add_topic(self, topic: str, seed_node_ids: list[str]) -> None:
        """Precompute the authority vector for one topic's seed set."""
        if not seed_node_ids:
            raise ValueError(f"topic {topic!r} has an empty seed set")
        indices = self.graph.indices_of(seed_node_ids)
        outcome = personalized_pagerank(
            self.graph.matrix(),
            indices,
            None,
            self.damping,
            self.tolerance,
            self.max_iterations,
        )
        self._topic_vectors[topic] = outcome.scores

    def rank(self, topic_weights: dict[str, float]) -> np.ndarray:
        """Blend precomputed topic vectors by (normalized) topic weights."""
        known = {t: w for t, w in topic_weights.items() if t in self._topic_vectors and w > 0}
        if not known:
            raise ValueError("no known topic with positive weight")
        total = sum(known.values())
        # ``known`` is non-empty with strictly positive weights, so the sum
        # is positive; the guard makes that invariant locally checkable.
        if total <= 0.0:
            raise ValueError("no known topic with positive weight")
        blended = np.zeros(self.graph.num_nodes)
        for topic, weight in known.items():
            blended += (weight / total) * self._topic_vectors[topic]
        return blended

    def top_k(self, topic_weights: dict[str, float], k: int) -> list[tuple[str, float]]:
        scores = self.rank(topic_weights)
        order = np.argsort(-scores, kind="stable")[: max(k, 0)]
        return [(self.graph.node_id_of(i), float(scores[i])) for i in order]
