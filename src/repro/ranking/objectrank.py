"""ObjectRank [BHP04]: authority flow with an unweighted (0/1) base set.

The base set ``S(Q)`` of a keyword query is the set of nodes containing at
least one query keyword; the random surfer jumps back to a *uniformly* chosen
base-set node with probability ``1 - d``.  Section 6.1.1 of the paper compares
ObjectRank2 against a "slightly modified" multi-keyword ObjectRank that
combines per-keyword scores with a normalizing exponent (Equation 16); both
variants live here.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import EmptyBaseSetError
from repro.graph.transfer_graph import AuthorityTransferDataGraph
from repro.ir.index import InvertedIndex
from repro.ranking.batch import batched_keyword_vectors
from repro.ranking.convergence import RankedResult
from repro.ranking.pagerank import (
    DEFAULT_DAMPING,
    DEFAULT_MAX_ITERATIONS,
    DEFAULT_TOLERANCE,
    personalized_pagerank,
    power_iteration,
)


def base_set(index: InvertedIndex, keywords: tuple[str, ...]) -> list[str]:
    """``S(Q)``: ids of nodes containing at least one query keyword."""
    return index.documents_with_any(keywords)


def objectrank(
    graph: AuthorityTransferDataGraph,
    base_nodes: list[str],
    damping: float = DEFAULT_DAMPING,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    init: np.ndarray | None = None,
) -> RankedResult:
    """Query-specific ObjectRank with a uniform base set [BHP04]."""
    if not base_nodes:
        raise EmptyBaseSetError(())
    indices = graph.indices_of(base_nodes)
    outcome = personalized_pagerank(
        graph.matrix(), indices, None, damping, tolerance, max_iterations, init
    )
    uniform = 1.0 / len(base_nodes)
    return RankedResult(
        node_ids=graph.node_ids,
        scores=outcome.scores,
        iterations=outcome.iterations,
        converged=outcome.converged,
        base_weights={node_id: uniform for node_id in base_nodes},
        residuals=outcome.residuals,
    )


def keyword_objectrank(
    graph: AuthorityTransferDataGraph,
    index: InvertedIndex,
    keyword: str,
    damping: float = DEFAULT_DAMPING,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    init: np.ndarray | None = None,
) -> RankedResult:
    """ObjectRank for a single keyword: base set = nodes containing it."""
    nodes = index.documents_with_term(keyword)
    if not nodes:
        raise EmptyBaseSetError((keyword,))
    return objectrank(graph, nodes, damping, tolerance, max_iterations, init)


def global_objectrank(
    graph: AuthorityTransferDataGraph,
    damping: float = DEFAULT_DAMPING,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
) -> RankedResult:
    """Global (query-independent) ObjectRank: base set = all nodes.

    Used as the warm-start seed for the very first user query (Section 6.2).
    """
    n = graph.num_nodes
    restart = np.full(n, 1.0 / n)
    outcome = power_iteration(
        graph.matrix(), restart, damping, tolerance, max_iterations
    )
    return RankedResult(
        node_ids=graph.node_ids,
        scores=outcome.scores,
        iterations=outcome.iterations,
        converged=outcome.converged,
        residuals=outcome.residuals,
    )


def normalizing_exponent(base_set_size: int) -> float:
    """``g(t) = 1 / log(|S(t)|)`` of Equation 16 (clamped for tiny base sets).

    The exponent damps the skew of popular keywords: a keyword matched by many
    objects gets a small exponent, so it cannot dominate the product.  For
    ``|S(t)| <= e`` the raw formula would blow up (or divide by zero), so the
    exponent is clamped at 1.
    """
    if base_set_size <= 0:
        raise ValueError("base set size must be positive")
    log_size = math.log(base_set_size)
    if log_size <= 1.0:
        return 1.0
    return 1.0 / log_size


def multi_keyword_objectrank(
    graph: AuthorityTransferDataGraph,
    index: InvertedIndex,
    keywords: tuple[str, ...],
    damping: float = DEFAULT_DAMPING,
    tolerance: float = DEFAULT_TOLERANCE,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    workers: int | None = None,
) -> RankedResult:
    """Modified multi-keyword ObjectRank of Equation 16.

    Per-keyword ObjectRanks are combined multiplicatively, each raised to the
    normalizing exponent ``g(t_i)``; this is the ObjectRank side of the
    Table 2 comparison.  Keywords that match nothing are skipped (matching the
    OR semantics of the base set); if none match, the base set is empty.  The
    per-keyword fixpoints share one blocked run over the CSR matrix
    (:mod:`repro.ranking.batch`) instead of one serial iteration each.
    """
    matched = list(
        batched_keyword_vectors(
            graph, index, keywords, damping, tolerance, max_iterations,
            workers=workers,
        ).items()
    )
    if not matched:
        raise EmptyBaseSetError(tuple(keywords))

    combined = np.ones(graph.num_nodes)
    iterations = 0
    converged = True
    base_weights: dict[str, float] = {}
    for keyword, result in matched:
        exponent = normalizing_exponent(len(result.base_weights))
        combined *= np.power(result.scores, exponent)
        iterations += result.iterations
        converged = converged and result.converged
        for node_id, weight in result.base_weights.items():
            base_weights[node_id] = base_weights.get(node_id, 0.0) + weight

    total = combined.sum()
    if total > 0:
        combined = combined / total
    return RankedResult(
        node_ids=graph.node_ids,
        scores=combined,
        iterations=iterations,
        converged=converged,
        base_weights=base_weights,
    )
