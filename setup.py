"""Legacy setup shim for offline environments lacking the `wheel` package.

`pip install -e .` uses pyproject.toml when the build chain is available;
`python setup.py develop` works everywhere.  The entry point is duplicated
here because the legacy path does not read [project.scripts].
"""

from setuptools import setup

setup(entry_points={"console_scripts": ["repro = repro.cli:main"]})
