"""Unit tests for SVG explanation rendering."""

import pytest

from repro.explain import adjust_flows, build_explaining_subgraph, to_svg


@pytest.fixture
def explanation(figure1_graph, olap_result):
    base = list(olap_result.base_weights)
    subgraph = build_explaining_subgraph(figure1_graph, base, "v4", radius=None)
    return adjust_flows(subgraph, olap_result.scores, 0.85, tolerance=1e-10)


class TestToSvg:
    def test_valid_svg_document(self, explanation):
        svg = to_svg(explanation)
        assert svg.startswith("<svg ")
        assert svg.endswith("</svg>")
        assert 'xmlns="http://www.w3.org/2000/svg"' in svg

    def test_one_ellipse_per_node(self, explanation):
        svg = to_svg(explanation)
        assert svg.count("<ellipse") == explanation.subgraph.num_nodes

    def test_one_line_per_visible_edge(self, explanation):
        svg = to_svg(explanation)
        assert svg.count("<line") == explanation.subgraph.num_edges

    def test_min_flow_hides_edges(self, explanation):
        full = to_svg(explanation)
        filtered = to_svg(explanation, min_flow=1e9)
        assert filtered.count("<line") < full.count("<line")
        # nodes are still drawn so the user sees the structure
        assert filtered.count("<ellipse") == explanation.subgraph.num_nodes

    def test_target_highlighted(self, explanation):
        svg = to_svg(explanation)
        assert "#ffd27f" in svg  # the target's fill color

    def test_captions_escaped(self, figure1_graph, olap_result):
        # inject a node whose title would break XML if unescaped
        from repro.datasets.figure1 import figure1_dataset
        from repro.graph import AuthorityTransferDataGraph
        from repro.ir import BM25Scorer, InvertedIndex
        from repro.query import KeywordQuery
        from repro.ranking import objectrank2

        dataset = figure1_dataset()
        dataset.data_graph.add_node(
            "evil", "Paper", {"title": 'OLAP <cube> & "more"'}
        )
        dataset.data_graph.add_edge("evil", "v7", "cites")
        graph = AuthorityTransferDataGraph(dataset.data_graph, dataset.transfer_schema)
        index = InvertedIndex.from_graph(dataset.data_graph)
        result = objectrank2(graph, BM25Scorer(index), KeywordQuery(["olap"]).vector())
        subgraph = build_explaining_subgraph(
            graph, list(result.base_weights), "v7", radius=None
        )
        explanation = adjust_flows(subgraph, result.scores, 0.85)
        svg = to_svg(explanation)
        assert "<cube>" not in svg
        assert "&lt;cube&gt;" in svg

    def test_edge_tooltips_carry_roles(self, explanation):
        svg = to_svg(explanation)
        assert "<title>" in svg
        assert "by:" in svg or "cites:" in svg or "contains:" in svg
