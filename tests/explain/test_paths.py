"""Unit tests for top-path extraction from explanations."""

import pytest

from repro.explain import build_explaining_subgraph, adjust_flows, top_paths


@pytest.fixture
def explanation(figure1_graph, olap_result):
    base = list(olap_result.base_weights)
    subgraph = build_explaining_subgraph(figure1_graph, base, "v4", radius=None)
    return adjust_flows(subgraph, olap_result.scores, 0.85, tolerance=1e-10)


class TestTopPaths:
    def test_paths_start_at_base_end_at_target(self, explanation):
        paths = top_paths(explanation, 5)
        assert paths
        for path in paths:
            assert path.node_ids[0] in {"v1", "v4"}
            assert path.node_ids[-1] == "v4"

    def test_sorted_by_bottleneck_descending(self, explanation):
        paths = top_paths(explanation, 5)
        bottlenecks = [p.bottleneck for p in paths]
        assert bottlenecks == sorted(bottlenecks, reverse=True)

    def test_v1_path_found(self, explanation):
        """The long chain v1 -> v3 -> v5 -> v6 -> v4 carries authority."""
        paths = top_paths(explanation, 10, max_length=10)
        assert ("v1", "v3", "v5", "v6", "v4") in {p.node_ids for p in paths}

    def test_cycle_back_to_base_target(self, explanation):
        """v4 is both base node and target: the loop v4 -> v6 -> v4 counts."""
        paths = top_paths(explanation, 10)
        assert ("v4", "v6", "v4") in {p.node_ids for p in paths}

    def test_k_limits_results(self, explanation):
        assert len(top_paths(explanation, 1)) == 1
        assert top_paths(explanation, 0) == []

    def test_max_length_respected(self, explanation):
        paths = top_paths(explanation, 10, max_length=2)
        assert all(p.length <= 2 for p in paths)

    def test_bottleneck_is_min_edge_flow(self, explanation):
        graph = explanation.graph
        flows = {
            (int(graph.edge_source[e]), int(graph.edge_target[e])): float(f)
            for e, f in zip(explanation.edge_ids, explanation.flows)
        }
        for path in top_paths(explanation, 5):
            indices = [graph.index_of(n) for n in path.node_ids]
            edge_flows = [flows[(a, b)] for a, b in zip(indices, indices[1:])]
            assert path.bottleneck == pytest.approx(min(edge_flows))

    def test_empty_explanation_no_paths(self, figure1_graph, olap_result):
        subgraph = build_explaining_subgraph(figure1_graph, ["v7"], "v2", radius=1)
        empty = adjust_flows(subgraph, olap_result.scores, 0.85)
        assert top_paths(empty, 5) == []

    def test_path_length_property(self, explanation):
        for path in top_paths(explanation, 5):
            assert path.length == len(path.node_ids) - 1
