"""Unit tests for explaining-subgraph construction (Section 4, stage 1)."""

import pytest

from repro.errors import ExplanationError
from repro.explain import build_explaining_subgraph


@pytest.fixture
def olap_base(olap_result):
    return list(olap_result.base_weights)


class TestConstruction:
    def test_example1_excludes_data_cube(self, figure1_graph, olap_base):
        """Example 1: v7 is not in G_v4^Q because no path leads from it to
        v4 (the cited direction carries rate 0)."""
        subgraph = build_explaining_subgraph(figure1_graph, olap_base, "v4", radius=None)
        assert not subgraph.contains_node(figure1_graph.index_of("v7"))

    def test_example1_nodes(self, figure1_graph, olap_base):
        """Unbounded radius: the Figure 9 subgraph holds v1..v6."""
        subgraph = build_explaining_subgraph(figure1_graph, olap_base, "v4", radius=None)
        expected = {figure1_graph.index_of(v) for v in ("v1", "v2", "v3", "v4", "v5", "v6")}
        assert set(subgraph.nodes) == expected

    def test_radius_limits_backward_reach(self, figure1_graph, olap_base):
        """With L=3, v1 (4 hops away from v4) is pruned."""
        subgraph = build_explaining_subgraph(figure1_graph, olap_base, "v4", radius=3)
        assert not subgraph.contains_node(figure1_graph.index_of("v1"))
        assert subgraph.contains_node(figure1_graph.index_of("v6"))

    def test_depths_to_target(self, figure1_graph, olap_base):
        subgraph = build_explaining_subgraph(figure1_graph, olap_base, "v4", radius=None)
        depth = {
            figure1_graph.node_id_of(n): d for n, d in subgraph.depth_to_target.items()
        }
        assert depth["v4"] == 0
        assert depth["v6"] == 1
        assert depth["v5"] == 2
        assert depth["v3"] == 3
        assert depth["v1"] == 4

    def test_base_nodes_restricted_to_reachable(self, figure1_graph, olap_base):
        subgraph = build_explaining_subgraph(figure1_graph, olap_base, "v4", radius=3)
        # v1 is a base node but cannot reach v4 within radius 3.
        assert figure1_graph.index_of("v1") not in subgraph.base_nodes
        assert figure1_graph.index_of("v4") in subgraph.base_nodes

    def test_all_edges_within_subgraph(self, figure1_graph, olap_base):
        subgraph = build_explaining_subgraph(figure1_graph, olap_base, "v4", radius=None)
        nodes = set(subgraph.nodes)
        for edge_id in subgraph.edge_ids:
            assert int(figure1_graph.edge_source[edge_id]) in nodes
            assert int(figure1_graph.edge_target[edge_id]) in nodes

    def test_zero_rate_edges_excluded(self, figure1_graph, olap_base):
        subgraph = build_explaining_subgraph(figure1_graph, olap_base, "v4", radius=None)
        for edge_id in subgraph.edge_ids:
            assert figure1_graph.edge_rate[edge_id] > 0.0

    def test_target_always_present(self, figure1_graph):
        """Even with an unreachable base set the target itself is kept."""
        subgraph = build_explaining_subgraph(figure1_graph, ["v7"], "v2", radius=1)
        assert subgraph.contains_node(figure1_graph.index_of("v2"))
        assert subgraph.is_empty

    def test_invalid_radius_rejected(self, figure1_graph, olap_base):
        with pytest.raises(ExplanationError):
            build_explaining_subgraph(figure1_graph, olap_base, "v4", radius=0)

    def test_node_ids_helper(self, figure1_graph, olap_base):
        subgraph = build_explaining_subgraph(figure1_graph, olap_base, "v4", radius=3)
        assert subgraph.target_id == "v4"
        assert "v4" in subgraph.node_ids()


class TestObservation1:
    def test_no_inflow_from_outside(self, figure1_graph, olap_base):
        """Observation 1: no positive-rate edge enters the subgraph from a
        node outside it while carrying authority from the base set.

        Equivalently: any positive-rate edge of D^A whose target is in G and
        whose source is forward-reachable from the base set must itself be in
        G.  We verify the direct consequence: sources of subgraph edges are
        subgraph nodes (checked above) and every base-derived path stays in."""
        subgraph = build_explaining_subgraph(figure1_graph, olap_base, "v4", radius=None)
        in_sub = set(subgraph.nodes)
        subgraph_edges = set(int(e) for e in subgraph.edge_ids)
        for node in subgraph.nodes:
            for edge_id in figure1_graph.in_edge_ids(node):
                source = int(figure1_graph.edge_source[edge_id])
                if (
                    figure1_graph.edge_rate[edge_id] > 0
                    and source in in_sub
                    and int(edge_id) not in subgraph_edges
                ):
                    # the source must then not be forward-reachable from the
                    # base set: it can only be the bare target of an empty
                    # branch, never a flow carrier.
                    assert source == subgraph.target or source not in {
                        int(figure1_graph.edge_source[e]) for e in subgraph.edge_ids
                    }
