"""Unit tests for the flow-aggregation helpers."""

import numpy as np
import pytest

from repro.explain import (
    node_incoming_flow,
    node_outgoing_flow,
    original_edge_flows,
)


@pytest.fixture
def all_flows(figure1_graph, olap_result):
    edge_ids = np.arange(figure1_graph.num_edges, dtype=np.int64)
    flows = original_edge_flows(figure1_graph, olap_result.scores, 0.85, edge_ids)
    return edge_ids, flows


class TestNodeAggregation:
    def test_outgoing_matches_manual_sum(self, figure1_graph, all_flows):
        edge_ids, flows = all_flows
        totals = node_outgoing_flow(figure1_graph, edge_ids, flows)
        v5 = figure1_graph.index_of("v5")
        manual = sum(
            flows[e]
            for e in range(figure1_graph.num_edges)
            if int(figure1_graph.edge_source[e]) == v5
        )
        assert totals[v5] == pytest.approx(manual)

    def test_incoming_matches_manual_sum(self, figure1_graph, all_flows):
        edge_ids, flows = all_flows
        totals = node_incoming_flow(figure1_graph, edge_ids, flows)
        v7 = figure1_graph.index_of("v7")
        manual = sum(
            flows[e]
            for e in range(figure1_graph.num_edges)
            if int(figure1_graph.edge_target[e]) == v7
        )
        assert totals[v7] == pytest.approx(manual)

    def test_global_conservation(self, figure1_graph, all_flows):
        """Over all edges, total outgoing equals total incoming."""
        edge_ids, flows = all_flows
        outgoing = node_outgoing_flow(figure1_graph, edge_ids, flows)
        incoming = node_incoming_flow(figure1_graph, edge_ids, flows)
        assert outgoing.sum() == pytest.approx(incoming.sum())

    def test_outflow_bounded_by_damped_score(self, figure1_graph, all_flows, olap_result):
        """A node cannot send more than d * its score (rates sum to <= 1)."""
        edge_ids, flows = all_flows
        outgoing = node_outgoing_flow(figure1_graph, edge_ids, flows)
        for index in range(figure1_graph.num_nodes):
            assert outgoing[index] <= 0.85 * olap_result.scores[index] + 1e-12

    def test_empty_edge_selection(self, figure1_graph):
        empty = np.zeros(0, dtype=np.int64)
        totals = node_outgoing_flow(figure1_graph, empty, np.zeros(0))
        assert totals.sum() == 0.0
