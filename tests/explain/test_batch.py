"""Unit tests for the batched explanation engine (repro.explain.batch)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ExplanationError, UnknownNodeError
from repro.explain import (
    SubgraphExtractor,
    adjust_flows,
    batched_adjust_flows,
    batched_build_explaining_subgraphs,
    batched_explain,
    build_explaining_subgraph,
)
from repro.explain.adjustment import FlowExplanation


def assert_same_subgraph(serial, batched):
    assert serial.target == batched.target
    assert serial.nodes == batched.nodes
    assert np.array_equal(serial.edge_ids, batched.edge_ids)
    assert serial.edge_ids.dtype == batched.edge_ids.dtype
    assert serial.base_nodes == batched.base_nodes
    assert serial.depth_to_target == batched.depth_to_target
    assert serial.radius == batched.radius


def assert_same_explanation(serial: FlowExplanation, batched: FlowExplanation):
    assert_same_subgraph(serial.subgraph, batched.subgraph)
    assert np.array_equal(serial.original_flows, batched.original_flows)
    assert np.array_equal(serial.flows, batched.flows)
    assert serial.reduction == batched.reduction
    assert serial.iterations == batched.iterations
    assert serial.converged == batched.converged
    assert serial.residuals == batched.residuals


@pytest.fixture
def olap_base(olap_result):
    return list(olap_result.base_weights)


ALL_TARGETS = [f"v{i}" for i in range(1, 8)]


class TestBatchedSubgraphs:
    @pytest.mark.parametrize("radius", [None, 1, 2, 3])
    def test_identical_to_serial(self, figure1_graph, olap_base, radius):
        batched = batched_build_explaining_subgraphs(
            figure1_graph, olap_base, ALL_TARGETS, radius
        )
        for target, subgraph in zip(ALL_TARGETS, batched):
            serial = build_explaining_subgraph(
                figure1_graph, olap_base, target, radius
            )
            assert_same_subgraph(serial, subgraph)

    def test_empty_target_list(self, figure1_graph, olap_base):
        assert batched_build_explaining_subgraphs(figure1_graph, olap_base, []) == []

    def test_empty_base_set(self, figure1_graph):
        batched = batched_build_explaining_subgraphs(figure1_graph, [], ALL_TARGETS)
        for target, subgraph in zip(ALL_TARGETS, batched):
            serial = build_explaining_subgraph(figure1_graph, [], target)
            assert_same_subgraph(serial, subgraph)
            assert subgraph.is_empty
            assert subgraph.nodes == [figure1_graph.index_of(target)]

    def test_invalid_radius(self, figure1_graph, olap_base):
        with pytest.raises(ExplanationError):
            batched_build_explaining_subgraphs(
                figure1_graph, olap_base, ["v4"], radius=0
            )

    def test_unknown_target(self, figure1_graph, olap_base):
        with pytest.raises(UnknownNodeError):
            batched_build_explaining_subgraphs(figure1_graph, olap_base, ["nope"])

    def test_invalid_pool(self, figure1_graph, olap_base):
        with pytest.raises(ValueError):
            batched_build_explaining_subgraphs(
                figure1_graph, olap_base, ["v4"], pool="fiber"
            )

    def test_extractor_reuse(self, figure1_graph, olap_base):
        extractor = SubgraphExtractor(figure1_graph)
        first = batched_build_explaining_subgraphs(
            figure1_graph, olap_base, ALL_TARGETS, 2, extractor=extractor
        )
        second = batched_build_explaining_subgraphs(
            figure1_graph, olap_base, ALL_TARGETS, 2, extractor=extractor
        )
        for a, b in zip(first, second):
            assert_same_subgraph(a, b)

    @pytest.mark.parametrize("pool", ["thread", "process"])
    def test_worker_pools(self, figure1_graph, olap_base, pool):
        batched = batched_build_explaining_subgraphs(
            figure1_graph, olap_base, ALL_TARGETS, 3, workers=3, pool=pool
        )
        for target, subgraph in zip(ALL_TARGETS, batched):
            serial = build_explaining_subgraph(figure1_graph, olap_base, target, 3)
            assert_same_subgraph(serial, subgraph)


class TestBatchedAdjustment:
    @pytest.mark.parametrize("compact", [True, False])
    def test_identical_to_serial(self, figure1_graph, olap_base, olap_result, compact):
        subgraphs = batched_build_explaining_subgraphs(
            figure1_graph, olap_base, ALL_TARGETS
        )
        batched = batched_adjust_flows(
            subgraphs, olap_result.scores, 0.85, 1e-10, compact=compact
        )
        for target, explanation in zip(ALL_TARGETS, batched):
            serial = adjust_flows(
                build_explaining_subgraph(figure1_graph, olap_base, target),
                olap_result.scores,
                0.85,
                1e-10,
            )
            assert_same_explanation(serial, explanation)

    def test_empty_subgraph_explanation(self, figure1_graph, olap_result):
        subgraphs = batched_build_explaining_subgraphs(figure1_graph, [], ["v4"])
        explanation = batched_adjust_flows(subgraphs, olap_result.scores)[0]
        assert explanation.converged
        assert explanation.iterations == 0
        assert explanation.reduction == {figure1_graph.index_of("v4"): 1.0}
        assert explanation.flows.size == 0

    def test_iteration_cutoff_matches_serial(
        self, figure1_graph, olap_base, olap_result
    ):
        """An over-tight tolerance cuts off at max_iterations, like serial."""
        subgraphs = batched_build_explaining_subgraphs(
            figure1_graph, olap_base, ALL_TARGETS
        )
        batched = batched_adjust_flows(
            subgraphs, olap_result.scores, 0.85, 0.0, max_iterations=7
        )
        for target, explanation in zip(ALL_TARGETS, batched):
            serial = adjust_flows(
                build_explaining_subgraph(figure1_graph, olap_base, target),
                olap_result.scores,
                0.85,
                0.0,
                max_iterations=7,
            )
            assert_same_explanation(serial, explanation)
            if not serial.subgraph.is_empty:
                assert not explanation.converged
                assert explanation.iterations == 7


class TestBatchedExplain:
    def test_one_shot_matches_pipeline(self, dblp_tiny_engine):
        result = dblp_tiny_engine.search("xml query", top_k=8)
        base = list(result.ranked.base_weights)
        targets = [node_id for node_id, _ in result.top]
        graph = dblp_tiny_engine.graph
        batched = batched_explain(
            graph, base, targets, result.ranked.scores, radius=3
        )
        for target, explanation in zip(targets, batched):
            serial = adjust_flows(
                build_explaining_subgraph(graph, base, target, 3),
                result.ranked.scores,
            )
            assert_same_explanation(serial, explanation)

    def test_workers_match_in_process(self, dblp_tiny_engine):
        result = dblp_tiny_engine.search("xml query", top_k=8)
        base = list(result.ranked.base_weights)
        targets = [node_id for node_id, _ in result.top]
        graph = dblp_tiny_engine.graph
        plain = batched_explain(graph, base, targets, result.ranked.scores)
        pooled = batched_explain(
            graph, base, targets, result.ranked.scores, workers=3
        )
        for a, b in zip(plain, pooled):
            assert_same_explanation(a, b)


class TestSearchsortedLocals:
    def test_adjust_flows_matches_dict_reference(
        self, figure1_graph, olap_base, olap_result
    ):
        """Regression for the searchsorted local-index rewrite: the serial
        path must produce the same FlowExplanation as the per-edge dict
        construction it replaced."""
        subgraph = build_explaining_subgraph(figure1_graph, olap_base, "v4")
        explanation = adjust_flows(subgraph, olap_result.scores, 0.85, 1e-10)

        # The pre-rewrite construction, verbatim.
        local_index = {node: i for i, node in enumerate(subgraph.nodes)}
        ref_src = np.asarray(
            [
                local_index[int(figure1_graph.edge_source[e])]
                for e in subgraph.edge_ids
            ],
            dtype=np.int64,
        )
        ref_dst = np.asarray(
            [
                local_index[int(figure1_graph.edge_target[e])]
                for e in subgraph.edge_ids
            ],
            dtype=np.int64,
        )
        assert np.array_equal(subgraph.edge_src_local, ref_src)
        assert np.array_equal(subgraph.edge_dst_local, ref_dst)

        h = np.ones(len(subgraph.nodes))
        rates = figure1_graph.edge_rate[subgraph.edge_ids]
        for _ in range(explanation.iterations):
            contributions = h[ref_dst] * rates
            new_h = np.zeros(len(subgraph.nodes))
            np.add.at(new_h, ref_src, contributions)
            new_h[local_index[subgraph.target]] = 1.0
            h = new_h
        assert explanation.reduction == {
            node: float(h[local_index[node]]) for node in subgraph.nodes
        }

    def test_outgoing_flow_by_node_matches_loop(
        self, figure1_graph, olap_base, olap_result
    ):
        """Regression for the local-index rewrite of outgoing_flow_by_node."""
        subgraph = build_explaining_subgraph(figure1_graph, olap_base, "v4")
        explanation = adjust_flows(subgraph, olap_result.scores, 0.85, 1e-10)
        reference = {n: 0.0 for n in subgraph.nodes}
        for edge_id, flow in zip(explanation.edge_ids, explanation.flows):
            reference[int(figure1_graph.edge_source[edge_id])] += float(flow)
        assert explanation.outgoing_flow_by_node() == reference
