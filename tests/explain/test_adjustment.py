"""Unit tests for the flow-adjustment fixpoint (Section 4, Equations 5-10)."""

import numpy as np
import pytest

from repro.explain import adjust_flows, build_explaining_subgraph, explain
from repro.explain.flows import original_edge_flows


@pytest.fixture
def olap_base(olap_result):
    return list(olap_result.base_weights)


@pytest.fixture
def explanation(figure1_graph, olap_base, olap_result):
    subgraph = build_explaining_subgraph(figure1_graph, olap_base, "v4", radius=None)
    return adjust_flows(subgraph, olap_result.scores, damping=0.85, tolerance=1e-10)


class TestOriginalFlows:
    def test_equation5(self, figure1_graph, olap_result):
        """Flow_0(e) = d * alpha(e) * r(source)."""
        flows = original_edge_flows(figure1_graph, olap_result.scores, 0.85)
        for edge_id in range(figure1_graph.num_edges):
            source = int(figure1_graph.edge_source[edge_id])
            expected = 0.85 * figure1_graph.edge_rate[edge_id] * olap_result.scores[source]
            assert flows[edge_id] == pytest.approx(expected)

    def test_subset_of_edges(self, figure1_graph, olap_result):
        edge_ids = np.asarray([0, 2], dtype=np.int64)
        flows = original_edge_flows(figure1_graph, olap_result.scores, 0.85, edge_ids)
        assert len(flows) == 2


class TestAdjustment:
    def test_converges(self, explanation):
        assert explanation.converged
        assert explanation.iterations >= 1

    def test_target_reduction_is_one(self, explanation, figure1_graph):
        """h(target) = 1: the target's incoming flows are not adjusted."""
        assert explanation.reduction[figure1_graph.index_of("v4")] == 1.0

    def test_target_inflow_unadjusted(self, explanation, figure1_graph):
        """Edges into the target keep their original (Equation 5) flows."""
        target = figure1_graph.index_of("v4")
        for edge_id, flow, flow0 in zip(
            explanation.edge_ids, explanation.flows, explanation.original_flows
        ):
            if int(figure1_graph.edge_target[edge_id]) == target:
                assert flow == pytest.approx(flow0)

    def test_flows_never_exceed_original(self, explanation):
        """Adjustment only removes leaked authority (h <= 1 in DAG-ish parts);
        every adjusted flow is at most the original one when h <= 1."""
        for edge_id, flow, flow0, in zip(
            explanation.edge_ids, explanation.flows, explanation.original_flows
        ):
            dest = int(explanation.graph.edge_target[edge_id])
            if explanation.reduction[dest] <= 1.0:
                assert flow <= flow0 + 1e-12

    def test_equation7(self, explanation):
        """Flow(v_i -> v_k) = h(v_k) * Flow_0(v_i -> v_k)."""
        graph = explanation.graph
        for edge_id, flow, flow0 in zip(
            explanation.edge_ids, explanation.flows, explanation.original_flows
        ):
            h = explanation.reduction[int(graph.edge_target[edge_id])]
            assert flow == pytest.approx(h * flow0)

    def test_fixpoint_equation10(self, explanation, figure1_graph):
        """At convergence: h(v_k) = sum over out-edges of h(v_j) alpha(k->j)."""
        graph = explanation.graph
        target = figure1_graph.index_of("v4")
        subgraph_edges = list(explanation.edge_ids)
        for node in explanation.subgraph.nodes:
            if node == target:
                continue
            expected = sum(
                explanation.reduction[int(graph.edge_target[e])] * graph.edge_rate[e]
                for e in subgraph_edges
                if int(graph.edge_source[e]) == node
            )
            assert explanation.reduction[node] == pytest.approx(expected, abs=1e-6)

    def test_ripple_effect_ordering(self, explanation, figure1_graph):
        """Nodes farther from the target leak more: h shrinks with distance
        in this acyclic-ish example (v6 > v5 > v3 > v1)."""
        h = {
            figure1_graph.node_id_of(n): v for n, v in explanation.reduction.items()
        }
        assert h["v6"] > h["v5"] > h["v3"] > h["v1"]

    def test_empty_subgraph_short_circuits(self, figure1_graph, olap_result):
        subgraph = build_explaining_subgraph(figure1_graph, ["v7"], "v2", radius=1)
        result = adjust_flows(subgraph, olap_result.scores, 0.85)
        assert result.converged
        assert result.iterations == 0
        assert result.target_inflow() == 0.0


class TestAggregates:
    def test_incoming_outgoing_consistency(self, explanation):
        """Sum of all incoming flows equals sum of all outgoing flows
        (every subgraph edge has both endpoints inside)."""
        total_in = sum(
            explanation.incoming_flow(n) for n in explanation.subgraph.nodes
        )
        total_out = sum(
            explanation.outgoing_flow(n) for n in explanation.subgraph.nodes
        )
        assert total_in == pytest.approx(total_out)

    def test_outgoing_flow_by_node_matches_scalar(self, explanation):
        by_node = explanation.outgoing_flow_by_node()
        for node in explanation.subgraph.nodes:
            assert by_node[node] == pytest.approx(explanation.outgoing_flow(node))

    def test_flow_by_edge_type_totals(self, explanation):
        by_type = explanation.flow_by_edge_type()
        assert sum(by_type.values()) == pytest.approx(float(explanation.flows.sum()))

    def test_adjusted_scores_equation8(self, explanation, figure1_graph):
        scores = explanation.adjusted_scores()
        v5 = figure1_graph.index_of("v5")
        assert scores[v5] == pytest.approx(explanation.outgoing_flow(v5) / 0.85)
        target = figure1_graph.index_of("v4")
        assert scores[target] == pytest.approx(explanation.target_inflow() / 0.85)

    def test_edge_flow_items_ids(self, explanation):
        items = explanation.edge_flow_items()
        assert len(items) == explanation.subgraph.num_edges
        assert all(isinstance(s, str) and isinstance(t, str) for s, t, _ in items)


class TestConvenienceWrapper:
    def test_explain_one_shot(self, figure1_graph, olap_base, olap_result):
        result = explain(
            figure1_graph, olap_base, "v4", olap_result.scores, radius=None
        )
        assert result.converged
        assert result.target_inflow() > 0
