"""Unit tests for explanation rendering (text and DOT)."""

import pytest

from repro.explain import adjust_flows, build_explaining_subgraph, to_dot, to_text


@pytest.fixture
def explanation(figure1_graph, olap_result):
    base = list(olap_result.base_weights)
    subgraph = build_explaining_subgraph(figure1_graph, base, "v4", radius=None)
    return adjust_flows(subgraph, olap_result.scores, 0.85, tolerance=1e-10)


@pytest.fixture
def empty_explanation(figure1_graph, olap_result):
    subgraph = build_explaining_subgraph(figure1_graph, ["v7"], "v2", radius=1)
    return adjust_flows(subgraph, olap_result.scores, 0.85)


class TestText:
    def test_mentions_target_and_inflow(self, explanation):
        text = to_text(explanation)
        assert "v4" in text
        assert "total authority reaching target" in text

    def test_lists_paths(self, explanation):
        text = to_text(explanation, max_paths=3)
        assert "->" in text

    def test_empty_explanation_message(self, empty_explanation):
        text = to_text(empty_explanation)
        assert "no authority path" in text


class TestDot:
    def test_valid_digraph_structure(self, explanation):
        dot = to_dot(explanation)
        assert dot.startswith("digraph explanation {")
        assert dot.endswith("}")

    def test_target_shape(self, explanation):
        dot = to_dot(explanation)
        assert "doubleoctagon" in dot

    def test_base_nodes_boxed(self, explanation):
        dot = to_dot(explanation)
        assert "shape=box" in dot

    def test_min_flow_filters_edges(self, explanation):
        full = to_dot(explanation)
        filtered = to_dot(explanation, min_flow=1e9)
        assert filtered.count("->") < full.count("->")

    def test_edges_annotated_with_flow(self, explanation):
        dot = to_dot(explanation)
        assert "label=" in dot
