"""Unit tests for labeled data graphs."""

import pytest

from repro.errors import DuplicateNodeError, UnknownNodeError
from repro.graph import DataGraph


@pytest.fixture
def small():
    graph = DataGraph()
    graph.add_node("p1", "Paper", {"title": "Index Selection for OLAP"})
    graph.add_node("p2", "Paper", {"title": "Data Cube"})
    graph.add_node("a1", "Author", {"name": "R. Agrawal"})
    graph.add_edge("p1", "p2", "cites")
    graph.add_edge("p1", "a1", "by")
    return graph


class TestNodes:
    def test_node_lookup(self, small):
        node = small.node("p1")
        assert node.label == "Paper"
        assert node.attributes["title"] == "Index Selection for OLAP"

    def test_unknown_node_raises(self, small):
        with pytest.raises(UnknownNodeError):
            small.node("nope")

    def test_duplicate_node_raises(self, small):
        with pytest.raises(DuplicateNodeError):
            small.add_node("p1", "Paper")

    def test_contains_and_len(self, small):
        assert "p1" in small
        assert "zz" not in small
        assert len(small) == 3

    def test_node_text_joins_attribute_values(self, small):
        assert small.node("p1").text() == "Index Selection for OLAP"

    def test_node_text_with_metadata_includes_names(self, small):
        assert "title" in small.node("p1").text(include_metadata=True)

    def test_nodes_with_label(self, small):
        assert [n.node_id for n in small.nodes_with_label("Paper")] == ["p1", "p2"]

    def test_label_counts(self, small):
        assert small.label_counts() == {"Paper": 2, "Author": 1}

    def test_attributes_are_copied_on_add(self):
        graph = DataGraph()
        attrs = {"title": "x"}
        graph.add_node("n", "Paper", attrs)
        attrs["title"] = "mutated"
        assert graph.node("n").attributes["title"] == "x"


class TestEdges:
    def test_edge_endpoints_must_exist(self, small):
        with pytest.raises(UnknownNodeError):
            small.add_edge("p1", "nope")
        with pytest.raises(UnknownNodeError):
            small.add_edge("nope", "p1")

    def test_degrees(self, small):
        assert small.out_degree("p1") == 2
        assert small.in_degree("p2") == 1
        assert small.in_degree("p1") == 0

    def test_out_in_edges(self, small):
        out = small.out_edges("p1")
        assert {(e.target, e.role) for e in out} == {("p2", "cites"), ("a1", "by")}
        incoming = small.in_edges("a1")
        assert [(e.source, e.role) for e in incoming] == [("p1", "by")]

    def test_degree_unknown_node_raises(self, small):
        with pytest.raises(UnknownNodeError):
            small.out_degree("zz")
        with pytest.raises(UnknownNodeError):
            small.in_degree("zz")

    def test_parallel_edges_allowed(self, small):
        small.add_edge("p1", "p2", "cites")
        assert small.num_edges == 3

    def test_self_loop_allowed(self, small):
        small.add_edge("p1", "p1", "cites")
        assert small.out_degree("p1") == 3
        assert small.in_degree("p1") == 1

    def test_counts(self, small):
        assert small.num_nodes == 3
        assert small.num_edges == 2
