"""Unit tests for NetworkX interoperability."""

import networkx as nx
import pytest

from repro.datasets.figure1 import figure1_dataset
from repro.graph import (
    AuthorityTransferDataGraph,
    from_networkx,
    to_networkx,
    transfer_graph_to_networkx,
)


@pytest.fixture
def dataset():
    return figure1_dataset()


class TestDataGraphRoundTrip:
    def test_nodes_and_attributes(self, dataset):
        mirror = to_networkx(dataset.data_graph)
        assert mirror.number_of_nodes() == 7
        assert mirror.nodes["v7"]["label"] == "Paper"
        assert "Data Cube" in mirror.nodes["v7"]["title"]

    def test_edges_with_roles(self, dataset):
        mirror = to_networkx(dataset.data_graph)
        roles = {d["role"] for _, _, d in mirror.edges(data=True)}
        assert roles == {"cites", "by", "has", "contains"}

    def test_round_trip_preserves_everything(self, dataset):
        restored = from_networkx(to_networkx(dataset.data_graph))
        assert restored.node_ids() == dataset.data_graph.node_ids()
        assert sorted(restored.edges()) == sorted(dataset.data_graph.edges())
        assert restored.node("v3").attributes == dataset.data_graph.node("v3").attributes

    def test_parallel_edges_preserved(self):
        import repro.graph as g

        graph = g.DataGraph()
        graph.add_node("a", "Paper")
        graph.add_node("b", "Paper")
        graph.add_edge("a", "b", "cites")
        graph.add_edge("a", "b", "cites")
        restored = from_networkx(to_networkx(graph))
        assert restored.num_edges == 2

    def test_missing_label_rejected(self):
        mirror = nx.DiGraph()
        mirror.add_node("x", title="no label here")
        with pytest.raises(ValueError):
            from_networkx(mirror)

    def test_plain_digraph_accepted(self):
        mirror = nx.DiGraph()
        mirror.add_node("a", label="Paper")
        mirror.add_node("b", label="Author")
        mirror.add_edge("a", "b", role="by")
        graph = from_networkx(mirror)
        assert graph.num_nodes == 2
        assert graph.edges()[0].role == "by"


class TestTransferGraphExport:
    def test_rates_exported(self, dataset):
        atdg = AuthorityTransferDataGraph(dataset.data_graph, dataset.transfer_schema)
        mirror = transfer_graph_to_networkx(atdg)
        assert mirror.number_of_edges() == atdg.num_edges
        rates = [d["rate"] for _, _, d in mirror.edges(data=True)]
        assert all(rate >= 0 for rate in rates)
        directions = {d["direction"] for _, _, d in mirror.edges(data=True)}
        assert directions == {"forward", "backward"}

    def test_networkx_pagerank_cross_check(self, dataset):
        """networkx.pagerank over the exported rates agrees with our global
        ObjectRank on the clear winner (the 'Data Cube' hub)."""
        from repro.ranking import global_objectrank

        atdg = AuthorityTransferDataGraph(dataset.data_graph, dataset.transfer_schema)
        mirror = transfer_graph_to_networkx(atdg)
        # networkx pagerank wants a DiGraph with summed parallel weights.
        collapsed = nx.DiGraph()
        collapsed.add_nodes_from(mirror.nodes())
        for u, v, data in mirror.edges(data=True):
            weight = data["rate"] + collapsed.get_edge_data(u, v, {"weight": 0})["weight"]
            collapsed.add_edge(u, v, weight=weight)
        nx_scores = nx.pagerank(collapsed, alpha=0.85, weight="weight")
        ours = global_objectrank(atdg, tolerance=1e-10)
        nx_best = max(nx_scores, key=nx_scores.get)
        assert nx_best == ours.ranking()[0] == "v7"
