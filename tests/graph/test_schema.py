"""Unit tests for schema graphs."""

import pytest

from repro.errors import UnknownLabelError
from repro.graph import SchemaEdge, SchemaGraph


@pytest.fixture
def dblp_like():
    schema = SchemaGraph()
    for label in ("Paper", "Author"):
        schema.add_label(label)
    schema.add_edge("Paper", "Paper", "cites")
    schema.add_edge("Paper", "Author", "by")
    return schema


class TestConstruction:
    def test_labels_preserve_insertion_order(self):
        schema = SchemaGraph()
        for label in ("C", "A", "B"):
            schema.add_label(label)
        assert schema.labels == ["C", "A", "B"]

    def test_adding_same_label_twice_is_noop(self):
        schema = SchemaGraph()
        schema.add_label("Paper")
        schema.add_label("Paper")
        assert schema.labels == ["Paper"]

    def test_edge_requires_known_labels(self):
        schema = SchemaGraph()
        schema.add_label("Paper")
        with pytest.raises(UnknownLabelError):
            schema.add_edge("Paper", "Nope")
        with pytest.raises(UnknownLabelError):
            schema.add_edge("Nope", "Paper")

    def test_default_role_is_generated(self):
        schema = SchemaGraph()
        schema.add_label("A")
        schema.add_label("B")
        edge = schema.add_edge("A", "B")
        assert edge.role == "A_B"

    def test_duplicate_edge_is_deduplicated(self, dblp_like):
        before = len(dblp_like.edges)
        dblp_like.add_edge("Paper", "Paper", "cites")
        assert len(dblp_like.edges) == before

    def test_parallel_edges_with_distinct_roles(self):
        schema = SchemaGraph()
        schema.add_label("Paper")
        schema.add_edge("Paper", "Paper", "cites")
        schema.add_edge("Paper", "Paper", "extends")
        assert len(schema.edges_between("Paper", "Paper")) == 2


class TestInspection:
    def test_out_and_in_edges(self, dblp_like):
        out_roles = {e.role for e in dblp_like.out_edges("Paper")}
        assert out_roles == {"cites", "by"}
        in_roles = {e.role for e in dblp_like.in_edges("Author")}
        assert in_roles == {"by"}

    def test_out_edges_unknown_label_raises(self, dblp_like):
        with pytest.raises(UnknownLabelError):
            dblp_like.out_edges("Nope")

    def test_has_edge(self, dblp_like):
        assert dblp_like.has_edge(SchemaEdge("Paper", "Author", "by"))
        assert not dblp_like.has_edge(SchemaEdge("Author", "Paper", "by"))

    def test_len_and_iter(self, dblp_like):
        assert len(dblp_like) == 2
        assert list(dblp_like) == ["Paper", "Author"]


class TestResolveEdge:
    def test_resolves_exact_role(self, dblp_like):
        edge = dblp_like.resolve_edge("Paper", "Paper", "cites")
        assert edge == SchemaEdge("Paper", "Paper", "cites")

    def test_wrong_role_returns_none(self, dblp_like):
        assert dblp_like.resolve_edge("Paper", "Paper", "extends") is None

    def test_omitted_role_resolves_when_unique(self, dblp_like):
        edge = dblp_like.resolve_edge("Paper", "Author", None)
        assert edge is not None and edge.role == "by"

    def test_omitted_role_ambiguous_returns_none(self):
        schema = SchemaGraph()
        schema.add_label("Paper")
        schema.add_edge("Paper", "Paper", "cites")
        schema.add_edge("Paper", "Paper", "extends")
        assert schema.resolve_edge("Paper", "Paper", None) is None

    def test_unknown_source_label_returns_none(self, dblp_like):
        assert dblp_like.resolve_edge("Nope", "Paper", None) is None
