"""Unit tests for the materialized authority transfer data graph (Eq. 1)."""

import numpy as np
import pytest

from repro.datasets import dblp_transfer_schema
from repro.datasets.figure1 import figure1_dataset
from repro.errors import GraphError, UnknownNodeError
from repro.graph import (
    AuthorityTransferDataGraph,
    AuthorityTransferSchemaGraph,
    DataGraph,
    SchemaGraph,
)


@pytest.fixture
def figure1_atdg():
    dataset = figure1_dataset()
    return AuthorityTransferDataGraph(dataset.data_graph, dataset.transfer_schema)


class TestMaterialization:
    def test_two_transfer_edges_per_data_edge(self, figure1_atdg):
        assert figure1_atdg.num_edges == 2 * figure1_atdg.data_graph.num_edges

    def test_node_index_round_trip(self, figure1_atdg):
        for node_id in figure1_atdg.node_ids:
            assert figure1_atdg.node_id_of(figure1_atdg.index_of(node_id)) == node_id

    def test_unknown_node_raises(self, figure1_atdg):
        with pytest.raises(UnknownNodeError):
            figure1_atdg.index_of("nope")

    def test_label_of(self, figure1_atdg):
        assert figure1_atdg.label_of(figure1_atdg.index_of("v6")) == "Author"

    def test_outdegree_split_figure5(self, figure1_atdg):
        """Figure 5: v5 cites two papers, so each cites edge carries 0.7/2."""
        v5 = figure1_atdg.index_of("v5")
        cites_rates = [
            figure1_atdg.edge_rate[e]
            for e in figure1_atdg.out_edge_ids(v5)
            if figure1_atdg.edge_type_of(int(e)).role == "cites"
            and figure1_atdg.edge_type_of(int(e)).direction.value == "forward"
        ]
        assert cites_rates == pytest.approx([0.35, 0.35])

    def test_backward_rate_uses_target_outdegree(self, figure1_atdg):
        """v6 (R. Agrawal) has two papers, so each AP edge carries 0.2/2."""
        v6 = figure1_atdg.index_of("v6")
        ap_rates = [
            figure1_atdg.edge_rate[e]
            for e in figure1_atdg.out_edge_ids(v6)
        ]
        assert sorted(ap_rates) == pytest.approx([0.1, 0.1])

    def test_zero_rate_edge_types(self, figure1_atdg):
        """The cited (cites-backward) direction carries rate 0 in Figure 3."""
        backward_cites = [
            figure1_atdg.edge_rate[i]
            for i in range(figure1_atdg.num_edges)
            if figure1_atdg.edge_type_of(i).role == "cites"
            and figure1_atdg.edge_type_of(i).direction.value == "backward"
        ]
        assert backward_cites and all(r == 0.0 for r in backward_cites)


class TestMatrix:
    def test_matrix_orientation(self, figure1_atdg):
        """A[j, i] must be the total rate of edges i -> j."""
        matrix = figure1_atdg.matrix().toarray()
        v4 = figure1_atdg.index_of("v4")
        v6 = figure1_atdg.index_of("v6")
        # v4 -> v6 is the only by-edge of v4, so rate 0.2.
        assert matrix[v6, v4] == pytest.approx(0.2)

    def test_column_sums_bounded_by_schema(self, figure1_atdg):
        """Each node's outgoing rate sum is at most its label's schema sum."""
        matrix = figure1_atdg.matrix()
        column_sums = np.asarray(matrix.sum(axis=0)).ravel()
        assert (column_sums <= 1.0 + 1e-9).all()

    def test_matrix_cached_and_invalidated(self, figure1_atdg):
        first = figure1_atdg.matrix()
        assert figure1_atdg.matrix() is first
        figure1_atdg.set_transfer_rates(dblp_transfer_schema())
        assert figure1_atdg.matrix() is not first


class TestRateSwap:
    def test_set_transfer_rates_recomputes(self, figure1_atdg):
        new_rates = dblp_transfer_schema([0.1] * 8)
        figure1_atdg.set_transfer_rates(new_rates)
        v4 = figure1_atdg.index_of("v4")
        v6 = figure1_atdg.index_of("v6")
        assert figure1_atdg.matrix().toarray()[v6, v4] == pytest.approx(0.1)
        # restore for other tests using the fixture instance
        figure1_atdg.set_transfer_rates(dblp_transfer_schema())

    def test_swap_requires_same_edge_types(self, figure1_atdg):
        other_schema = SchemaGraph()
        other_schema.add_label("X")
        other_schema.add_edge("X", "X", "loops")
        with pytest.raises(GraphError):
            figure1_atdg.set_transfer_rates(AuthorityTransferSchemaGraph(other_schema))


class TestIncidence:
    def test_out_in_edge_ids_partition_edges(self, figure1_atdg):
        total_out = sum(
            len(figure1_atdg.out_edge_ids(i)) for i in range(figure1_atdg.num_nodes)
        )
        total_in = sum(
            len(figure1_atdg.in_edge_ids(i)) for i in range(figure1_atdg.num_nodes)
        )
        assert total_out == figure1_atdg.num_edges
        assert total_in == figure1_atdg.num_edges

    def test_incidence_consistency(self, figure1_atdg):
        for node in range(figure1_atdg.num_nodes):
            for edge_id in figure1_atdg.out_edge_ids(node):
                assert figure1_atdg.edge_source[edge_id] == node
            for edge_id in figure1_atdg.in_edge_ids(node):
                assert figure1_atdg.edge_target[edge_id] == node


class TestEdgeCases:
    def test_empty_graph(self):
        schema = SchemaGraph()
        schema.add_label("A")
        atdg = AuthorityTransferDataGraph(
            DataGraph(), AuthorityTransferSchemaGraph(schema)
        )
        assert atdg.num_nodes == 0
        assert atdg.num_edges == 0
        assert atdg.matrix().shape == (0, 0)

    def test_nodes_without_edges(self):
        schema = SchemaGraph()
        schema.add_label("A")
        graph = DataGraph()
        graph.add_node("a", "A")
        graph.add_node("b", "A")
        atdg = AuthorityTransferDataGraph(graph, AuthorityTransferSchemaGraph(schema))
        assert atdg.num_nodes == 2
        assert len(atdg.out_edge_ids(0)) == 0

    def test_validation_rejects_nonconforming(self):
        schema = SchemaGraph()
        schema.add_label("A")
        graph = DataGraph()
        graph.add_node("x", "B")
        with pytest.raises(Exception):
            AuthorityTransferDataGraph(graph, AuthorityTransferSchemaGraph(schema))
