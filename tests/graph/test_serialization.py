"""Round-trip tests for graph serialization."""

import pytest

from repro.datasets.figure1 import figure1_dataset
from repro.graph import load_dataset, save_dataset
from repro.graph.serialization import (
    data_graph_from_dict,
    data_graph_to_dict,
    schema_from_dict,
    schema_to_dict,
    transfer_schema_from_dict,
    transfer_schema_to_dict,
)


@pytest.fixture
def dataset():
    return figure1_dataset()


class TestDictRoundTrips:
    def test_schema_round_trip(self, dataset):
        restored = schema_from_dict(schema_to_dict(dataset.schema))
        assert restored.labels == dataset.schema.labels
        assert restored.edges == dataset.schema.edges

    def test_transfer_schema_round_trip(self, dataset):
        restored = transfer_schema_from_dict(
            transfer_schema_to_dict(dataset.transfer_schema)
        )
        assert restored == dataset.transfer_schema
        assert restored.edge_types() == dataset.transfer_schema.edge_types()

    def test_data_graph_round_trip(self, dataset):
        restored = data_graph_from_dict(data_graph_to_dict(dataset.data_graph))
        assert restored.node_ids() == dataset.data_graph.node_ids()
        assert restored.edges() == dataset.data_graph.edges()
        assert (
            restored.node("v4").attributes == dataset.data_graph.node("v4").attributes
        )


class TestFileRoundTrip:
    def test_save_and_load(self, dataset, tmp_path):
        path = tmp_path / "figure1.json"
        save_dataset(path, dataset.data_graph, dataset.transfer_schema, name="figure1")
        graph, transfer_schema, name = load_dataset(path)
        assert name == "figure1"
        assert graph.num_nodes == dataset.data_graph.num_nodes
        assert graph.num_edges == dataset.data_graph.num_edges
        assert transfer_schema == dataset.transfer_schema

    def test_epsilon_preserved(self, dataset, tmp_path):
        from repro.graph import AuthorityTransferSchemaGraph

        eps_schema = AuthorityTransferSchemaGraph(dataset.schema, epsilon=1e-5)
        path = tmp_path / "eps.json"
        save_dataset(path, dataset.data_graph, eps_schema)
        _, restored, _ = load_dataset(path)
        assert restored.epsilon == 1e-5
