"""Unit tests for data-graph-to-schema conformance (Section 2)."""

import pytest

from repro.errors import ConformanceError
from repro.graph import (
    DataGraph,
    SchemaGraph,
    check_conformance,
    conforms,
    find_violations,
)


@pytest.fixture
def schema():
    schema = SchemaGraph()
    schema.add_label("Paper")
    schema.add_label("Author")
    schema.add_edge("Paper", "Paper", "cites")
    schema.add_edge("Paper", "Author", "by")
    return schema


def make_graph():
    graph = DataGraph()
    graph.add_node("p1", "Paper", {"title": "a"})
    graph.add_node("p2", "Paper", {"title": "b"})
    graph.add_node("a1", "Author", {"name": "x"})
    return graph


class TestConforming:
    def test_conforming_graph_passes(self, schema):
        graph = make_graph()
        graph.add_edge("p1", "p2", "cites")
        graph.add_edge("p1", "a1", "by")
        assert conforms(graph, schema)
        check_conformance(graph, schema)  # no raise

    def test_omitted_role_ok_when_unique(self, schema):
        graph = make_graph()
        graph.add_edge("p1", "a1")  # Paper->Author edge is unique in schema
        assert conforms(graph, schema)

    def test_empty_graph_conforms(self, schema):
        assert conforms(DataGraph(), schema)


class TestViolations:
    def test_unknown_label(self, schema):
        graph = make_graph()
        graph.add_node("x", "Venue")
        assert not conforms(graph, schema)
        violations = find_violations(graph, schema)
        assert any("Venue" in v for v in violations)

    def test_edge_without_schema_edge(self, schema):
        graph = make_graph()
        graph.add_edge("a1", "p1", "by")  # Author->Paper not in schema
        assert not conforms(graph, schema)

    def test_wrong_role(self, schema):
        graph = make_graph()
        graph.add_edge("p1", "p2", "extends")
        assert not conforms(graph, schema)

    def test_check_conformance_raises_with_details(self, schema):
        graph = make_graph()
        graph.add_node("x", "Venue")
        graph.add_edge("p1", "p2", "extends")
        with pytest.raises(ConformanceError) as info:
            check_conformance(graph, schema)
        assert len(info.value.violations) == 2

    def test_violation_limit(self, schema):
        graph = DataGraph()
        for i in range(80):
            graph.add_node(f"v{i}", "Venue")
        violations = find_violations(graph, schema, limit=10)
        assert len(violations) == 10
