"""Unit tests for authority transfer schema graphs (rates per edge type)."""

import pytest

from repro.datasets import (
    DBLP_GROUND_TRUTH_VECTOR,
    dblp_edge_order,
    dblp_schema,
    dblp_transfer_schema,
)
from repro.errors import RateError
from repro.graph import AuthorityTransferSchemaGraph, Direction, EdgeType, SchemaGraph


@pytest.fixture
def dblp_atsg():
    return dblp_transfer_schema()


class TestEdgeType:
    def test_forward_source_target(self):
        schema = dblp_schema()
        cites = schema.edges[0]
        forward = EdgeType(cites, Direction.FORWARD)
        assert (forward.source, forward.target) == ("Paper", "Paper")
        by = schema.edges[1]
        backward = EdgeType(by, Direction.BACKWARD)
        assert (backward.source, backward.target) == ("Author", "Paper")

    def test_direction_flip(self):
        assert Direction.FORWARD.flipped() is Direction.BACKWARD
        assert Direction.BACKWARD.flipped() is Direction.FORWARD


class TestRates:
    def test_every_schema_edge_has_two_types(self, dblp_atsg):
        assert len(dblp_atsg.edge_types()) == 2 * len(dblp_atsg.schema.edges)

    def test_ground_truth_vector_round_trip(self, dblp_atsg):
        order = dblp_edge_order(dblp_atsg.schema)
        assert dblp_atsg.as_vector(order) == pytest.approx(DBLP_GROUND_TRUTH_VECTOR)

    def test_with_vector_returns_new_graph(self, dblp_atsg):
        order = dblp_edge_order(dblp_atsg.schema)
        changed = dblp_atsg.with_vector([0.1] * 8, order)
        assert changed.as_vector(order) == pytest.approx([0.1] * 8)
        # original untouched
        assert dblp_atsg.as_vector(order) == pytest.approx(DBLP_GROUND_TRUTH_VECTOR)

    def test_with_vector_length_mismatch(self, dblp_atsg):
        with pytest.raises(RateError):
            dblp_atsg.with_vector([0.1, 0.2])

    def test_negative_rate_rejected(self, dblp_atsg):
        edge_type = dblp_atsg.edge_types()[0]
        with pytest.raises(RateError):
            dblp_atsg.set_rate(edge_type, -0.1)

    def test_unknown_edge_type_rejected(self):
        schema = SchemaGraph()
        schema.add_label("A")
        schema.add_edge("A", "A", "x")
        other = SchemaGraph()
        other.add_label("B")
        foreign = EdgeType(other.add_edge("B", "B", "y"), Direction.FORWARD)
        atsg = AuthorityTransferSchemaGraph(schema)
        with pytest.raises(RateError):
            atsg.rate(foreign)
        with pytest.raises(RateError):
            AuthorityTransferSchemaGraph(schema, {foreign: 0.5})

    def test_epsilon_floors_every_rate(self):
        schema = dblp_schema()
        atsg = AuthorityTransferSchemaGraph(schema, epsilon=1e-6)
        assert all(rate >= 1e-6 for rate in atsg.as_vector())

    def test_copy_is_independent(self, dblp_atsg):
        clone = dblp_atsg.copy()
        edge_type = clone.edge_types()[0]
        clone.set_rate(edge_type, 0.123)
        assert dblp_atsg.rate(edge_type) != 0.123
        assert clone != dblp_atsg

    def test_equality_is_rate_based(self, dblp_atsg):
        assert dblp_atsg == dblp_atsg.copy()


class TestConvergenceChecks:
    def test_paper_rates_are_convergent(self, dblp_atsg):
        # Figure 3: Paper's outgoing sum is exactly 1.0.
        assert dblp_atsg.outgoing_rate_sum("Paper") == pytest.approx(1.0)
        assert dblp_atsg.is_convergent()

    def test_outgoing_types_by_label(self, dblp_atsg):
        sources = {t.source for t in dblp_atsg.outgoing_types("Year")}
        assert sources == {"Year"}
        # Year sends: has-backward (Year->Conference) + contains-forward.
        roles = sorted(t.role for t in dblp_atsg.outgoing_types("Year"))
        assert roles == ["contains", "has"]

    def test_scaled_to_convergent(self):
        schema = dblp_schema()
        hot = AuthorityTransferSchemaGraph(schema, default_rate=0.9)
        assert not hot.is_convergent()
        cooled = hot.scaled_to_convergent()
        assert cooled.is_convergent()
        for label in schema.labels:
            assert cooled.outgoing_rate_sum(label) <= 1.0 + 1e-9
