"""Unit tests for the typed mutation records and their JSON wire format."""

import pytest

from repro.errors import IngestError
from repro.ingest import (
    AddEdge,
    AddNode,
    RemoveEdge,
    RemoveNode,
    UpdateNode,
    mutation_from_json,
)


class TestParsing:
    def test_add_node(self):
        mutation = mutation_from_json(
            {
                "op": "add_node",
                "node_id": "p1",
                "label": "Paper",
                "attributes": {"title": "OLAP cubes"},
            }
        )
        assert mutation == AddNode("p1", "Paper", {"title": "OLAP cubes"})

    def test_add_node_attributes_default_empty(self):
        mutation = mutation_from_json(
            {"op": "add_node", "node_id": "p1", "label": "Paper"}
        )
        assert mutation == AddNode("p1", "Paper", {})

    def test_remove_node(self):
        assert mutation_from_json(
            {"op": "remove_node", "node_id": "p1"}
        ) == RemoveNode("p1")

    def test_add_edge_with_role(self):
        assert mutation_from_json(
            {"op": "add_edge", "source": "p1", "target": "p2", "role": "cites"}
        ) == AddEdge("p1", "p2", "cites")

    def test_add_edge_role_optional(self):
        assert mutation_from_json(
            {"op": "add_edge", "source": "p1", "target": "p2"}
        ) == AddEdge("p1", "p2", None)

    def test_remove_edge(self):
        assert mutation_from_json(
            {"op": "remove_edge", "source": "p1", "target": "p2"}
        ) == RemoveEdge("p1", "p2", None)

    def test_update_node(self):
        assert mutation_from_json(
            {"op": "update_node", "node_id": "p1", "attributes": {"title": "x"}}
        ) == UpdateNode("p1", {"title": "x"})


class TestRejection:
    def test_unknown_op(self):
        with pytest.raises(IngestError, match="unknown mutation op"):
            mutation_from_json({"op": "truncate_graph"})

    def test_missing_op(self):
        with pytest.raises(IngestError, match="unknown mutation op"):
            mutation_from_json({"node_id": "p1"})

    def test_non_dict_payload(self):
        with pytest.raises(IngestError, match="must be an object"):
            mutation_from_json(["add_node", "p1"])

    def test_missing_required_field(self):
        with pytest.raises(IngestError, match="'node_id'"):
            mutation_from_json({"op": "remove_node"})

    def test_empty_string_field(self):
        with pytest.raises(IngestError, match="'source'"):
            mutation_from_json({"op": "add_edge", "source": "", "target": "p2"})

    def test_non_string_role(self):
        with pytest.raises(IngestError, match="'role'"):
            mutation_from_json(
                {"op": "add_edge", "source": "p1", "target": "p2", "role": 3}
            )

    def test_non_string_attributes(self):
        with pytest.raises(IngestError, match="'attributes'"):
            mutation_from_json(
                {"op": "update_node", "node_id": "p1", "attributes": {"year": 2008}}
            )


class TestDescribe:
    def test_every_mutation_echoes_its_op(self):
        mutations = [
            AddNode("p1", "Paper"),
            RemoveNode("p1"),
            AddEdge("p1", "p2", "cites"),
            RemoveEdge("p1", "p2"),
            UpdateNode("p1", {"title": "x"}),
        ]
        for mutation in mutations:
            echo = mutation.describe()
            assert echo["op"] == mutation.op

    def test_round_trip_through_wire_format(self):
        wire = {"op": "add_edge", "source": "a", "target": "b", "role": "cites"}
        assert mutation_from_json(mutation_from_json(wire).describe()) == AddEdge(
            "a", "b", "cites"
        )
