"""Tests for repro.ingest: mutations, dirty tracking, incremental refresh."""
