"""Unit tests for IngestEngine: buffering, classification and refresh."""

import numpy as np
import pytest

from repro.errors import GraphError, IngestError, UnknownNodeError
from repro.ingest import AddNode, IngestEngine, UpdateNode
from repro.ranking.precompute import PrecomputedRanker


@pytest.fixture
def ingest(figure1):
    return IngestEngine(
        figure1.data_graph, figure1.transfer_schema, min_document_frequency=1
    )


class TestWorkingCopyIsolation:
    def test_mutations_do_not_touch_the_source_graph(self, figure1, ingest):
        before = figure1.data_graph.num_nodes
        ingest.add_node("p_new", "Paper", {"title": "Streaming OLAP"})
        assert figure1.data_graph.num_nodes == before
        assert not figure1.data_graph.has_node("p_new")

    def test_refresh_snapshot_is_private(self, ingest):
        result = ingest.refresh(precompute=False)
        ingest.add_node("p_new", "Paper", {"title": "Streaming OLAP"})
        assert not result.data_graph.has_node("p_new")


class TestClassification:
    def test_node_and_edge_mutations_dirty_topology(self, ingest):
        ingest.add_node("p_new", "Paper", {"title": "Streaming OLAP"})
        assert ingest.topology_dirty
        assert ingest.pending_mutations == 1
        ingest.add_edge("p_new", "v7", "cites")
        ingest.remove_edge("p_new", "v7", "cites")
        ingest.remove_node("p_new")
        assert ingest.pending_mutations == 4

    def test_update_dirties_exactly_the_term_set_difference(self, ingest):
        # v7 is "Data Cube: A Relational Aggregation Operator ...".
        ingest.update_node("v7", {"title": "Data Cube: A Relational Sketch"})
        dirty = ingest.dirty_keywords
        # Terms shared by old and new titles must not be dirtied.
        assert "data" not in dirty
        assert "cube" not in dirty
        assert "relational" not in dirty
        # The entering and leaving terms must be.
        assert "sketch" in dirty
        assert not ingest.topology_dirty

    def test_failed_mutation_leaves_no_dirt(self, ingest):
        with pytest.raises(UnknownNodeError):
            ingest.add_edge("nope", "v7", "cites")
        with pytest.raises(UnknownNodeError):
            ingest.update_node("nope", {"title": "x"})
        with pytest.raises(GraphError):
            ingest.remove_edge("v1", "v7", "no-such-role")
        assert ingest.pending_mutations == 0
        assert ingest.dirty_keywords == frozenset()
        assert not ingest.topology_dirty

    def test_apply_dispatches_typed_records(self, ingest):
        ingest.apply(AddNode("p_new", "Paper", {"title": "Streaming OLAP"}))
        ingest.apply(UpdateNode("p_new", {"title": "Batched OLAP"}))
        assert ingest.pending_mutations == 2

    def test_apply_rejects_foreign_objects(self, ingest):
        with pytest.raises(IngestError, match="unknown mutation type"):
            ingest.apply({"op": "add_node"})  # dicts must be parsed first


class TestStaleness:
    def test_clean_engine_reports_zero(self, ingest):
        staleness = ingest.staleness()
        assert staleness.pending_mutations == 0
        assert staleness.dirty_columns == 0
        assert not staleness.topology_dirty

    def test_topology_mutation_dirties_whole_vocabulary(self, ingest):
        ingest.add_node("p_new", "Paper", {"title": "Streaming OLAP"})
        staleness = ingest.staleness()
        vocabulary = ingest.refresh(precompute=False).index.vocabulary()
        assert staleness.dirty_columns == len(list(vocabulary))

    def test_content_mutation_counts_only_precomputable_columns(self, figure1):
        # min_document_frequency=2: a dirtied term with df 1 is not a
        # precomputed column, so it must not count toward the bound.
        ingest = IngestEngine(
            figure1.data_graph, figure1.transfer_schema, min_document_frequency=2
        )
        ingest.update_node("v7", {"title": "Data Cube: A Relational Sketch"})
        staleness = ingest.staleness()
        assert staleness.pending_mutations == 1
        dirty = ingest.dirty_keywords  # refresh() below clears the tracker
        index = ingest.refresh(precompute=False).index
        precomputable = sum(
            1 for term in dirty if index.document_frequency(term) >= 2
        )
        assert staleness.dirty_columns == precomputable
        assert staleness.dirty_columns < len(dirty)

    def test_as_dict_shape(self, ingest):
        ingest.add_node("p_new", "Paper", {"title": "Streaming OLAP"})
        info = ingest.staleness().as_dict()
        assert info == {
            "pending_mutations": 1,
            "dirty_columns": info["dirty_columns"],
            "topology_dirty": True,
        }


class TestRefresh:
    def test_first_refresh_is_a_full_build(self, figure1, ingest):
        result = ingest.refresh()
        assert result.full_rebuild
        assert result.carried == ()
        assert result.epoch == 1
        expected = PrecomputedRanker(
            result.graph, result.index, min_document_frequency=1
        )
        assert result.ranker.keywords == expected.keywords
        for keyword in expected.keywords:
            assert np.array_equal(
                result.ranker.vector(keyword), expected.vector(keyword)
            )

    def test_refresh_consumes_pending(self, ingest):
        ingest.add_node("p_new", "Paper", {"title": "Streaming OLAP"})
        result = ingest.refresh(precompute=False)
        assert result.pending_consumed == 1
        assert ingest.pending_mutations == 0
        assert ingest.staleness().dirty_columns == 0

    def test_content_refresh_carries_clean_columns_by_reference(self, ingest):
        first = ingest.refresh()
        ingest.update_node("v7", {"title": "Data Cube: A Relational Sketch"})
        second = ingest.refresh(previous=first.ranker)
        assert not second.full_rebuild
        assert second.carried  # most of the vocabulary is untouched
        for keyword in second.carried:
            assert second.ranker.vector(keyword) is first.ranker.vector(keyword)

    def test_topology_refresh_recomputes_everything(self, ingest):
        first = ingest.refresh()
        ingest.add_node("p_new", "Paper", {"title": "Streaming OLAP"})
        ingest.add_edge("p_new", "v7", "cites")
        second = ingest.refresh(previous=first.ranker)
        assert not second.full_rebuild  # previous was usable ...
        assert second.carried == ()  # ... but topology dirt carried nothing
        assert set(second.recomputed) == set(second.ranker.keywords)

    def test_rate_change_forces_full_rebuild(self, figure1, ingest):
        from repro.datasets import dblp_transfer_schema

        first = ingest.refresh()
        ingest.update_node("v7", {"title": "Data Cube: A Relational Sketch"})
        learned = dblp_transfer_schema([0.5, 0.0, 0.3, 0.1, 0.2, 0.2, 0.2, 0.1])
        second = ingest.refresh(previous=first.ranker, rates=learned)
        assert second.full_rebuild
        assert second.carried == ()

    def test_failed_refresh_merges_dirt_back(self, ingest):
        ingest.update_node("v7", {"title": "Data Cube: A Relational Sketch"})
        dirty_before = ingest.dirty_keywords
        with pytest.raises(ValueError, match="mode must be one of"):
            ingest.refresh(mode="lukewarm")
        assert ingest.pending_mutations == 1
        assert ingest.dirty_keywords == dirty_before

    def test_epoch_increments_per_successful_refresh(self, ingest):
        assert ingest.epoch == 0
        ingest.refresh(precompute=False)
        ingest.refresh(precompute=False)
        assert ingest.epoch == 2

    def test_graph_version_tracks_working_copy(self, ingest):
        version = ingest.graph_version
        ingest.add_node("p_new", "Paper", {"title": "Streaming OLAP"})
        assert ingest.graph_version == version + 1
