"""Unit tests for dirty-keyword accounting across mutation batches."""

from repro.ingest import DirtyKeywordTracker


class TestAccumulation:
    def test_starts_clean(self):
        tracker = DirtyKeywordTracker()
        assert tracker.pending == 0
        assert tracker.dirty_keywords == frozenset()
        assert not tracker.topology_dirty

    def test_content_mutations_accumulate_keywords(self):
        tracker = DirtyKeywordTracker()
        tracker.note_content({"olap", "cube"})
        tracker.note_content({"cube", "xml"})
        assert tracker.dirty_keywords == {"olap", "cube", "xml"}
        assert tracker.pending == 2
        assert not tracker.topology_dirty

    def test_topology_mutation_sets_flag(self):
        tracker = DirtyKeywordTracker()
        tracker.note_topology()
        assert tracker.topology_dirty
        assert tracker.pending == 1

    def test_empty_content_diff_still_counts_pending(self):
        # A tf-only rewrite dirties no keyword but is still a pending
        # mutation the staleness bound must see.
        tracker = DirtyKeywordTracker()
        tracker.note_content(set())
        assert tracker.pending == 1
        assert tracker.dirty_keywords == frozenset()


class TestSnapshotAndMerge:
    def test_snapshot_reports_frozen_state(self):
        tracker = DirtyKeywordTracker()
        tracker.note_content({"olap"})
        tracker.note_topology()
        dirty, topology, pending = tracker.snapshot()
        assert dirty == {"olap"}
        assert topology
        assert pending == 2

    def test_clear_resets_everything(self):
        tracker = DirtyKeywordTracker()
        tracker.note_content({"olap"})
        tracker.note_topology()
        tracker.clear()
        assert tracker.snapshot() == (frozenset(), False, 0)

    def test_merge_restores_failed_refresh_dirt(self):
        # The engine snapshots + clears before a build; a failed build
        # merges the dirt back so no invalidation is ever lost.
        tracker = DirtyKeywordTracker()
        tracker.note_content({"olap"})
        dirty, topology, pending = tracker.snapshot()
        tracker.clear()
        tracker.note_content({"xml"})  # lands during the failed build
        tracker.merge(dirty, topology, pending)
        assert tracker.dirty_keywords == {"olap", "xml"}
        assert tracker.pending == 2
        assert not tracker.topology_dirty

    def test_merge_preserves_topology_flag_from_either_side(self):
        tracker = DirtyKeywordTracker()
        tracker.note_topology()
        dirty, topology, pending = tracker.snapshot()
        tracker.clear()
        tracker.merge(dirty, topology, pending)
        assert tracker.topology_dirty
