"""Unit tests for the incremental column-refresh primitive."""

import numpy as np
import pytest

from repro.datasets import dblp_transfer_schema
from repro.graph import AuthorityTransferDataGraph
from repro.ingest import refreshed_keyword_vectors
from repro.ir import InvertedIndex
from repro.ranking.precompute import PrecomputedRanker


@pytest.fixture
def previous(figure1_graph, figure1_index):
    return PrecomputedRanker(
        figure1_graph, figure1_index, min_document_frequency=1
    )


class TestFullRebuildPaths:
    def test_no_previous_rebuilds_everything(self, figure1_graph, figure1_index):
        outcome = refreshed_keyword_vectors(
            figure1_graph,
            figure1_index,
            None,
            frozenset(),
            False,
            min_document_frequency=1,
        )
        assert outcome.full_rebuild
        assert outcome.carried == ()
        assert set(outcome.vectors) == set(figure1_index.vocabulary())

    def test_rate_change_rebuilds_everything(self, figure1, figure1_index, previous):
        learned = dblp_transfer_schema([0.5, 0.0, 0.3, 0.1, 0.2, 0.2, 0.2, 0.1])
        graph = AuthorityTransferDataGraph(figure1.data_graph, learned)
        outcome = refreshed_keyword_vectors(
            graph,
            figure1_index,
            previous,
            frozenset(),
            False,
            min_document_frequency=1,
        )
        assert outcome.full_rebuild
        assert outcome.carried == ()

    def test_topology_dirt_recomputes_all_without_full_rebuild_flag(
        self, figure1_graph, figure1_index, previous
    ):
        outcome = refreshed_keyword_vectors(
            figure1_graph,
            figure1_index,
            previous,
            frozenset(),
            True,
            min_document_frequency=1,
        )
        assert not outcome.full_rebuild
        assert outcome.carried == ()
        assert set(outcome.recomputed) == set(outcome.vectors)


class TestIncrementalCarry:
    def test_clean_columns_carried_by_reference(
        self, figure1_graph, figure1_index, previous
    ):
        outcome = refreshed_keyword_vectors(
            figure1_graph,
            figure1_index,
            previous,
            frozenset({"olap"}),
            False,
            min_document_frequency=1,
        )
        assert outcome.recomputed == ("olap",)
        for keyword in outcome.carried:
            assert outcome.vectors[keyword] is previous.vector(keyword)

    def test_unchanged_graph_refresh_is_bit_identical(
        self, figure1_graph, figure1_index, previous
    ):
        outcome = refreshed_keyword_vectors(
            figure1_graph,
            figure1_index,
            previous,
            frozenset({"olap", "cube"}),
            False,
            min_document_frequency=1,
        )
        for keyword, vector in outcome.vectors.items():
            assert np.array_equal(vector, previous.vector(keyword))

    def test_warm_mode_matches_within_tolerance(
        self, figure1_graph, figure1_index, previous
    ):
        outcome = refreshed_keyword_vectors(
            figure1_graph,
            figure1_index,
            previous,
            frozenset(),
            True,  # topology dirt: recompute everything, warm-started
            min_document_frequency=1,
            mode="warm",
        )
        for keyword, vector in outcome.vectors.items():
            # Warm mode is tolerance-equal, not bit-identical: the restart
            # begins inside the convergence ball and stops within it.
            assert np.allclose(vector, previous.vector(keyword), atol=1e-5)

    def test_warm_mode_saves_iterations(
        self, figure1_graph, figure1_index, previous
    ):
        exact = refreshed_keyword_vectors(
            figure1_graph, figure1_index, previous, frozenset(), True,
            min_document_frequency=1, mode="exact",
        )
        warm = refreshed_keyword_vectors(
            figure1_graph, figure1_index, previous, frozenset(), True,
            min_document_frequency=1, mode="warm",
        )
        assert warm.iterations <= exact.iterations


class TestValidation:
    def test_unknown_mode_rejected(self, figure1_graph, figure1_index):
        with pytest.raises(ValueError, match="mode must be one of"):
            refreshed_keyword_vectors(
                figure1_graph, figure1_index, None, frozenset(), False,
                mode="lukewarm",
            )

    def test_explicit_keyword_list_deduplicated(
        self, figure1_graph, figure1_index
    ):
        outcome = refreshed_keyword_vectors(
            figure1_graph,
            figure1_index,
            None,
            frozenset(),
            False,
            keywords=["olap", "olap", "cube"],
        )
        assert list(outcome.vectors) == ["olap", "cube"]
