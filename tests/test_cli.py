"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_search_args(self):
        args = build_parser().parse_args(
            ["search", "dblp_tiny", "olap", "cube", "--top-k", "5"]
        )
        assert args.dataset == "dblp_tiny"
        assert args.keywords == ["olap", "cube"]
        assert args.top_k == 5

    def test_feedback_requires_marks(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["feedback", "dblp_tiny", "olap"])

    def test_precompute_args(self):
        args = build_parser().parse_args(
            ["precompute", "dblp_tiny", "--workers", "4", "--min-df", "1"]
        )
        assert args.dataset == "dblp_tiny"
        assert args.workers == 4
        assert args.min_df == 1
        assert args.keywords is None

    def test_precompute_defaults(self):
        args = build_parser().parse_args(["precompute", "dblp_tiny"])
        assert args.workers is None
        assert args.min_df == 2


class TestCommands:
    def test_datasets_lists_names(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "dblp_tiny" in out
        assert "ds7_cancer" in out

    def test_search_prints_ranked_results(self, capsys):
        code = main(["search", "dblp_tiny", "olap", "--top-k", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "  1. [" in out
        assert "ObjectRank2 iterations" in out

    def test_search_unknown_dataset_fails_cleanly(self, capsys):
        assert main(["search", "nope", "olap"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_search_unmatched_keywords_fails_cleanly(self, capsys):
        assert main(["search", "dblp_tiny", "zzznotaword"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_explain_by_substring(self, capsys):
        code = main(["explain", "dblp_tiny", "paper:", "olap"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Explanation for" in out

    def test_explain_no_match(self, capsys):
        code = main(["explain", "dblp_tiny", "not-a-result", "olap"])
        assert code == 1
        assert "no top-" in capsys.readouterr().err

    def test_feedback_flow(self, capsys):
        code = main(["feedback", "dblp_tiny", "olap", "--mark", "1", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "reformulated query vector" in out
        assert "learned transfer rates" in out
        assert "reformulated results" in out

    def test_feedback_mark_out_of_range(self, capsys):
        code = main(["feedback", "dblp_tiny", "olap", "--top-k", "3", "--mark", "99"])
        assert code == 1

    def test_precompute_builds_vectors(self, capsys):
        code = main(["precompute", "dblp_tiny", "--min-df", "1", "--workers", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "precomputed" in out
        assert "keyword vectors" in out
        assert "workers=2" in out

    def test_precompute_explicit_keywords(self, capsys):
        code = main(["precompute", "dblp_tiny", "--keywords", "olap"])
        assert code == 0
        assert "precomputed 1 keyword vectors" in capsys.readouterr().out

    def test_precompute_unknown_dataset_fails_cleanly(self, capsys):
        assert main(["precompute", "nope"]) == 2
        assert "error:" in capsys.readouterr().err
