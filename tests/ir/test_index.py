"""Unit tests for the inverted index."""

import pytest

from repro.graph import DataGraph
from repro.ir import Analyzer, BM25Scorer, InvertedIndex, TfIdfScorer, UniformScorer


@pytest.fixture
def index():
    return InvertedIndex.from_documents(
        [
            ("d1", "olap cube aggregation"),
            ("d2", "olap olap indexing"),
            ("d3", "xml query processing"),
        ]
    )


class TestStatistics:
    def test_num_documents(self, index):
        assert index.num_documents == 3

    def test_document_frequency(self, index):
        assert index.document_frequency("olap") == 2
        assert index.document_frequency("xml") == 1
        assert index.document_frequency("nope") == 0

    def test_term_frequency(self, index):
        assert index.term_frequency("olap", "d2") == 2
        assert index.term_frequency("olap", "d3") == 0

    def test_document_length_in_characters(self, index):
        # Equation 3 measures dl in characters, like the paper.
        assert index.document_length("d1") == len("olap cube aggregation")

    def test_average_document_length(self, index):
        expected = (
            len("olap cube aggregation")
            + len("olap olap indexing")
            + len("xml query processing")
        ) / 3
        assert index.average_document_length == pytest.approx(expected)

    def test_empty_index(self):
        empty = InvertedIndex()
        assert empty.num_documents == 0
        assert empty.average_document_length == 0.0


class TestLookup:
    def test_documents_with_term(self, index):
        assert index.documents_with_term("olap") == ["d1", "d2"]

    def test_documents_with_any_deduplicates(self, index):
        docs = index.documents_with_any(["olap", "cube", "xml"])
        assert docs == ["d1", "d2", "d3"]

    def test_postings(self, index):
        postings = {p.doc_id: p.tf for p in index.postings("olap")}
        assert postings == {"d1": 1, "d2": 2}

    def test_terms_of_document(self, index):
        assert index.terms_of_document("d2") == {"olap": 2, "indexing": 1}

    def test_contains(self, index):
        assert "olap" in index
        assert "nope" not in index

    def test_vocabulary(self, index):
        assert set(index.vocabulary()) >= {"olap", "cube", "xml"}


class TestMutation:
    def test_remove_document(self, index):
        index.remove_document("d2")
        assert index.num_documents == 2
        assert index.document_frequency("olap") == 1
        assert index.document_frequency("indexing") == 0
        assert index.terms_of_document("d2") == {}

    def test_remove_unknown_is_noop(self, index):
        index.remove_document("zz")
        assert index.num_documents == 3

    def test_readd_replaces(self, index):
        index.add_document("d1", "totally different words")
        assert index.term_frequency("olap", "d1") == 0
        assert index.term_frequency("totally", "d1") == 1
        assert index.num_documents == 3

    def test_remove_then_readd_same_doc_id(self, index):
        # The ingest remove→add cycle: stats must match a never-removed
        # index, with no residue from the removed incarnation.
        index.remove_document("d2")
        index.add_document("d2", "olap olap indexing")
        assert index.num_documents == 3
        assert index.document_frequency("olap") == 2
        assert index.term_frequency("olap", "d2") == 2
        assert index.terms_of_document("d2") == {"olap": 2, "indexing": 1}
        assert index.documents_with_term("indexing") == ["d2"]
        expected = (
            len("olap cube aggregation")
            + len("olap olap indexing")
            + len("xml query processing")
        ) / 3
        assert index.average_document_length == pytest.approx(expected)

    def test_remove_then_readd_with_new_text(self, index):
        index.remove_document("d3")
        index.add_document("d3", "stream sketches")
        assert index.document_frequency("xml") == 0
        assert index.document_frequency("stream") == 1
        assert "d3" in index.documents_with_term("sketches")

    def test_copy_preserves_orders_and_isolates(self, index):
        clone = index.copy()
        assert list(clone.vocabulary()) == list(index.vocabulary())
        clone.add_document("d4", "brand new words")
        assert index.num_documents == 3
        assert clone.num_documents == 4
        assert index.document_frequency("brand") == 0


class TestImpactBounds:
    def test_bound_is_max_tf_and_min_dl(self, index):
        # "olap": tf 1 in d1 (21 chars), tf 2 in d2 (18 chars).
        assert index.term_bound("olap") == (2, len("olap olap indexing"))

    def test_unknown_term_has_no_bound(self, index):
        assert index.term_bound("nope") is None

    def test_add_tightens_an_existing_bound(self, index):
        index.add_document("d4", "olap olap olap")
        assert index.term_bound("olap") == (3, len("olap olap olap"))

    def test_remove_invalidates_then_rebuilds_on_demand(self, index):
        assert index.term_bound("olap") == (2, 18)  # cache the bound
        index.remove_document("d2")  # d2 carried both extremes
        assert index.term_bound("olap") == (1, len("olap cube aggregation"))

    def test_readd_cannot_leave_a_stale_extreme(self, index):
        index.term_bound("olap")
        index.add_document("d2", "xml only now")  # replaces the tf=2 doc
        assert index.term_bound("olap") == (1, len("olap cube aggregation"))

    def test_term_bounds_covers_the_whole_vocabulary(self, index):
        bounds = index.term_bounds()
        assert set(bounds) == set(index.vocabulary())
        assert all(tf >= 1 and dl >= 1 for tf, dl in bounds.values())

    def test_copy_carries_bounds(self, index):
        index.term_bound("olap")
        clone = index.copy()
        clone.remove_document("d2")
        assert index.term_bound("olap") == (2, 18)
        assert clone.term_bound("olap") == (1, len("olap cube aggregation"))


class TestScorerBounds:
    """max_weight/term_upper_bound must dominate every actual weight."""

    @pytest.mark.parametrize("scorer_cls", [BM25Scorer, TfIdfScorer, UniformScorer])
    def test_max_weight_dominates_actual_weights(self, index, scorer_cls):
        scorer = scorer_cls(index)
        for term in index.vocabulary():
            ceiling = scorer.max_weight(term)
            for doc_id in index.documents_with_term(term):
                assert scorer.weight(doc_id, term) <= ceiling + 1e-12

    def test_term_upper_bound_scales_with_query_weight(self, index):
        scorer = BM25Scorer(index)
        bound = scorer.term_upper_bound("olap", 2.0)
        for doc_id in index.documents_with_term("olap"):
            assert scorer.score(doc_id, {"olap": 2.0}) <= bound + 1e-12
        assert scorer.term_upper_bound("olap", 0.0) == 0.0


class TestFromGraph:
    def test_indexes_node_text(self):
        graph = DataGraph()
        graph.add_node("p1", "Paper", {"title": "Range Queries in OLAP Data Cubes"})
        index = InvertedIndex.from_graph(graph)
        assert index.documents_with_term("olap") == ["p1"]
        # stopword "in" dropped by the default analyzer
        assert index.document_frequency("in") == 0

    def test_metadata_indexing(self):
        graph = DataGraph()
        graph.add_node("y1", "Year", {"location": "Birmingham"})
        with_meta = InvertedIndex.from_graph(graph, include_metadata=True)
        assert with_meta.documents_with_term("location") == ["y1"]
        without = InvertedIndex.from_graph(graph)
        assert without.documents_with_term("location") == []

    def test_custom_analyzer(self):
        graph = DataGraph()
        graph.add_node("p1", "Paper", {"title": "the cube"})
        index = InvertedIndex.from_graph(graph, analyzer=Analyzer(keep_stopwords=True))
        assert index.documents_with_term("the") == ["p1"]
