"""Unit tests for the inverted index."""

import pytest

from repro.graph import DataGraph
from repro.ir import Analyzer, InvertedIndex


@pytest.fixture
def index():
    return InvertedIndex.from_documents(
        [
            ("d1", "olap cube aggregation"),
            ("d2", "olap olap indexing"),
            ("d3", "xml query processing"),
        ]
    )


class TestStatistics:
    def test_num_documents(self, index):
        assert index.num_documents == 3

    def test_document_frequency(self, index):
        assert index.document_frequency("olap") == 2
        assert index.document_frequency("xml") == 1
        assert index.document_frequency("nope") == 0

    def test_term_frequency(self, index):
        assert index.term_frequency("olap", "d2") == 2
        assert index.term_frequency("olap", "d3") == 0

    def test_document_length_in_characters(self, index):
        # Equation 3 measures dl in characters, like the paper.
        assert index.document_length("d1") == len("olap cube aggregation")

    def test_average_document_length(self, index):
        expected = (
            len("olap cube aggregation")
            + len("olap olap indexing")
            + len("xml query processing")
        ) / 3
        assert index.average_document_length == pytest.approx(expected)

    def test_empty_index(self):
        empty = InvertedIndex()
        assert empty.num_documents == 0
        assert empty.average_document_length == 0.0


class TestLookup:
    def test_documents_with_term(self, index):
        assert index.documents_with_term("olap") == ["d1", "d2"]

    def test_documents_with_any_deduplicates(self, index):
        docs = index.documents_with_any(["olap", "cube", "xml"])
        assert docs == ["d1", "d2", "d3"]

    def test_postings(self, index):
        postings = {p.doc_id: p.tf for p in index.postings("olap")}
        assert postings == {"d1": 1, "d2": 2}

    def test_terms_of_document(self, index):
        assert index.terms_of_document("d2") == {"olap": 2, "indexing": 1}

    def test_contains(self, index):
        assert "olap" in index
        assert "nope" not in index

    def test_vocabulary(self, index):
        assert set(index.vocabulary()) >= {"olap", "cube", "xml"}


class TestMutation:
    def test_remove_document(self, index):
        index.remove_document("d2")
        assert index.num_documents == 2
        assert index.document_frequency("olap") == 1
        assert index.document_frequency("indexing") == 0
        assert index.terms_of_document("d2") == {}

    def test_remove_unknown_is_noop(self, index):
        index.remove_document("zz")
        assert index.num_documents == 3

    def test_readd_replaces(self, index):
        index.add_document("d1", "totally different words")
        assert index.term_frequency("olap", "d1") == 0
        assert index.term_frequency("totally", "d1") == 1
        assert index.num_documents == 3

    def test_remove_then_readd_same_doc_id(self, index):
        # The ingest remove→add cycle: stats must match a never-removed
        # index, with no residue from the removed incarnation.
        index.remove_document("d2")
        index.add_document("d2", "olap olap indexing")
        assert index.num_documents == 3
        assert index.document_frequency("olap") == 2
        assert index.term_frequency("olap", "d2") == 2
        assert index.terms_of_document("d2") == {"olap": 2, "indexing": 1}
        assert index.documents_with_term("indexing") == ["d2"]
        expected = (
            len("olap cube aggregation")
            + len("olap olap indexing")
            + len("xml query processing")
        ) / 3
        assert index.average_document_length == pytest.approx(expected)

    def test_remove_then_readd_with_new_text(self, index):
        index.remove_document("d3")
        index.add_document("d3", "stream sketches")
        assert index.document_frequency("xml") == 0
        assert index.document_frequency("stream") == 1
        assert "d3" in index.documents_with_term("sketches")

    def test_copy_preserves_orders_and_isolates(self, index):
        clone = index.copy()
        assert list(clone.vocabulary()) == list(index.vocabulary())
        clone.add_document("d4", "brand new words")
        assert index.num_documents == 3
        assert clone.num_documents == 4
        assert index.document_frequency("brand") == 0


class TestFromGraph:
    def test_indexes_node_text(self):
        graph = DataGraph()
        graph.add_node("p1", "Paper", {"title": "Range Queries in OLAP Data Cubes"})
        index = InvertedIndex.from_graph(graph)
        assert index.documents_with_term("olap") == ["p1"]
        # stopword "in" dropped by the default analyzer
        assert index.document_frequency("in") == 0

    def test_metadata_indexing(self):
        graph = DataGraph()
        graph.add_node("y1", "Year", {"location": "Birmingham"})
        with_meta = InvertedIndex.from_graph(graph, include_metadata=True)
        assert with_meta.documents_with_term("location") == ["y1"]
        without = InvertedIndex.from_graph(graph)
        assert without.documents_with_term("location") == []

    def test_custom_analyzer(self):
        graph = DataGraph()
        graph.add_node("p1", "Paper", {"title": "the cube"})
        index = InvertedIndex.from_graph(graph, analyzer=Analyzer(keep_stopwords=True))
        assert index.documents_with_term("the") == ["p1"]
