"""Unit tests for index persistence."""

import json

import pytest

from repro.ir import Analyzer, BM25Scorer, InvertedIndex, load_index, save_index


@pytest.fixture
def index():
    return InvertedIndex.from_documents(
        [
            ("d1", "olap cube aggregation"),
            ("d2", "olap olap indexing"),
            ("d3", "xml query processing"),
        ]
    )


class TestRoundTrip:
    def test_statistics_preserved(self, index, tmp_path):
        path = tmp_path / "index.json"
        save_index(index, path)
        restored = load_index(path)
        assert restored.num_documents == index.num_documents
        assert restored.average_document_length == index.average_document_length
        for term in index.vocabulary():
            assert restored.document_frequency(term) == index.document_frequency(term)
        assert restored.term_frequency("olap", "d2") == 2

    def test_scores_identical(self, index, tmp_path):
        path = tmp_path / "index.json"
        save_index(index, path)
        restored = load_index(path)
        original_scorer = BM25Scorer(index)
        restored_scorer = BM25Scorer(restored)
        for doc in ("d1", "d2", "d3"):
            assert restored_scorer.score(doc, {"olap": 1.0, "xml": 1.0}) == (
                pytest.approx(original_scorer.score(doc, {"olap": 1.0, "xml": 1.0}))
            )

    def test_restored_index_is_mutable(self, index, tmp_path):
        path = tmp_path / "index.json"
        save_index(index, path)
        restored = load_index(path, analyzer=Analyzer())
        restored.add_document("d4", "fresh olap document")
        assert restored.document_frequency("olap") == 3
        restored.remove_document("d1")
        assert restored.num_documents == 3

    def test_empty_index_round_trips(self, tmp_path):
        path = tmp_path / "empty.json"
        save_index(InvertedIndex(), path)
        restored = load_index(path)
        assert restored.num_documents == 0

    def test_version_checked(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 99, "documents": {}}))
        with pytest.raises(ValueError):
            load_index(path)


class TestImpactBoundPersistence:
    def test_v2_round_trips_bounds_verbatim(self, index, tmp_path):
        path = tmp_path / "index.json"
        save_index(index, path)
        assert json.loads(path.read_text())["version"] == 2
        restored = load_index(path)
        assert restored.term_bounds() == index.term_bounds()

    def test_saving_materializes_every_bound(self, index, tmp_path):
        path = tmp_path / "index.json"
        save_index(index, path)
        stored = json.loads(path.read_text())["bounds"]
        assert set(stored) == set(index.vocabulary())
        assert stored["olap"] == [2, len("olap olap indexing")]

    def test_v1_payload_loads_and_rebuilds_bounds_on_demand(self, index, tmp_path):
        path = tmp_path / "index.json"
        save_index(index, path)
        payload = json.loads(path.read_text())
        payload["version"] = 1
        del payload["bounds"]
        path.write_text(json.dumps(payload))
        restored = load_index(path)
        assert restored.term_bound("olap") == index.term_bound("olap")
        assert restored.term_bounds() == index.term_bounds()
