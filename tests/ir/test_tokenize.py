"""Unit tests for tokenization and analyzers."""

from repro.ir import DEFAULT_STOPWORDS, Analyzer, tokenize


class TestTokenize:
    def test_lowercases(self):
        assert tokenize("OLAP Cubes") == ["olap", "cubes"]

    def test_splits_on_punctuation(self):
        assert tokenize("Group-By, Cross-Tab, and Sub-Total.") == [
            "group", "by", "cross", "tab", "and", "sub", "total",
        ]

    def test_keeps_digits(self):
        assert tokenize("ICDE 1997") == ["icde", "1997"]

    def test_empty_string(self):
        assert tokenize("") == []

    def test_unicode_punctuation_dropped(self):
        assert tokenize("naïve") == ["na", "ve"]  # ascii-alnum tokenizer


class TestAnalyzer:
    def test_default_removes_stopwords(self):
        analyzer = Analyzer()
        assert analyzer.terms("the data cube") == ["data", "cube"]

    def test_keep_stopwords(self):
        analyzer = Analyzer(keep_stopwords=True)
        assert analyzer.terms("the data cube") == ["the", "data", "cube"]

    def test_min_token_length(self):
        analyzer = Analyzer(min_token_length=3)
        assert analyzer.terms("R. Agrawal on OLAP") == ["agrawal", "olap"]

    def test_unique_terms_preserves_first_occurrence_order(self):
        analyzer = Analyzer()
        assert analyzer.unique_terms("cube olap cube olap xml") == [
            "cube", "olap", "xml",
        ]

    def test_is_stopword(self):
        analyzer = Analyzer()
        assert analyzer.is_stopword("the")
        assert not analyzer.is_stopword("olap")

    def test_stopword_list_is_lowercase(self):
        assert all(word == word.lower() for word in DEFAULT_STOPWORDS)

    def test_custom_stopwords(self):
        analyzer = Analyzer(stopwords=frozenset({"olap"}))
        assert analyzer.terms("the olap cube") == ["the", "cube"]
