"""Unit tests for BM25 (Equation 3), tf-idf and the uniform scorer."""

import math

import pytest

from repro.ir import BM25Scorer, InvertedIndex, TfIdfScorer, UniformScorer


@pytest.fixture
def index():
    return InvertedIndex.from_documents(
        [
            ("d1", "olap cube aggregation warehouse"),
            ("d2", "olap indexing"),
            ("d3", "xml query processing model"),
            ("d4", "xml xml xml schema"),
        ]
    )


class TestBM25:
    def test_weight_zero_for_absent_term(self, index):
        scorer = BM25Scorer(index)
        assert scorer.weight("d1", "xml") == 0.0

    def test_idf_matches_formula(self, index):
        scorer = BM25Scorer(index)
        n, df = 4, 2
        assert scorer.idf("olap") == pytest.approx(
            math.log((n - df + 0.5) / (df + 0.5))
        )

    def test_idf_clamped_non_negative(self):
        # term in almost every document -> raw idf negative -> clamp to 0
        index = InvertedIndex.from_documents(
            [("a", "common x"), ("b", "common y"), ("c", "common z")]
        )
        scorer = BM25Scorer(index)
        assert scorer.idf("common") == 0.0

    def test_term_frequency_saturation(self, index):
        """More occurrences increase the weight, with diminishing returns."""
        extra = InvertedIndex.from_documents(
            [("a", "olap"), ("b", "olap olap"), ("c", "olap olap olap")]
            + [(f"z{i}", "unrelated filler") for i in range(10)]
        )
        scorer = BM25Scorer(extra)
        w1, w2, w3 = (scorer.weight(d, "olap") for d in ("a", "b", "c"))
        # All docs same length here? Not exactly (char lengths differ) — so
        # compare the saturation on equal-length artificial stats instead.
        assert w1 > 0
        assert w2 / w1 < 2.0  # sublinear growth

    def test_longer_documents_penalized(self, index):
        short = InvertedIndex.from_documents(
            [("s", "olap"), ("l", "olap " + "filler " * 20)]
            + [(f"z{i}", "unrelated text") for i in range(10)]
        )
        scorer = BM25Scorer(short)
        assert scorer.weight("s", "olap") > scorer.weight("l", "olap")

    def test_score_is_dot_product(self, index):
        scorer = BM25Scorer(index)
        weights = {"olap": 1.0, "cube": 1.0}
        expected = sum(
            scorer.weight("d1", t) * scorer.query_weight(1.0) for t in weights
        )
        assert scorer.score("d1", weights) == pytest.approx(expected)

    def test_query_weight_saturation(self, index):
        scorer = BM25Scorer(index, k3=10.0)
        assert scorer.query_weight(0.0) == 0.0
        assert scorer.query_weight(1.0) == pytest.approx(1.0)
        # large raw weights saturate toward k3 + 1
        assert scorer.query_weight(1e6) < scorer.k3 + 1.0001

    def test_parameter_validation(self, index):
        with pytest.raises(ValueError):
            BM25Scorer(index, k1=0.5)
        with pytest.raises(ValueError):
            BM25Scorer(index, b=1.5)
        with pytest.raises(ValueError):
            BM25Scorer(index, k3=-1)


class TestTfIdf:
    def test_rarer_terms_weigh_more(self, index):
        scorer = TfIdfScorer(index)
        assert scorer.weight("d1", "cube") > 0
        # "xml" has df 2, "cube" df 1 -> cube weighs more at equal tf
        assert scorer.weight("d1", "cube") > scorer.weight("d3", "xml")

    def test_zero_for_absent(self, index):
        assert TfIdfScorer(index).weight("d1", "xml") == 0.0

    def test_score(self, index):
        scorer = TfIdfScorer(index)
        assert scorer.score("d4", {"xml": 2.0}) == pytest.approx(
            2.0 * scorer.weight("d4", "xml")
        )


class TestUniform:
    def test_binary_weights(self, index):
        scorer = UniformScorer(index)
        assert scorer.weight("d1", "olap") == 1.0
        assert scorer.weight("d1", "xml") == 0.0

    def test_score_is_membership(self, index):
        scorer = UniformScorer(index)
        assert scorer.score("d1", {"olap": 1.0}) == 1.0
        assert scorer.score("d1", {"xml": 1.0}) == 0.0
        assert scorer.score("d1", {"olap": 0.0}) == 0.0
