"""Quality gates on the public API surface.

* every name exported through ``__all__`` must resolve;
* every public module, class and function must carry a docstring;
* package ``__all__`` lists must be sorted (scan-friendly).
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.bench",
    "repro.core",
    "repro.datasets",
    "repro.explain",
    "repro.feedback",
    "repro.graph",
    "repro.ingest",
    "repro.ir",
    "repro.query",
    "repro.ranking",
    "repro.reformulate",
    "repro.retrieval",
    "repro.search",
    "repro.storage",
    "repro.store",
]


def all_modules():
    names = set(PACKAGES)
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        if hasattr(package, "__path__"):
            for info in pkgutil.iter_modules(package.__path__):
                names.add(f"{package_name}.{info.name}")
    return sorted(names)


@pytest.mark.parametrize("module_name", all_modules())
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__, f"{module_name} lacks a module docstring"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_exports_resolve_and_sorted(package_name):
    package = importlib.import_module(package_name)
    exported = getattr(package, "__all__", None)
    assert exported is not None, f"{package_name} has no __all__"
    for name in exported:
        assert hasattr(package, name), f"{package_name}.{name} does not resolve"
    assert list(exported) == sorted(exported), f"{package_name}.__all__ not sorted"


@pytest.mark.parametrize("module_name", all_modules())
def test_public_callables_documented(module_name):
    """Classes and module-level functions need docstrings.

    Methods are exempt: forcing a docstring onto ``DataGraph.node`` would
    produce exactly the "what the next line does" noise the code style
    guide bans.
    """
    module = importlib.import_module(module_name)
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != module_name:
            continue  # re-export; documented at its home
        if not inspect.getdoc(obj):
            undocumented.append(name)
    assert not undocumented, f"{module_name}: undocumented public items {undocumented}"
