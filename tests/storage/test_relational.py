"""Unit tests for the mini relational store."""

import pytest

from repro.errors import StorageError
from repro.storage import Database, ForeignKey, TableSchema


@pytest.fixture
def database():
    db = Database()
    db.create_table(TableSchema("author", ("id", "name")))
    db.create_table(
        TableSchema(
            "paper",
            ("id", "title", "author_id"),
            foreign_keys=(ForeignKey("author_id", "author"),),
        )
    )
    return db


class TestSchemas:
    def test_primary_key_must_be_column(self):
        with pytest.raises(StorageError):
            TableSchema("t", ("a", "b"), primary_key="nope")

    def test_fk_column_must_exist(self):
        with pytest.raises(StorageError):
            TableSchema("t", ("id",), foreign_keys=(ForeignKey("nope", "other"),))

    def test_fk_referenced_table_must_exist(self):
        db = Database()
        with pytest.raises(StorageError):
            db.create_table(
                TableSchema("t", ("id", "x"), foreign_keys=(ForeignKey("x", "missing"),))
            )

    def test_self_referencing_fk_allowed(self):
        db = Database()
        db.create_table(
            TableSchema(
                "paper",
                ("id", "cites_id"),
                foreign_keys=(ForeignKey("cites_id", "paper"),),
            )
        )
        db.insert("paper", {"id": 1, "cites_id": None})
        db.insert("paper", {"id": 2, "cites_id": 1})

    def test_duplicate_table_rejected(self, database):
        with pytest.raises(StorageError):
            database.create_table(TableSchema("author", ("id",)))


class TestRows:
    def test_insert_and_get(self, database):
        database.insert("author", {"id": 1, "name": "R. Agrawal"})
        assert database.table("author").get(1)["name"] == "R. Agrawal"

    def test_unknown_column_rejected(self, database):
        with pytest.raises(StorageError):
            database.insert("author", {"id": 1, "oops": "x"})

    def test_missing_primary_key_rejected(self, database):
        with pytest.raises(StorageError):
            database.insert("author", {"name": "x"})

    def test_duplicate_key_rejected(self, database):
        database.insert("author", {"id": 1, "name": "a"})
        with pytest.raises(StorageError):
            database.insert("author", {"id": 1, "name": "b"})

    def test_fk_integrity_enforced(self, database):
        with pytest.raises(StorageError):
            database.insert("paper", {"id": 1, "title": "t", "author_id": 99})

    def test_null_fk_allowed(self, database):
        database.insert("paper", {"id": 1, "title": "t", "author_id": None})

    def test_rows_are_copies(self, database):
        database.insert("author", {"id": 1, "name": "a"})
        row = database.table("author").get(1)
        row["name"] = "mutated"
        assert database.table("author").get(1)["name"] == "a"

    def test_rows_iteration_order(self, database):
        for i in (3, 1, 2):
            database.insert("author", {"id": i, "name": str(i)})
        assert [r["id"] for r in database.table("author").rows()] == [3, 1, 2]

    def test_unknown_table(self, database):
        with pytest.raises(StorageError):
            database.table("nope")
        with pytest.raises(StorageError):
            database.table("author").get(42)

    def test_len_and_contains(self, database):
        database.insert("author", {"id": 1, "name": "a"})
        assert len(database.table("author")) == 1
        assert "author" in database
        assert "nope" not in database
