"""Unit tests for XML shredding (the framework's XML half)."""

import pytest

from repro.errors import StorageError
from repro.storage.xml_shred import shred_xml, xml_transfer_schema

PROCEEDINGS = """
<proceedings>
  <conference name="ICDE">
    <paper id="p1"><title>Index Selection for OLAP</title></paper>
    <paper id="p2"><title>Range Queries in OLAP Data Cubes</title>
      <cite idref="p1"/>
    </paper>
  </conference>
  <author idrefs="p1 p2"><name>R. Agrawal</name></author>
</proceedings>
"""


@pytest.fixture
def shredded():
    return shred_xml(PROCEEDINGS)


class TestShredding:
    def test_elements_become_labeled_nodes(self, shredded):
        counts = shredded.data_graph.label_counts()
        assert counts["Paper"] == 2
        assert counts["Title"] == 2
        assert counts["Conference"] == 1
        assert shredded.root_id == "proceedings:0"

    def test_attributes_and_text_captured(self, shredded):
        conference = shredded.data_graph.node("conference:0")
        assert conference.attributes["name"] == "ICDE"
        title = shredded.data_graph.node("title:0")
        assert "OLAP" in title.attributes["text"]

    def test_containment_edges(self, shredded):
        edges = shredded.data_graph.out_edges("conference:0")
        assert {(e.target, e.role) for e in edges} == {
            ("paper:0", "contains"),
            ("paper:1", "contains"),
        }

    def test_idref_becomes_reference_edge(self, shredded):
        cite_edges = [
            e for e in shredded.data_graph.edges() if e.role == "references"
        ]
        assert ("cite:0", "paper:0") in {(e.source, e.target) for e in cite_edges}

    def test_idrefs_fan_out(self, shredded):
        author_refs = [
            e.target
            for e in shredded.data_graph.out_edges("author:0")
            if e.role == "references"
        ]
        assert sorted(author_refs) == ["paper:0", "paper:1"]

    def test_id_attribute_not_stored_as_keyword(self, shredded):
        paper = shredded.data_graph.node("paper:0")
        assert "id" not in paper.attributes

    def test_schema_derived(self, shredded):
        assert shredded.schema.has_label("Paper")
        roles = {e.role for e in shredded.schema.edges}
        assert roles == {"contains", "references"}

    def test_graph_conforms_to_derived_schema(self, shredded):
        from repro.graph import check_conformance

        check_conformance(shredded.data_graph, shredded.schema)

    def test_malformed_xml_raises(self):
        with pytest.raises(StorageError):
            shred_xml("<oops>")

    def test_dangling_idref_raises(self):
        with pytest.raises(StorageError):
            shred_xml('<a><b idref="ghost"/></a>')


class TestTransferSchema:
    def test_reference_edges_outweigh_containment(self, shredded):
        from repro.graph import Direction, EdgeType

        transfer = xml_transfer_schema(shredded.schema)
        containment = [
            transfer.rate(EdgeType(e, Direction.FORWARD))
            for e in shredded.schema.edges
            if e.role == "contains"
        ]
        references = [
            transfer.rate(EdgeType(e, Direction.FORWARD))
            for e in shredded.schema.edges
            if e.role == "references"
        ]
        assert min(references) > max(containment)

    def test_convergent_rates(self, shredded):
        transfer = xml_transfer_schema(shredded.schema)
        assert transfer.is_convergent()

    def test_backward_fraction_validated(self, shredded):
        with pytest.raises(StorageError):
            xml_transfer_schema(shredded.schema, backward_fraction=1.5)

    def test_end_to_end_search_over_xml(self, shredded):
        """The whole pipeline runs on a shredded document: the cited paper
        gains authority from the citing element and the author reference."""
        from repro.core import ObjectRankSystem, SystemConfig

        transfer = xml_transfer_schema(shredded.schema)
        system = ObjectRankSystem(
            shredded.data_graph, transfer, SystemConfig(top_k=10, radius=None)
        )
        result = system.query("olap")
        ranking = result.ranked.ranking()
        assert ranking.index("paper:0") < ranking.index("conference:0")
        explanation = system.explain("paper:0")
        assert explanation.converged
