"""Unit tests for relational-to-graph shredding."""

import pytest

from repro.errors import StorageError
from repro.storage import (
    Database,
    EdgeFromForeignKey,
    EdgeTable,
    ForeignKey,
    NodeTable,
    ShredSpec,
    TableSchema,
    node_id,
    shred_to_graph,
)


@pytest.fixture
def database():
    db = Database()
    db.create_table(TableSchema("venue", ("id", "name")))
    db.create_table(
        TableSchema(
            "paper",
            ("id", "title", "venue_id"),
            foreign_keys=(ForeignKey("venue_id", "venue"),),
        )
    )
    db.create_table(TableSchema("author", ("id", "name")))
    db.create_table(
        TableSchema(
            "paper_author",
            ("id", "paper_id", "author_id"),
            foreign_keys=(ForeignKey("paper_id", "paper"), ForeignKey("author_id", "author")),
        )
    )
    db.insert("venue", {"id": 10, "name": "ICDE"})
    db.insert("paper", {"id": 1, "title": "Data Cube", "venue_id": 10})
    db.insert("paper", {"id": 2, "title": "Index Selection", "venue_id": None})
    db.insert("author", {"id": 5, "name": "J. Gray"})
    db.insert("paper_author", {"id": 0, "paper_id": 1, "author_id": 5})
    return db


@pytest.fixture
def spec():
    return ShredSpec(
        node_tables=(
            NodeTable("venue", "Venue", ("name",)),
            NodeTable("paper", "Paper", ("title",)),
            NodeTable("author", "Author", ("name",)),
        ),
        fk_edges=(EdgeFromForeignKey("paper", "venue_id", "published_at"),),
        edge_tables=(
            EdgeTable("paper_author", "paper_id", "author_id", "paper", "author", "by"),
        ),
    )


class TestShredding:
    def test_node_ids_and_labels(self, database, spec):
        graph = shred_to_graph(database, spec)
        assert graph.node(node_id("paper", 1)).label == "Paper"
        assert graph.node("venue:10").attributes == {"name": "ICDE"}

    def test_fk_edge_direction_default(self, database, spec):
        graph = shred_to_graph(database, spec)
        edges = graph.out_edges("paper:1")
        assert ("venue:10", "published_at") in {(e.target, e.role) for e in edges}

    def test_fk_edge_reverse(self, database):
        spec = ShredSpec(
            node_tables=(
                NodeTable("venue", "Venue", ("name",)),
                NodeTable("paper", "Paper", ("title",)),
                NodeTable("author", "Author", ("name",)),
            ),
            fk_edges=(
                EdgeFromForeignKey("paper", "venue_id", "publishes", reverse=True),
            ),
        )
        graph = shred_to_graph(database, spec)
        assert [(e.target, e.role) for e in graph.out_edges("venue:10")] == [
            ("paper:1", "publishes")
        ]

    def test_null_fk_produces_no_edge(self, database, spec):
        graph = shred_to_graph(database, spec)
        assert graph.out_degree("paper:2") == 0

    def test_link_table_edges(self, database, spec):
        graph = shred_to_graph(database, spec)
        assert [(e.target, e.role) for e in graph.out_edges("paper:1")
                if e.role == "by"] == [("author:5", "by")]

    def test_attribute_selection(self, database):
        spec = ShredSpec(node_tables=(NodeTable("paper", "Paper", ()),))
        graph = shred_to_graph(database, spec)
        assert graph.node("paper:1").attributes == {}

    def test_undeclared_fk_rejected(self, database):
        spec = ShredSpec(
            node_tables=(NodeTable("paper", "Paper", ("title",)),),
            fk_edges=(EdgeFromForeignKey("paper", "title", "bogus"),),
        )
        with pytest.raises(StorageError):
            shred_to_graph(database, spec)

    def test_counts(self, database, spec):
        graph = shred_to_graph(database, spec)
        assert graph.num_nodes == 4
        assert graph.num_edges == 2
