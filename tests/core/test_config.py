"""Unit tests for SystemConfig and its survey presets."""

import pytest

from repro.core import SystemConfig


class TestDefaults:
    def test_paper_default_values(self):
        config = SystemConfig()
        assert config.damping == 0.85
        assert config.tolerance == 0.0001
        assert config.radius == 3
        assert config.decay == 0.5
        assert config.expansion_factor == 0.5
        assert config.adjustment_factor == 0.5
        assert config.warm_start is True

    def test_frozen(self):
        config = SystemConfig()
        with pytest.raises(AttributeError):
            config.damping = 0.5


class TestPresets:
    def test_content_only(self):
        config = SystemConfig.content_only()
        assert config.expansion_factor == 0.2
        assert config.adjustment_factor == 0.0

    def test_structure_only(self):
        config = SystemConfig.structure_only()
        assert config.expansion_factor == 0.0
        assert config.adjustment_factor == 0.5

    def test_content_and_structure(self):
        config = SystemConfig.content_and_structure()
        assert config.expansion_factor == 0.2
        assert config.adjustment_factor == 0.5

    def test_preset_overrides(self):
        config = SystemConfig.structure_only(top_k=25, radius=2)
        assert config.top_k == 25
        assert config.radius == 2
