"""Unit and integration tests for the ObjectRankSystem facade."""

import pytest

from repro.core import ObjectRankSystem, SystemConfig
from repro.errors import ReproError


@pytest.fixture
def system(figure1):
    return ObjectRankSystem(
        figure1.data_graph,
        figure1.transfer_schema,
        SystemConfig(top_k=7, tolerance=1e-8, radius=None),
    )


class TestQuery:
    def test_query_returns_ranked_results(self, system):
        result = system.query("OLAP")
        assert result.top[0][0] == "v7"
        assert system.last_result is result

    def test_query_resets_session(self, system):
        system.query("OLAP")
        system.feedback(["v4"])
        assert len(system.timings) == 2
        system.query("databases")
        assert len(system.timings) == 1
        assert system.current_rates == system._initial_schema

    def test_timing_recorded(self, system):
        result = system.query("OLAP")
        timing = system.timings[0]
        assert timing.label == "initial"
        assert timing.search_seconds > 0
        assert timing.objectrank_iterations == result.iterations
        assert timing.subgraph_seconds == 0.0


class TestExplain:
    def test_requires_query_first(self, system):
        with pytest.raises(ReproError):
            system.explain("v4")

    def test_explain_uses_current_base_set(self, system):
        system.query("OLAP")
        explanation = system.explain("v4")
        assert explanation.converged
        base_ids = {
            explanation.graph.node_id_of(b) for b in explanation.subgraph.base_nodes
        }
        assert base_ids <= {"v1", "v4"}


class TestFeedback:
    def test_requires_query_first(self, system):
        with pytest.raises(ReproError):
            system.feedback(["v4"])

    def test_feedback_updates_state(self, system, figure1):
        system.query("OLAP")
        outcome = system.feedback(["v4"])
        assert system.current_rates is outcome.reformulated.transfer_schema
        assert system.current_vector is outcome.reformulated.query_vector
        assert system.current_rates != figure1.transfer_schema

    def test_feedback_timing_has_all_stages(self, system):
        system.query("OLAP")
        outcome = system.feedback(["v4"])
        timing = outcome.timing
        assert timing.label == "reformulated-1"
        assert timing.search_seconds > 0
        assert timing.subgraph_seconds > 0
        assert timing.adjust_seconds > 0
        assert timing.reformulate_seconds > 0
        assert timing.total_seconds == pytest.approx(
            timing.search_seconds
            + timing.subgraph_seconds
            + timing.adjust_seconds
            + timing.reformulate_seconds
        )

    def test_multiple_feedback_objects(self, system):
        system.query("OLAP")
        outcome = system.feedback(["v4", "v7"])
        assert len(outcome.explanations) == 2

    def test_empty_feedback_is_noop_reformulation(self, system, figure1):
        system.query("OLAP")
        before_vector = system.current_vector.copy()
        outcome = system.feedback([])
        assert outcome.explanations == []
        assert system.current_vector == before_vector
        assert system.current_rates == figure1.transfer_schema

    def test_explaining_iterations_accumulate(self, system):
        system.query("OLAP")
        system.feedback(["v4"])
        system.feedback(["v7"])
        assert len(system.explaining_iterations) == 2

    def test_warm_start_reduces_iterations(self, figure1):
        warm_system = ObjectRankSystem(
            figure1.data_graph,
            figure1.transfer_schema,
            SystemConfig(top_k=7, warm_start=True, tolerance=1e-8, radius=None),
        )
        cold_system = ObjectRankSystem(
            figure1.data_graph,
            figure1.transfer_schema,
            SystemConfig(top_k=7, warm_start=False, tolerance=1e-8, radius=None),
        )
        warm_system.query("OLAP")
        cold_system.query("OLAP")
        warm = warm_system.feedback(["v4"])
        cold = cold_system.feedback(["v4"])
        assert warm.result.iterations <= cold.result.iterations

    def test_sequence_of_feedback_labels(self, system):
        system.query("OLAP")
        system.feedback(["v4"])
        system.feedback(["v4"])
        labels = [t.label for t in system.timings]
        assert labels == ["initial", "reformulated-1", "reformulated-2"]


class TestGlobalWarmStart:
    def test_initial_query_warm_started_from_global(self, figure1):
        """Section 6.2: the initial query starts from global ObjectRank."""
        from repro.core import ObjectRankSystem, SystemConfig

        warm = ObjectRankSystem(
            figure1.data_graph, figure1.transfer_schema,
            SystemConfig(top_k=7, tolerance=1e-8, global_warm_start=True),
        )
        cold = ObjectRankSystem(
            figure1.data_graph, figure1.transfer_schema,
            SystemConfig(top_k=7, tolerance=1e-8, global_warm_start=False),
        )
        warm_result = warm.query("OLAP")
        cold_result = cold.query("OLAP")
        assert warm_result.ranked.ranking() == cold_result.ranked.ranking()
        assert warm_result.iterations <= cold_result.iterations

    def test_global_scores_cached_across_queries(self, figure1):
        from repro.core import ObjectRankSystem, SystemConfig

        system = ObjectRankSystem(
            figure1.data_graph, figure1.transfer_schema,
            SystemConfig(top_k=7, global_warm_start=True),
        )
        system.query("OLAP")
        cached = system._global_scores
        assert cached is not None
        system.query("databases")
        assert system._global_scores is cached

    def test_warm_start_disabled_globally(self, figure1):
        from repro.core import ObjectRankSystem, SystemConfig

        system = ObjectRankSystem(
            figure1.data_graph, figure1.transfer_schema,
            SystemConfig(top_k=7, warm_start=False, global_warm_start=True),
        )
        system.query("OLAP")
        assert system._global_scores is None
