"""Unit tests for session save/restore."""

import pytest

from repro.core import (
    ObjectRankSystem,
    SystemConfig,
    restore_session,
    save_session,
)
from repro.errors import ReproError


@pytest.fixture
def system(figure1):
    return ObjectRankSystem(
        figure1.data_graph, figure1.transfer_schema,
        SystemConfig(top_k=7, radius=None),
    )


class TestSaveRestore:
    def test_round_trip_after_feedback(self, system, figure1, tmp_path):
        system.query("OLAP")
        system.feedback(["v4"])
        learned_vector = system.current_vector.weights
        learned_rates = system.current_rates.as_vector()
        path = tmp_path / "session.json"
        save_session(system, path)

        fresh = ObjectRankSystem(
            figure1.data_graph, figure1.transfer_schema,
            SystemConfig(top_k=7, radius=None),
        )
        restore_session(fresh, path)
        assert fresh.current_vector.weights == pytest.approx(learned_vector)
        assert fresh.current_rates.as_vector() == pytest.approx(learned_rates)

    def test_restored_rates_drive_search(self, system, figure1, tmp_path):
        system.query("OLAP")
        system.feedback(["v4"])
        path = tmp_path / "session.json"
        save_session(system, path)
        expected = system.engine.search(
            system.current_vector, top_k=7, rates=system.current_rates
        ).ranked.ranking()

        fresh = ObjectRankSystem(
            figure1.data_graph, figure1.transfer_schema,
            SystemConfig(top_k=7, radius=None),
        )
        restore_session(fresh, path)
        restored = fresh.engine.search(
            fresh.current_vector, top_k=7, rates=fresh.current_rates
        ).ranked.ranking()
        assert restored == expected

    def test_save_before_query(self, system, figure1, tmp_path):
        path = tmp_path / "empty.json"
        save_session(system, path)
        fresh = ObjectRankSystem(
            figure1.data_graph, figure1.transfer_schema,
            SystemConfig(top_k=7),
        )
        restore_session(fresh, path)
        assert fresh.current_vector is None

    def test_schema_mismatch_rejected(self, system, bio_tiny, tmp_path):
        path = tmp_path / "session.json"
        system.query("OLAP")
        save_session(system, path)
        other = ObjectRankSystem(
            bio_tiny.data_graph, bio_tiny.transfer_schema, SystemConfig(top_k=5)
        )
        with pytest.raises(ReproError):
            restore_session(other, path)

    def test_bad_version_rejected(self, system, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 99}')
        with pytest.raises(ReproError):
            restore_session(system, path)
