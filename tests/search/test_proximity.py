"""Unit tests for keyword proximity search (the DISCOVER-style baseline)."""

import pytest

from repro.errors import EmptyBaseSetError
from repro.ir import InvertedIndex
from repro.search import ProximitySearcher


@pytest.fixture
def searcher(figure1):
    index = InvertedIndex.from_graph(figure1.data_graph)
    return ProximitySearcher(figure1.data_graph, index)


class TestSingleKeyword:
    def test_hits_become_size_zero_trees(self, searcher):
        answers = searcher.search(("olap",))
        assert {a.root for a in answers} == {"v1", "v4"}
        assert all(a.size == 0 for a in answers)


class TestMultiKeyword:
    def test_finds_connecting_tree(self, searcher):
        # "index" is only in v1's title, "multidimensional" only in v5's.
        answers = searcher.search(("index", "multidimensional"))
        assert answers
        best = answers[0]
        tree_nodes = set(best.nodes)
        assert "v1" in tree_nodes and "v5" in tree_nodes

    def test_smaller_trees_rank_first(self, searcher):
        answers = searcher.search(("olap", "cubes"), top_k=5)
        sizes = [a.size for a in answers]
        assert sizes == sorted(sizes)
        # v4's title holds both keywords: a size-0 tree must win.
        assert answers[0].size == 0
        assert answers[0].root == "v4"

    def test_edges_form_connected_tree(self, searcher):
        answers = searcher.search(("index", "multidimensional"))
        for answer in answers:
            if answer.size == 0:
                continue
            # every edge endpoint is a tree node
            for source, target in answer.edges:
                assert source in answer.nodes
                assert target in answer.nodes
            # connectivity: union-find over the edges reaches all nodes
            parent = {n: n for n in answer.nodes}

            def find(x):
                while parent[x] != x:
                    parent[x] = parent[parent[x]]
                    x = parent[x]
                return x

            for a, b in answer.edges:
                parent[find(a)] = find(b)
            roots = {find(n) for n in answer.nodes}
            assert len(roots) == 1

    def test_unmatched_keyword_raises(self, searcher):
        with pytest.raises(EmptyBaseSetError):
            searcher.search(("olap", "zzznothing"))

    def test_max_radius_bounds_search(self, searcher):
        narrow = searcher.search(("index", "multidimensional"), max_radius=0)
        assert narrow == []  # no common node at radius 0

    def test_top_k_truncates(self, searcher):
        answers = searcher.search(("olap", "1997"), top_k=1)
        assert len(answers) == 1


class TestContrastWithAuthorityFlow:
    def test_proximity_ignores_authority(self, searcher, figure1):
        """The paradigm contrast: proximity never surfaces v7 for 'olap'
        (it does not contain the keyword), while ObjectRank2 crowns it."""
        answers = searcher.search(("olap",))
        assert "v7" not in {a.root for a in answers}
