"""Runner behaviour, reporters, and the repository self-lint gate.

The self-lint tests are the CI contract of this PR: ``src/`` (and in
particular ``src/repro/serve/``) must stay free of non-baselined findings.
A regression that reintroduces one of the PR 2 bug patterns fails here
before any reviewer reads the diff.
"""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    Baseline,
    all_checkers,
    load_baseline,
    render,
    run_lint,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture
def messy_tree(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "bad.py").write_text(
        "def f(rates):\n    rates['x'] = 1.0\n    return rates\n"
    )
    (tmp_path / "pkg" / "good.py").write_text("VALUE = 1\n")
    (tmp_path / "pkg" / "broken.py").write_text("def f(:\n")
    (tmp_path / "pkg" / "__pycache__").mkdir()
    (tmp_path / "pkg" / "__pycache__" / "ghost.py").write_text("rates['x'] = 1\n")
    return tmp_path


class TestRunner:
    def test_discovers_and_partitions(self, messy_tree):
        report = run_lint([messy_tree / "pkg"], root=messy_tree)
        assert report.files_scanned == 2  # broken.py is a parse error
        assert [finding.code for finding in report.findings] == ["RL004"]
        assert report.findings[0].file == "pkg/bad.py"
        assert len(report.parse_errors) == 1
        assert not report.clean

    def test_pycache_never_scanned(self, messy_tree):
        report = run_lint([messy_tree / "pkg"], root=messy_tree)
        assert all("__pycache__" not in f.file for f in report.findings)

    def test_baseline_filters_known_findings(self, messy_tree):
        first = run_lint([messy_tree / "pkg" / "bad.py"], root=messy_tree)
        baseline = Baseline.from_findings(first.findings)
        second = run_lint(
            [messy_tree / "pkg" / "bad.py"], baseline=baseline, root=messy_tree
        )
        assert second.findings == []
        assert [finding.code for finding in second.baselined] == ["RL004"]
        assert second.clean

    def test_selected_checkers_only(self, messy_tree):
        report = run_lint(
            [messy_tree / "pkg" / "bad.py"],
            checkers=all_checkers(["RL005"]),
            root=messy_tree,
        )
        assert report.findings == []
        assert report.checker_codes == ["RL005"]

    def test_counts_by_code(self, messy_tree):
        report = run_lint([messy_tree / "pkg"], root=messy_tree)
        assert report.counts_by_code() == {"RL004": 1}


class TestReporters:
    @pytest.fixture
    def report(self, messy_tree):
        return run_lint([messy_tree / "pkg"], root=messy_tree)

    def test_text_format(self, report):
        text = render(report, "text")
        assert "pkg/bad.py:2: RL004" in text
        assert "suggestion:" in text
        assert "parse error" in text

    def test_json_format_is_machine_readable(self, report):
        payload = json.loads(render(report, "json"))
        assert payload["files_scanned"] == 2
        assert payload["clean"] is False
        assert payload["findings"][0]["code"] == "RL004"
        assert payload["findings"][0]["fingerprint"]
        assert payload["counts_by_code"] == {"RL004": 1}

    def test_github_format_emits_workflow_commands(self, report):
        lines = render(report, "github").splitlines()
        assert any(
            line.startswith("::error file=pkg/bad.py,line=2,") for line in lines
        )
        assert any(line.startswith("::notice::repro lint:") for line in lines)

    def test_github_format_escapes_newlines(self, report):
        assert "%0A" not in render(report, "github") or "\n::" in render(
            report, "github"
        )

    def test_unknown_format_rejected(self, report):
        with pytest.raises(ValueError, match="unknown format"):
            render(report, "xml")


class TestRepositorySelfLint:
    """The analyzer runs clean over its own repository (ISSUE 3 gate)."""

    def test_src_has_zero_non_baselined_findings(self):
        baseline = load_baseline(REPO_ROOT / ".repro-lint-baseline.json")
        report = run_lint([REPO_ROOT / "src"], baseline=baseline, root=REPO_ROOT)
        assert report.parse_errors == []
        assert report.findings == [], render(report, "text")

    def test_serve_package_is_clean_without_any_baseline(self):
        """The RL003 audit target: repro.serve passes with an EMPTY baseline."""
        report = run_lint(
            [REPO_ROOT / "src" / "repro" / "serve"],
            baseline=Baseline(),
            root=REPO_ROOT,
        )
        assert report.findings == [], render(report, "text")
        assert report.files_scanned >= 5

    def test_query_engine_is_clean_without_any_baseline(self):
        report = run_lint(
            [REPO_ROOT / "src" / "repro" / "query"],
            baseline=Baseline(),
            root=REPO_ROOT,
        )
        assert report.findings == [], render(report, "text")

    def test_lock_discipline_actually_bound_in_serve(self):
        """Guard against silently losing the RL003 attribute<->lock binding."""
        import ast

        from repro.analysis.base import SourceFile
        from repro.analysis.checkers.lock_discipline import (
            _guarded_attributes,
            _lock_attributes,
        )

        path = REPO_ROOT / "src" / "repro" / "serve" / "service.py"
        source = SourceFile.parse(str(path), path.read_text())
        guarded = {}
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef):
                locks = _lock_attributes(node)
                if locks:
                    guarded.update(_guarded_attributes(source, node, locks))
        assert guarded.get("current_rates") == "_rates_lock"
        assert guarded.get("reformulations_applied") == "_rates_lock"
        assert guarded.get("_precomputed") == "_precompute_lock"
        assert guarded.get("_runtimes") == "_runtimes_lock"
