"""Runner behaviour, reporters, and the repository self-lint gate.

The self-lint tests are the CI contract of this PR: ``src/`` (and in
particular ``src/repro/serve/``) must stay free of non-baselined findings.
A regression that reintroduces one of the PR 2 bug patterns fails here
before any reviewer reads the diff.
"""

import json
from pathlib import Path

import pytest

from repro.analysis import (
    Baseline,
    all_checkers,
    load_baseline,
    render,
    run_lint,
)

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture
def messy_tree(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "bad.py").write_text(
        "def f(rates):\n    rates['x'] = 1.0\n    return rates\n"
    )
    (tmp_path / "pkg" / "good.py").write_text("VALUE = 1\n")
    (tmp_path / "pkg" / "broken.py").write_text("def f(:\n")
    (tmp_path / "pkg" / "__pycache__").mkdir()
    (tmp_path / "pkg" / "__pycache__" / "ghost.py").write_text("rates['x'] = 1\n")
    return tmp_path


class TestRunner:
    def test_discovers_and_partitions(self, messy_tree):
        report = run_lint([messy_tree / "pkg"], root=messy_tree)
        assert report.files_scanned == 2  # broken.py is a parse error
        assert [finding.code for finding in report.findings] == ["RL004"]
        assert report.findings[0].file == "pkg/bad.py"
        assert len(report.parse_errors) == 1
        assert not report.clean

    def test_pycache_never_scanned(self, messy_tree):
        report = run_lint([messy_tree / "pkg"], root=messy_tree)
        assert all("__pycache__" not in f.file for f in report.findings)

    def test_baseline_filters_known_findings(self, messy_tree):
        first = run_lint([messy_tree / "pkg" / "bad.py"], root=messy_tree)
        baseline = Baseline.from_findings(first.findings)
        second = run_lint(
            [messy_tree / "pkg" / "bad.py"], baseline=baseline, root=messy_tree
        )
        assert second.findings == []
        assert [finding.code for finding in second.baselined] == ["RL004"]
        assert second.clean

    def test_selected_checkers_only(self, messy_tree):
        report = run_lint(
            [messy_tree / "pkg" / "bad.py"],
            checkers=all_checkers(["RL005"]),
            root=messy_tree,
        )
        assert report.findings == []
        assert report.checker_codes == ["RL005"]

    def test_counts_by_code(self, messy_tree):
        report = run_lint([messy_tree / "pkg"], root=messy_tree)
        assert report.counts_by_code() == {"RL004": 1}


class TestReporters:
    @pytest.fixture
    def report(self, messy_tree):
        return run_lint([messy_tree / "pkg"], root=messy_tree)

    def test_text_format(self, report):
        text = render(report, "text")
        assert "pkg/bad.py:2: RL004" in text
        assert "suggestion:" in text
        assert "parse error" in text

    def test_json_format_is_machine_readable(self, report):
        payload = json.loads(render(report, "json"))
        assert payload["files_scanned"] == 2
        assert payload["clean"] is False
        assert payload["findings"][0]["code"] == "RL004"
        assert payload["findings"][0]["fingerprint"]
        assert payload["counts_by_code"] == {"RL004": 1}

    def test_github_format_emits_workflow_commands(self, report):
        lines = render(report, "github").splitlines()
        assert any(
            line.startswith("::error file=pkg/bad.py,line=2,") for line in lines
        )
        assert any(line.startswith("::notice::repro lint:") for line in lines)

    def test_github_format_escapes_newlines(self, report):
        assert "%0A" not in render(report, "github") or "\n::" in render(
            report, "github"
        )

    def test_unknown_format_rejected(self, report):
        with pytest.raises(ValueError, match="unknown format"):
            render(report, "xml")


class TestParallelRunner:
    """``jobs=N`` fans files out over processes; the report must not change."""

    def test_parallel_report_matches_serial(self, messy_tree):
        serial = run_lint([messy_tree / "pkg"], root=messy_tree)
        parallel = run_lint([messy_tree / "pkg"], root=messy_tree, jobs=2)
        assert parallel.findings == serial.findings
        assert parallel.baselined == serial.baselined
        assert parallel.suppressed == serial.suppressed
        assert parallel.parse_errors == serial.parse_errors
        assert parallel.files_scanned == serial.files_scanned

    def test_jobs_one_and_none_stay_serial(self, messy_tree):
        for jobs in (None, 0, 1):
            report = run_lint([messy_tree / "pkg"], root=messy_tree, jobs=jobs)
            assert [f.code for f in report.findings] == ["RL004"]

    def test_parallel_applies_the_baseline_in_the_parent(self, messy_tree):
        first = run_lint([messy_tree / "pkg" / "bad.py"], root=messy_tree)
        baseline = Baseline.from_findings(first.findings)
        report = run_lint(
            [messy_tree / "pkg" / "bad.py"],
            baseline=baseline,
            root=messy_tree,
            jobs=2,
        )
        assert report.findings == []
        assert [f.code for f in report.baselined] == ["RL004"]

    def test_unregistered_checker_falls_back_to_serial(self, messy_tree):
        from repro.analysis.base import Checker

        class Custom(Checker):  # deliberately NOT @register-ed
            code = "ZZ999"
            name = "custom"
            summary = "test-only"

            def check(self, source):
                yield self.finding(source, source.tree.body[0], "custom hit", "")

        report = run_lint(
            [messy_tree / "pkg" / "bad.py"],
            checkers=[Custom()],
            root=messy_tree,
            jobs=2,
        )
        assert [f.code for f in report.findings] == ["ZZ999"]


class TestSarifReporter:
    @pytest.fixture
    def sarif(self, messy_tree):
        report = run_lint([messy_tree / "pkg"], root=messy_tree)
        return json.loads(render(report, "sarif"))

    def test_log_shape_and_rules(self, sarif):
        assert sarif["version"] == "2.1.0"
        (run,) = sarif["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        codes = [rule["id"] for rule in driver["rules"]]
        assert codes == [f"RL{i:03d}" for i in range(1, 18)]
        assert all(rule["shortDescription"]["text"] for rule in driver["rules"])

    def test_results_carry_location_and_fingerprint(self, sarif):
        (run,) = sarif["runs"]
        (result,) = run["results"]
        assert result["ruleId"] == "RL004"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "pkg/bad.py"
        assert location["region"]["startLine"] == 2
        assert result["partialFingerprints"]["reproLintFingerprint/v1"]
        assert result["ruleIndex"] == 3  # RL004 in the registry ordering

    def test_parse_errors_become_notifications(self, sarif):
        (run,) = sarif["runs"]
        (invocation,) = run["invocations"]
        assert invocation["executionSuccessful"] is False
        (notification,) = invocation["toolExecutionNotifications"]
        assert "parse error" in notification["message"]["text"]

    def test_suppressed_and_baselined_results_are_marked(self, messy_tree):
        bad = messy_tree / "pkg" / "bad.py"
        first = run_lint([bad], root=messy_tree)
        baseline = Baseline.from_findings(first.findings)
        (messy_tree / "pkg" / "quiet.py").write_text(
            "def f(rates):\n"
            "    rates['x'] = 1.0  # repro-lint: ignore[RL004] test fixture\n"
        )
        report = run_lint([messy_tree / "pkg"], baseline=baseline, root=messy_tree)
        payload = json.loads(render(report, "sarif"))
        kinds = {
            result["locations"][0]["physicalLocation"]["artifactLocation"]["uri"]:
            [s["kind"] for s in result.get("suppressions", [])]
            for result in payload["runs"][0]["results"]
        }
        assert kinds["pkg/bad.py"] == ["external"]
        assert kinds["pkg/quiet.py"] == ["inSource"]

    def test_metadata_surfaces_as_result_properties(self, tmp_path):
        (tmp_path / "loop.py").write_text(
            "def iterate(x, tol):\n"
            "    residual = 1.0\n"
            "    while residual > tol:\n"
            "        x, residual = step(x)\n"
            "    return x\n"
        )
        report = run_lint([tmp_path], root=tmp_path)
        payload = json.loads(render(report, "sarif"))
        (result,) = [
            r for r in payload["runs"][0]["results"] if r["ruleId"] == "RL008"
        ]
        assert result["properties"]["loop_span"] == [3, 4]


class TestBaselineMetadataStability:
    """Richer finding metadata must never invalidate a baseline entry."""

    def test_fingerprint_ignores_metadata(self):
        from repro.analysis.findings import Finding

        bare = Finding("f.py", 3, "RL007", "msg", source_line="x = self._rates")
        rich = Finding(
            "f.py", 3, "RL007", "msg", source_line="x = self._rates",
            metadata={"lock": "_rates_lock"},
        )
        assert bare.fingerprint() == rich.fingerprint()

    def test_baseline_written_before_metadata_still_matches(self):
        from repro.analysis.findings import Finding

        old = Finding("f.py", 3, "RL008", "msg", source_line="while r > tol:")
        baseline = Baseline.from_findings([old])
        new = Finding(
            "f.py", 9, "RL008", "msg", source_line="while r > tol:",
            metadata={"loop_span": [9, 12]},
        )
        assert baseline.contains(new)  # line drift + new metadata: still known


class TestRepositorySelfLint:
    """The analyzer runs clean over its own repository (ISSUE 3 gate)."""

    def test_src_has_zero_non_baselined_findings(self):
        baseline = load_baseline(REPO_ROOT / ".repro-lint-baseline.json")
        report = run_lint([REPO_ROOT / "src"], baseline=baseline, root=REPO_ROOT)
        assert report.parse_errors == []
        assert report.findings == [], render(report, "text")

    def test_src_is_clean_with_an_empty_baseline_and_all_rules(self):
        """The self-lint gate: nothing hides behind the baseline — the
        interprocedural RL010–RL013 and the abstract-interpretation
        RL014–RL017 included."""
        report = run_lint(
            [REPO_ROOT / "src"], baseline=Baseline(), root=REPO_ROOT
        )
        assert len(report.checker_codes) == 17
        assert {"RL010", "RL011", "RL012", "RL013"} <= set(
            report.checker_codes
        )
        assert {"RL014", "RL015", "RL016", "RL017"} <= set(
            report.checker_codes
        )
        assert report.findings == [], render(report, "text")

    def test_serve_package_is_clean_without_any_baseline(self):
        """The RL003 audit target: repro.serve passes with an EMPTY baseline."""
        report = run_lint(
            [REPO_ROOT / "src" / "repro" / "serve"],
            baseline=Baseline(),
            root=REPO_ROOT,
        )
        assert report.findings == [], render(report, "text")
        assert report.files_scanned >= 5

    def test_query_engine_is_clean_without_any_baseline(self):
        report = run_lint(
            [REPO_ROOT / "src" / "repro" / "query"],
            baseline=Baseline(),
            root=REPO_ROOT,
        )
        assert report.findings == [], render(report, "text")

    def test_lock_discipline_actually_bound_in_serve(self):
        """Guard against silently losing the RL003 attribute<->lock binding."""
        import ast

        from repro.analysis.base import SourceFile
        from repro.analysis.checkers.lock_discipline import (
            guarded_attributes,
            lock_attributes,
        )

        path = REPO_ROOT / "src" / "repro" / "serve" / "service.py"
        source = SourceFile.parse(str(path), path.read_text())
        guarded = {}
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef):
                locks = lock_attributes(node)
                if locks:
                    guarded.update(guarded_attributes(source, node, locks))
        assert guarded.get("current_rates") == "_rates_lock"
        assert guarded.get("reformulations_applied") == "_rates_lock"
        assert guarded.get("_precomputed") == "_precompute_lock"
        assert guarded.get("_runtimes") == "_runtimes_lock"


class TestProjectPhase:
    """The interprocedural phase: cross-file context, scope, pragmas, jobs."""

    @pytest.fixture
    def project_tree(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "helper.py").write_text(
            "import time\n"
            "\n"
            "\n"
            "def slow():\n"
            "    time.sleep(0.1)\n"
        )
        (tmp_path / "pkg" / "locked.py").write_text(
            "import threading\n"
            "\n"
            "from pkg.helper import slow\n"
            "\n"
            "\n"
            "class Service:\n"
            "    def __init__(self):\n"
            "        self._state_lock = threading.Lock()\n"
            "        self._state = {}\n"
            "\n"
            "    def refresh(self):\n"
            "        with self._state_lock:\n"
            "            slow()\n"
        )
        return tmp_path

    def test_cross_file_finding_with_call_chain(self, project_tree):
        report = run_lint([project_tree / "pkg"], root=project_tree)
        (finding,) = report.findings
        assert finding.code == "RL013"
        assert finding.file == "pkg/locked.py"
        chain = finding.metadata["call_chain"]
        assert [step["file"] for step in chain] == [
            "pkg/locked.py",
            "pkg/helper.py",
        ]

    def test_parallel_run_is_byte_identical_with_project_checkers(
        self, project_tree
    ):
        serial = run_lint([project_tree / "pkg"], root=project_tree)
        parallel = run_lint([project_tree / "pkg"], root=project_tree, jobs=2)
        # SARIF carries no timings: the logs must agree byte for byte.
        assert render(serial, "sarif") == render(parallel, "sarif")
        serial_json = json.loads(render(serial, "json"))
        parallel_json = json.loads(render(parallel, "json"))
        serial_json.pop("elapsed_seconds")
        parallel_json.pop("elapsed_seconds")
        assert serial_json == parallel_json
        assert [f.code for f in serial.findings] == ["RL013"]

    def test_scope_keeps_cross_file_context(self, project_tree):
        """Linting only locked.py still sees helper.py's blocking summary."""
        report = run_lint(
            [project_tree / "pkg"],
            root=project_tree,
            scope={"pkg/locked.py"},
        )
        assert [f.code for f in report.findings] == ["RL013"]
        assert report.files_scanned == 1

    def test_scope_drops_findings_in_unscoped_files(self, project_tree):
        report = run_lint(
            [project_tree / "pkg"],
            root=project_tree,
            scope={"pkg/helper.py"},
        )
        assert report.findings == []

    def test_pragma_suppresses_a_project_finding(self, project_tree):
        locked = project_tree / "pkg" / "locked.py"
        text = locked.read_text().replace(
            "            slow()",
            "            # repro-lint: ignore[RL013] test fixture\n"
            "            slow()",
        )
        locked.write_text(text)
        report = run_lint([project_tree / "pkg"], root=project_tree)
        assert report.findings == []
        assert [f.code for f in report.suppressed] == ["RL013"]

    def test_baseline_absorbs_project_findings(self, project_tree):
        first = run_lint([project_tree / "pkg"], root=project_tree)
        baseline = Baseline.from_findings(first.findings)
        second = run_lint(
            [project_tree / "pkg"], baseline=baseline, root=project_tree
        )
        assert second.findings == []
        assert [f.code for f in second.baselined] == ["RL013"]
        assert second.clean

    def test_phase_timings_recorded(self, project_tree):
        report = run_lint([project_tree / "pkg"], root=project_tree)
        assert set(report.phase_seconds) == {
            "files",
            "project-build",
            "project-check",
        }
        assert all(value >= 0 for value in report.phase_seconds.values())

    def test_sarif_code_flows_from_the_call_chain(self, project_tree):
        report = run_lint([project_tree / "pkg"], root=project_tree)
        payload = json.loads(render(report, "sarif"))
        (result,) = [
            r for r in payload["runs"][0]["results"] if r["ruleId"] == "RL013"
        ]
        (flow,) = result["codeFlows"]
        (thread_flow,) = flow["threadFlows"]
        steps = thread_flow["locations"]
        uris = [
            step["location"]["physicalLocation"]["artifactLocation"]["uri"]
            for step in steps
        ]
        assert uris == ["pkg/locked.py", "pkg/helper.py"]
        assert all(step["location"]["message"]["text"] for step in steps)
        # the chain was promoted out of properties: no duplication
        assert "call_chain" not in result.get("properties", {})


class TestSarifValidator:
    """``scripts/validate_sarif.py`` — the offline shape check CI runs
    before uploading the log to code scanning."""

    @staticmethod
    def _validator():
        import importlib.util

        spec = importlib.util.spec_from_file_location(
            "validate_sarif", REPO_ROOT / "scripts" / "validate_sarif.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module

    @pytest.fixture
    def payload(self, messy_tree):
        report = run_lint([messy_tree / "pkg"], root=messy_tree)
        return json.loads(render(report, "sarif"))

    def test_rendered_log_is_valid(self, payload):
        assert self._validator().validate(payload) == []

    def test_log_with_code_flows_is_valid(self, tmp_path):
        import textwrap

        module = tmp_path / "handler.py"
        module.write_text(
            textwrap.dedent(
                """
                def save(path):
                    return open(path)

                class Handler:
                    def do_POST(self):
                        body = self._read_json_body()
                        save(body["path"])
                """
            )
        )
        report = run_lint([module], baseline=Baseline(), root=tmp_path)
        payload = json.loads(render(report, "sarif"))
        assert any(
            "codeFlows" in result
            for run in payload["runs"]
            for result in run["results"]
        )
        assert self._validator().validate(payload) == []

    @pytest.mark.parametrize(
        "mutate, fragment",
        [
            (lambda p: p.update(version="2.0.0"), "version"),
            (lambda p: p.update(runs=[]), "runs"),
            (
                lambda p: p["runs"][0]["results"][0].pop("message"),
                "message.text",
            ),
            (
                lambda p: p["runs"][0]["results"][0].update(ruleId="RL999"),
                "not in tool.driver.rules",
            ),
            (
                lambda p: p["runs"][0]["results"][0]["locations"][0][
                    "physicalLocation"
                ]["region"].update(startLine=0),
                "startLine",
            ),
        ],
    )
    def test_broken_logs_are_rejected(self, payload, mutate, fragment):
        mutate(payload)
        errors = self._validator().validate(payload)
        assert errors and any(fragment in error for error in errors)

    def test_cli_entry_exit_codes(self, payload, tmp_path, capsys):
        validator = self._validator()
        log = tmp_path / "log.sarif"
        log.write_text(json.dumps(payload))
        assert validator.main([str(log)]) == 0
        assert "valid SARIF 2.1.0" in capsys.readouterr().out
        log.write_text("{")
        assert validator.main([str(log)]) == 1
        assert validator.main([]) == 2
