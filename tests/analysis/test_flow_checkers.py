"""Fixture tests for the flow-sensitive rules RL007–RL009.

The RL007 corpus test is the PR's acceptance criterion made executable: a
copy of ``src/repro/serve/service.py`` with one ``with self._rates_lock:``
removed must light up at the exact line of the now-unguarded access —
the pre-annotation snapshot of the serving layer is the known-positive.
"""

import re
from pathlib import Path

from tests.analysis.test_checkers import codes_of, lint_snippet

REPO_ROOT = Path(__file__).resolve().parents[2]
SERVICE_PY = REPO_ROOT / "src" / "repro" / "serve" / "service.py"


def lint_text(code: str, text: str, name: str = "<snippet>"):
    from repro.analysis import SourceFile, all_checkers

    (checker,) = all_checkers([code])
    return list(checker.check(SourceFile.parse(name, text)))


class TestRL007Lockset:
    GUARDED_CLASS = """
        import threading

        class Runtime:
            def __init__(self):
                self._rates_lock = threading.Lock()
                self._rates = {{}}

            def {method}
    """

    def _lint(self, method_lines: str):
        body = self.GUARDED_CLASS.format(method=method_lines.strip())
        return lint_snippet("RL007", body)

    def test_unguarded_read_flagged_with_lock_metadata(self):
        findings = self._lint(
            """peek(self):
                return self._rates
            """
        )
        assert codes_of(findings) == ["RL007"]
        assert findings[0].metadata == {"lock": "_rates_lock"}
        assert "no lock is held there" in findings[0].message

    def test_access_under_the_lock_is_clean(self):
        assert self._lint(
            """peek(self):
                with self._rates_lock:
                    return self._rates
            """
        ) == []

    def test_alias_through_a_local_still_counts_as_held(self):
        """The gap RL003's lexical matching cannot close."""
        assert self._lint(
            """peek(self):
                lock = self._rates_lock
                with lock:
                    return self._rates
            """
        ) == []

    def test_partially_guarded_path_is_flagged(self):
        findings = self._lint(
            """peek(self, fast):
                if fast:
                    return self._rates
                with self._rates_lock:
                    return self._rates
            """
        )
        assert codes_of(findings) == ["RL007"]
        # The unlocked fast-path read, not the later guarded one.
        assert "fast" not in findings[0].source_line
        assert findings[0].line == 11

    def test_locked_suffix_methods_are_exempt(self):
        assert self._lint(
            """peek_locked(self):
                return self._rates
            """
        ) == []

    def test_opposite_acquisition_orders_flag_a_deadlock_cycle(self):
        findings = lint_snippet(
            "RL007",
            """
            import threading

            class TwoLocks:
                def __init__(self):
                    self._a_lock = threading.Lock()
                    self._b_lock = threading.Lock()

                def forward(self):
                    with self._a_lock:
                        with self._b_lock:
                            pass

                def backward(self):
                    with self._b_lock:
                        with self._a_lock:
                            pass
            """,
        )
        assert codes_of(findings) == ["RL007", "RL007"]
        assert all("lock-ordering cycle" in f.message for f in findings)
        held = {(f.metadata["held"], f.metadata["lock"]) for f in findings}
        assert held == {("_a_lock", "_b_lock"), ("_b_lock", "_a_lock")}

    def test_consistent_acquisition_order_is_clean(self):
        assert lint_snippet(
            "RL007",
            """
            import threading

            class TwoLocks:
                def __init__(self):
                    self._a_lock = threading.Lock()
                    self._b_lock = threading.Lock()

                def one(self):
                    with self._a_lock:
                        with self._b_lock:
                            pass

                def two(self):
                    with self._a_lock:
                        with self._b_lock:
                            pass
            """,
        ) == []


class TestRL007ServiceCorpus:
    """The acceptance criterion: de-guard service.py, expect the exact line."""

    def _broken_service_text(self) -> tuple[str, int]:
        """service.py with the rates property's with-block removed."""
        text = SERVICE_PY.read_text(encoding="utf-8")
        pattern = re.compile(
            r"( *)with self\._rates_lock:\n( *)return self\.current_rates"
        )
        match = pattern.search(text)
        assert match is not None, "rates property changed shape; update test"
        indent = match.group(1)
        broken = pattern.sub(f"{indent}return self.current_rates", text, count=1)
        access_line = broken[: broken.index("return self.current_rates")].count(
            "\n"
        ) + 1
        return broken, access_line

    def test_shipped_service_is_clean(self):
        findings = lint_text(
            "RL007", SERVICE_PY.read_text(encoding="utf-8"), "service.py"
        )
        assert findings == []

    def test_removing_the_rates_guard_is_caught_at_the_exact_line(self):
        broken, access_line = self._broken_service_text()
        findings = lint_text("RL007", broken, "service_broken.py")
        assert any(
            f.line == access_line and f.metadata.get("lock") == "_rates_lock"
            for f in findings
        ), [(f.line, f.metadata) for f in findings]


class TestRL008FixpointLoops:
    def test_unbounded_residual_loop_flagged_with_span(self):
        findings = lint_snippet(
            "RL008",
            """
            def iterate(x, tol):
                residual = 1.0
                while residual > tol:
                    x, residual = step(x)
                return x
            """,
        )
        assert codes_of(findings) == ["RL008"]
        span = findings[0].metadata["loop_span"]
        assert span[0] == 4 and span[1] >= 5

    def test_while_true_with_residual_break_flagged(self):
        findings = lint_snippet(
            "RL008",
            """
            def iterate(x, tol):
                while True:
                    x, residual = step(x)
                    if residual < tol:
                        break
                return x
            """,
        )
        assert codes_of(findings) == ["RL008"]

    def test_counter_in_the_condition_is_accepted(self):
        assert lint_snippet(
            "RL008",
            """
            def iterate(x, tol, max_iterations):
                residual, iterations = 1.0, 0
                while residual > tol and iterations < max_iterations:
                    x, residual = step(x)
                    iterations += 1
                return x
            """,
        ) == []

    def test_counted_break_guard_is_accepted(self):
        assert lint_snippet(
            "RL008",
            """
            def iterate(x, tol, cap):
                residual, iterations = 1.0, 0
                while residual > tol:
                    x, residual = step(x)
                    iterations = iterations + 1
                    if iterations >= cap:
                        break
                return x
            """,
        ) == []

    def test_counter_that_never_bounds_anything_still_flags(self):
        findings = lint_snippet(
            "RL008",
            """
            def iterate(x, tol):
                residual, iterations = 1.0, 0
                while residual > tol:
                    x, residual = step(x)
                    iterations += 1
                return x
            """,
        )
        assert codes_of(findings) == ["RL008"]

    def test_non_residual_loops_are_ignored(self):
        assert lint_snippet(
            "RL008",
            """
            def drain(queue):
                while queue.size() > 0:
                    queue.pop()
            """,
        ) == []


class TestRL009UseAfterInvalidate:
    def test_partial_rebuild_flagged_with_invalidation_lines(self):
        findings = lint_snippet(
            "RL009",
            """
            class Cache:
                def refresh(self, precompute):
                    self._view = None
                    if precompute:
                        self._view = build()
                    return self._view.render()
            """,
        )
        assert codes_of(findings) == ["RL009"]
        assert findings[0].metadata["invalidated_at"] == [4]

    def test_lazy_rebuild_idiom_is_clean(self):
        assert lint_snippet(
            "RL009",
            """
            class Cache:
                def invalidate(self):
                    self._view = None

                def view(self):
                    if self._view is None:
                        self._view = build()
                    return self._view
            """,
        ) == []

    def test_rebuild_on_every_path_is_clean(self):
        assert lint_snippet(
            "RL009",
            """
            class Cache:
                def refresh(self, precompute):
                    self._view = None
                    if precompute:
                        self._view = build()
                    else:
                        self._view = build_cheap()
                    return self._view.render()
            """,
        ) == []

    def test_clear_call_counts_as_invalidation(self):
        findings = lint_snippet(
            "RL009",
            """
            class Cache:
                def reset(self):
                    self._entries.clear()
                    return self._entries.popitem()
            """,
        )
        assert codes_of(findings) == ["RL009"]

    def test_truthiness_guard_is_recognised(self):
        assert lint_snippet(
            "RL009",
            """
            class Cache:
                def view(self):
                    self._view = None
                    if not self._view:
                        self._view = build()
                    return self._view
            """,
        ) == []
