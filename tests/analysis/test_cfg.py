"""CFG construction: structural fixtures + the statement-coverage property.

The coverage contract is the foundation the flow-sensitive checkers stand
on: every statement of a function (nested ``def``/``class`` bodies
excluded) appears exactly once across block bodies and ``Header`` markers.
Hypothesis generates arbitrarily nested ``if``/``while``/``for``/``try``/
``with`` bodies and the property pins the contract down.
"""

import ast
import textwrap

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.cfg import (
    Header,
    WithEnter,
    WithExit,
    assigned_names,
    build_cfg,
)


def parse_func(code: str) -> ast.FunctionDef:
    module = ast.parse(textwrap.dedent(code))
    func = module.body[0]
    assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
    return func


def own_statements(func: ast.FunctionDef) -> list[ast.stmt]:
    """Every statement of ``func``, not descending into nested defs."""

    def walk(body):
        for stmt in body:
            yield stmt
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            for name in ("body", "orelse", "finalbody"):
                yield from walk(getattr(stmt, name, []) or [])
            for handler in getattr(stmt, "handlers", []) or []:
                yield from walk(handler.body)

    return list(walk(func.body))


def assert_covered_exactly_once(func: ast.FunctionDef) -> None:
    cfg = build_cfg(func)
    covered = cfg.covered_statements()
    expected = own_statements(func)
    assert len(covered) == len(expected)
    assert {id(stmt) for stmt in covered} == {id(stmt) for stmt in expected}


class TestStructure:
    def test_straight_line_is_entry_to_exit(self):
        cfg = build_cfg(parse_func("def f():\n    x = 1\n    return x\n"))
        assert cfg.entry.index == 0
        assert cfg.exit.index == 1
        assert len(cfg.entry.body) == 2  # both statements in the entry block
        labels = [edge.label for edge in cfg.successors(cfg.entry)]
        assert labels == ["next"]

    def test_if_gets_true_and_false_edges(self):
        cfg = build_cfg(
            parse_func(
                """
                def f(a):
                    if a:
                        x = 1
                    else:
                        x = 2
                    return x
                """
            )
        )
        (test_block,) = [b for b in cfg.blocks if b.test is not None]
        assert isinstance(test_block.test, ast.Name)
        assert sorted(e.label for e in cfg.successors(test_block)) == [
            "false",
            "true",
        ]

    def test_short_circuit_and_becomes_two_condition_blocks(self):
        cfg = build_cfg(
            parse_func(
                """
                def f(a, b):
                    if a and b:
                        return 1
                    return 2
                """
            )
        )
        tests = [b for b in cfg.blocks if b.test is not None]
        assert len(tests) == 2
        names = sorted(t.test.id for t in tests)
        assert names == ["a", "b"]

    def test_nested_boolop_decomposes_fully(self):
        cfg = build_cfg(
            parse_func(
                """
                def f(a, b, c):
                    if (a or b) and c:
                        return 1
                    return 2
                """
            )
        )
        tests = [b for b in cfg.blocks if b.test is not None]
        assert sorted(t.test.id for t in tests) == ["a", "b", "c"]

    def test_not_swaps_edge_targets(self):
        cfg = build_cfg(
            parse_func(
                """
                def f(a):
                    if not a:
                        x = 1
                    else:
                        y = 2
                    return 0
                """
            )
        )
        # The leaf test is the bare `a`; its *false* edge must lead to the
        # branch assigning x (the `not a` true-branch).
        (test_block,) = [b for b in cfg.blocks if b.test is not None]
        assert isinstance(test_block.test, ast.Name) and test_block.test.id == "a"
        by_label = {e.label: e.target for e in cfg.successors(test_block)}
        x_block = next(
            b
            for b in cfg.blocks
            if any(
                isinstance(item, ast.Assign)
                and isinstance(item.targets[0], ast.Name)
                and item.targets[0].id == "x"
                for item in b.body
            )
        )
        assert by_label["false"] == x_block.index

    def test_while_has_back_edge(self):
        cfg = build_cfg(
            parse_func(
                """
                def f(n):
                    while n:
                        n = n - 1
                    return n
                """
            )
        )
        header_block = next(
            b
            for b in cfg.blocks
            if any(
                isinstance(item, Header) and isinstance(item.stmt, ast.While)
                for item in b.body
            )
        )
        back_edges = [
            e for e in cfg.edges if e.target == header_block.index and e.source > header_block.index
        ]
        assert back_edges, "loop body must jump back to the while header"

    def test_break_jumps_past_the_loop(self):
        cfg = build_cfg(
            parse_func(
                """
                def f(items):
                    for item in items:
                        if item:
                            break
                    return 0
                """
            )
        )
        break_block = next(
            b for b in cfg.blocks if any(isinstance(i, ast.Break) for i in b.body)
        )
        return_block = next(
            b for b in cfg.blocks if any(isinstance(i, ast.Return) for i in b.body)
        )
        # break must reach the return without passing the for header again.
        reachable = _reachable_from(cfg, break_block.index, forbidden=set())
        assert return_block.index in reachable

    def test_with_brackets_body_in_enter_exit(self):
        cfg = build_cfg(
            parse_func(
                """
                def f(self):
                    with self._lock:
                        x = 1
                    return x
                """
            )
        )
        items = [item for _b, _p, item in cfg.walk_items()]
        enters = [i for i in items if isinstance(i, WithEnter)]
        exits = [i for i in items if isinstance(i, WithExit)]
        assert len(enters) == 1 and len(exits) == 1
        order = [type(i).__name__ for i in items if not isinstance(i, ast.stmt)]
        assert order.index("WithEnter") < order.index("WithExit")

    def test_return_inside_with_emits_synthetic_exit(self):
        cfg = build_cfg(
            parse_func(
                """
                def f(self):
                    with self._lock:
                        return 1
                """
            )
        )
        return_block = next(
            b for b in cfg.blocks if any(isinstance(i, ast.Return) for i in b.body)
        )
        kinds = [type(i).__name__ for i in return_block.body]
        assert kinds.index("Return") < kinds.index("WithExit")

    def test_try_body_gets_except_edges_to_handlers(self):
        cfg = build_cfg(
            parse_func(
                """
                def f():
                    try:
                        x = work()
                    except ValueError:
                        x = None
                    return x
                """
            )
        )
        body_block = next(
            b
            for b in cfg.blocks
            if any(
                isinstance(i, ast.Assign)
                and isinstance(i.value, ast.Call)
                for i in b.body
            )
        )
        labels = [e.label for e in cfg.successors(body_block)]
        assert "except" in labels

    def test_covered_statements_on_a_kitchen_sink_function(self):
        assert_covered_exactly_once(
            parse_func(
                """
                def f(self, items, flag):
                    total = 0
                    for item in items:
                        if item < 0:
                            continue
                        while flag and item:
                            item -= 1
                            if item == 3:
                                break
                        try:
                            total += item
                        except OverflowError:
                            return None
                        finally:
                            flag = not flag
                    with self._lock:
                        self.total = total
                    def helper(y):
                        return y + 1
                    return helper(total)
                """
            )
        )


class TestAssignedNames:
    def test_assign_and_augassign(self):
        func = parse_func("def f():\n    x = 1\n    x += 1\n")
        assign, aug = func.body
        assert assigned_names(assign) == {"x"}
        assert assigned_names(aug) == {"x"}

    def test_for_header_binds_targets(self):
        func = parse_func("def f(pairs):\n    for k, v in pairs:\n        pass\n")
        cfg = build_cfg(func)
        headers = [
            item
            for _b, _p, item in cfg.walk_items()
            if isinstance(item, Header) and isinstance(item.stmt, ast.For)
        ]
        assert assigned_names(headers[0]) == {"k", "v"}

    def test_with_enter_binds_optional_vars(self):
        func = parse_func("def f(p):\n    with open(p) as fh:\n        pass\n")
        cfg = build_cfg(func)
        enters = [
            item for _b, _p, item in cfg.walk_items() if isinstance(item, WithEnter)
        ]
        assert assigned_names(enters[0]) == {"fh"}

    def test_import_binds_the_alias(self):
        func = parse_func("def f():\n    import os.path as osp\n")
        assert assigned_names(func.body[0]) == {"osp"}


def _reachable_from(cfg, start: int, forbidden: set) -> set:
    seen = {start}
    stack = [start]
    while stack:
        index = stack.pop()
        for edge in cfg.successors(index):
            if edge.target not in seen and edge.target not in forbidden:
                seen.add(edge.target)
                stack.append(edge.target)
    return seen


# -- property suite -----------------------------------------------------------

_NAMES = st.sampled_from(["x", "y", "z", "flag"])
_CONDS = st.sampled_from(
    ["x", "x < y", "x and y", "not x", "x or (y and flag)", "x is None"]
)


@st.composite
def _body_lines(draw, depth=0, in_loop=False):
    """Source lines (relative indent) of a random statement body."""
    kinds = ["assign", "expr"]
    if depth < 3:
        kinds += ["if", "ifelse", "while", "for", "try", "with"]
    if in_loop:
        kinds += ["break", "continue"]
    kinds += ["return"]

    lines = []
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        kind = draw(st.sampled_from(kinds))
        indent = "    "
        if kind == "assign":
            lines.append(f"{draw(_NAMES)} = {draw(_NAMES)}")
        elif kind == "expr":
            lines.append(f"print({draw(_NAMES)})")
        elif kind == "return":
            lines.append(f"return {draw(_NAMES)}")
        elif kind in ("break", "continue"):
            lines.append(kind)
        elif kind in ("if", "ifelse"):
            lines.append(f"if {draw(_CONDS)}:")
            lines.extend(indent + l for l in draw(_body_lines(depth + 1, in_loop)))
            if kind == "ifelse":
                lines.append("else:")
                lines.extend(
                    indent + l for l in draw(_body_lines(depth + 1, in_loop))
                )
        elif kind == "while":
            lines.append(f"while {draw(_CONDS)}:")
            lines.extend(indent + l for l in draw(_body_lines(depth + 1, True)))
        elif kind == "for":
            lines.append(f"for {draw(_NAMES)} in items:")
            lines.extend(indent + l for l in draw(_body_lines(depth + 1, True)))
        elif kind == "try":
            lines.append("try:")
            lines.extend(indent + l for l in draw(_body_lines(depth + 1, in_loop)))
            lines.append("except ValueError:")
            lines.extend(indent + l for l in draw(_body_lines(depth + 1, in_loop)))
            if draw(st.booleans()):
                lines.append("finally:")
                lines.extend(
                    indent + l for l in draw(_body_lines(depth + 1, in_loop))
                )
        elif kind == "with":
            lines.append("with ctx() as handle:")
            lines.extend(indent + l for l in draw(_body_lines(depth + 1, in_loop)))
    return lines


@st.composite
def random_functions(draw):
    lines = ["def f(x, y, flag, items):"]
    lines.extend("    " + line for line in draw(_body_lines()))
    return "\n".join(lines) + "\n"


class TestCoverageProperty:
    @settings(max_examples=60, deadline=None)
    @given(random_functions())
    def test_every_statement_covered_exactly_once(self, code):
        func = ast.parse(code).body[0]
        assert_covered_exactly_once(func)

    @settings(max_examples=60, deadline=None)
    @given(random_functions())
    def test_every_edge_references_real_blocks(self, code):
        cfg = build_cfg(ast.parse(code).body[0])
        for edge in cfg.edges:
            assert 0 <= edge.source < len(cfg.blocks)
            assert 0 <= edge.target < len(cfg.blocks)
