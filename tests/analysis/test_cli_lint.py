"""The ``repro lint`` CLI: formats, exit codes, baseline workflow."""

import json
from pathlib import Path

import pytest

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture
def dirty_file(tmp_path):
    path = tmp_path / "dirty.py"
    path.write_text("def f(rates):\n    rates['x'] = 1.0\n    return rates\n")
    return path


class TestLintCommand:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("VALUE = 1\n")
        assert main(["lint", str(clean)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, dirty_file, capsys):
        assert main(["lint", str(dirty_file)]) == 1
        out = capsys.readouterr().out
        assert "RL004" in out

    def test_json_format(self, dirty_file, capsys):
        assert main(["lint", str(dirty_file), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is False
        assert payload["findings"][0]["code"] == "RL004"

    def test_github_format(self, dirty_file, capsys):
        assert main(["lint", str(dirty_file), "--format", "github"]) == 1
        assert "::error file=" in capsys.readouterr().out

    def test_unknown_select_code_exits_two(self, dirty_file, capsys):
        assert main(["lint", str(dirty_file), "--select", "RL999"]) == 2
        assert "unknown rule codes" in capsys.readouterr().err

    def test_select_skips_other_rules(self, dirty_file):
        assert main(["lint", str(dirty_file), "--select", "RL005"]) == 0

    def test_write_then_respect_baseline(self, dirty_file, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert (
            main(
                [
                    "lint",
                    str(dirty_file),
                    "--baseline",
                    str(baseline),
                    "--write-baseline",
                ]
            )
            == 0
        )
        assert baseline.exists()
        capsys.readouterr()
        # Baselined findings no longer fail the gate ...
        assert main(["lint", str(dirty_file), "--baseline", str(baseline)]) == 0
        assert "1 baselined" in capsys.readouterr().out
        # ... unless the baseline is explicitly ignored.
        assert (
            main(
                [
                    "lint",
                    str(dirty_file),
                    "--baseline",
                    str(baseline),
                    "--no-baseline",
                ]
            )
            == 1
        )

    def test_repository_gate_matches_ci_invocation(self, capsys):
        """Exactly what CI runs: repro lint --format github src -> exit 0."""
        assert (
            main(
                [
                    "lint",
                    "--format",
                    "github",
                    "--baseline",
                    str(REPO_ROOT / ".repro-lint-baseline.json"),
                    str(REPO_ROOT / "src"),
                ]
            )
            == 0
        ), capsys.readouterr().out


class TestChangedScope:
    """``repro lint --changed``: git-scoped runs with a full-run fallback."""

    @staticmethod
    def _git(*args, cwd):
        import subprocess

        subprocess.run(
            ["git", "-c", "user.email=t@example.com", "-c", "user.name=t",
             *args],
            cwd=cwd, check=True, capture_output=True,
        )

    @pytest.fixture
    def checkout(self, tmp_path):
        (tmp_path / "clean.py").write_text("VALUE = 1\n")
        (tmp_path / "dirty.py").write_text("VALUE = 2\n")
        self._git("init", "-q", cwd=tmp_path)
        self._git("add", ".", cwd=tmp_path)
        self._git("commit", "-qm", "seed", cwd=tmp_path)
        return tmp_path

    def test_only_dirty_files_are_linted(self, checkout, monkeypatch, capsys):
        (checkout / "dirty.py").write_text(
            "def f(rates):\n    rates['x'] = 1.0\n    return rates\n"
        )
        monkeypatch.chdir(checkout)
        assert main(["lint", ".", "--changed", "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "RL004" in out
        assert "1 file(s)" in out  # clean.py was skipped

    def test_untracked_files_count_as_changed(
        self, checkout, monkeypatch, capsys
    ):
        (checkout / "fresh.py").write_text(
            "def f(rates):\n    rates['x'] = 1.0\n    return rates\n"
        )
        monkeypatch.chdir(checkout)
        assert main(["lint", ".", "--changed", "--no-baseline"]) == 1
        assert "fresh.py" in capsys.readouterr().out

    def test_untracked_package_is_expanded_to_its_files(
        self, checkout, monkeypatch, capsys
    ):
        """Plain porcelain collapses a new directory to ``?? pkg/``; the
        scope must still see the modules inside it."""
        package = checkout / "newpkg"
        package.mkdir()
        (package / "__init__.py").write_text("")
        (package / "bad.py").write_text(
            "def f(rates):\n    rates['x'] = 1.0\n    return rates\n"
        )
        monkeypatch.chdir(checkout)
        assert main(["lint", ".", "--changed", "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "bad.py" in out
        assert "2 file(s)" in out  # __init__.py and bad.py, nothing else

    def test_rename_is_linted_under_its_new_name(
        self, checkout, monkeypatch, capsys
    ):
        (checkout / "dirty.py").write_text(
            "def f(rates):\n    rates['x'] = 1.0\n    return rates\n"
        )
        self._git("add", "dirty.py", cwd=checkout)
        self._git("mv", "dirty.py", "renamed.py", cwd=checkout)
        monkeypatch.chdir(checkout)
        assert main(["lint", ".", "--changed", "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "renamed.py" in out
        assert "dirty.py" not in out

    def test_no_changes_means_an_empty_clean_run(
        self, checkout, monkeypatch, capsys
    ):
        monkeypatch.chdir(checkout)
        assert main(["lint", ".", "--changed", "--no-baseline"]) == 0
        assert "0 file(s)" in capsys.readouterr().out

    def test_noop_rerun_skips_the_summary_fixpoint(
        self, checkout, monkeypatch, capsys
    ):
        """Acceptance criterion: a no-op ``--changed`` rerun performs zero
        project-phase fixpoint iterations — the summary index comes off
        disk, so ``compute_summaries`` must never be called."""
        import repro.analysis.summaries as summaries_module

        monkeypatch.chdir(checkout)
        assert main(["lint", ".", "--changed", "--no-baseline"]) == 0
        assert "summary cache miss" in capsys.readouterr().out
        assert (checkout / ".repro-lint-cache").exists()

        def boom(project):
            raise AssertionError("fixpoint ran on a no-op rerun")

        monkeypatch.setattr(summaries_module, "compute_summaries", boom)
        assert main(["lint", ".", "--changed", "--no-baseline"]) == 0
        assert "summary cache hit" in capsys.readouterr().out

    def test_outside_a_checkout_falls_back_to_a_full_run(
        self, tmp_path, monkeypatch, capsys
    ):
        (tmp_path / "a.py").write_text("VALUE = 1\n")
        monkeypatch.chdir(tmp_path)
        monkeypatch.setenv("GIT_CEILING_DIRECTORIES", str(tmp_path.parent))
        monkeypatch.delenv("GIT_DIR", raising=False)
        assert main(["lint", ".", "--changed", "--no-baseline"]) == 0
        captured = capsys.readouterr()
        assert "--changed needs a git checkout" in captured.err
        assert "1 file(s)" in captured.out  # full run, nothing skipped
