"""The ``repro lint`` CLI: formats, exit codes, baseline workflow."""

import json
from pathlib import Path

import pytest

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture
def dirty_file(tmp_path):
    path = tmp_path / "dirty.py"
    path.write_text("def f(rates):\n    rates['x'] = 1.0\n    return rates\n")
    return path


class TestLintCommand:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("VALUE = 1\n")
        assert main(["lint", str(clean)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, dirty_file, capsys):
        assert main(["lint", str(dirty_file)]) == 1
        out = capsys.readouterr().out
        assert "RL004" in out

    def test_json_format(self, dirty_file, capsys):
        assert main(["lint", str(dirty_file), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is False
        assert payload["findings"][0]["code"] == "RL004"

    def test_github_format(self, dirty_file, capsys):
        assert main(["lint", str(dirty_file), "--format", "github"]) == 1
        assert "::error file=" in capsys.readouterr().out

    def test_unknown_select_code_exits_two(self, dirty_file, capsys):
        assert main(["lint", str(dirty_file), "--select", "RL999"]) == 2
        assert "unknown rule codes" in capsys.readouterr().err

    def test_select_skips_other_rules(self, dirty_file):
        assert main(["lint", str(dirty_file), "--select", "RL005"]) == 0

    def test_write_then_respect_baseline(self, dirty_file, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert (
            main(
                [
                    "lint",
                    str(dirty_file),
                    "--baseline",
                    str(baseline),
                    "--write-baseline",
                ]
            )
            == 0
        )
        assert baseline.exists()
        capsys.readouterr()
        # Baselined findings no longer fail the gate ...
        assert main(["lint", str(dirty_file), "--baseline", str(baseline)]) == 0
        assert "1 baselined" in capsys.readouterr().out
        # ... unless the baseline is explicitly ignored.
        assert (
            main(
                [
                    "lint",
                    str(dirty_file),
                    "--baseline",
                    str(baseline),
                    "--no-baseline",
                ]
            )
            == 1
        )

    def test_repository_gate_matches_ci_invocation(self, capsys):
        """Exactly what CI runs: repro lint --format github src -> exit 0."""
        assert (
            main(
                [
                    "lint",
                    "--format",
                    "github",
                    "--baseline",
                    str(REPO_ROOT / ".repro-lint-baseline.json"),
                    str(REPO_ROOT / "src"),
                ]
            )
            == 0
        ), capsys.readouterr().out
