"""Fixture tests for the interprocedural rules RL010–RL013.

The RL012 corpus test is this PR's acceptance criterion made executable:
a copy of ``src/repro/serve/service.py`` with the ingest-epoch component
removed from the serve result-cache key must light up at the cache sink —
the fencing bug the rule exists to catch, seeded into the real code.
"""

import re
import textwrap
from pathlib import Path

from repro.analysis import SourceFile, all_checkers
from repro.analysis.callgraph import Project

REPO_ROOT = Path(__file__).resolve().parents[2]
SERVICE_PY = REPO_ROOT / "src" / "repro" / "serve" / "service.py"


def lint_project(code: str, files: dict):
    (checker,) = all_checkers([code])
    project = Project(
        [
            SourceFile.parse(path, textwrap.dedent(text))
            for path, text in files.items()
        ]
    )
    return sorted(checker.check_project(project))


def one_module(code: str, text: str):
    return lint_project(code, {"src/repro/m.py": text})


def codes_of(findings):
    return [finding.code for finding in findings]


class TestRL010ResourceLifecycle:
    def test_early_return_leaks(self):
        findings = one_module(
            "RL010",
            """
            def load(path, flag):
                handle = open(path)
                if flag:
                    return None
                data = handle.read()
                handle.close()
                return data
            """,
        )
        assert codes_of(findings) == ["RL010"]
        assert findings[0].metadata["variable"] == "handle"
        assert findings[0].metadata["resource"] == "file"

    def test_close_on_every_path_is_clean(self):
        assert one_module(
            "RL010",
            """
            def load(path):
                handle = open(path)
                data = handle.read()
                handle.close()
                return data
            """,
        ) == []

    def test_with_block_on_the_variable_is_a_release(self):
        assert one_module(
            "RL010",
            """
            def load(path):
                handle = open(path)
                with handle:
                    return handle.read()
            """,
        ) == []

    def test_returning_the_resource_transfers_ownership(self):
        assert one_module(
            "RL010",
            """
            def open_log(path):
                handle = open(path)
                return handle
            """,
        ) == []

    def test_leak_through_helper_acquisition(self):
        """A helper whose summary says it returns a resource taints callers."""
        findings = one_module(
            "RL010",
            """
            def open_log(path):
                handle = open(path)
                return handle

            def consume(path, flag):
                log = open_log(path)
                if flag:
                    return None
                log.close()
                return True
            """,
        )
        assert codes_of(findings) == ["RL010"]
        assert "acquired via 'open_log'" in findings[0].message

    def test_passing_to_releasing_callee_is_a_release(self):
        assert one_module(
            "RL010",
            """
            def close_it(h):
                h.close()

            def load(path):
                handle = open(path)
                close_it(handle)
                return True
            """,
        ) == []

    def test_passing_to_unknown_callee_escapes(self):
        """Unknown callees may take ownership — no finding, by design."""
        assert one_module(
            "RL010",
            """
            def load(path, registry):
                handle = open(path)
                registry.adopt(handle)
                return True
            """,
        ) == []

    def test_socket_kind_reported(self):
        findings = one_module(
            "RL010",
            """
            import socket

            def listen(port, flag):
                sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
                if flag:
                    return None
                sock.close()
                return True
            """,
        )
        assert codes_of(findings) == ["RL010"]
        assert findings[0].metadata["resource"] == "socket"


LOCKED_CLASS = """
    import threading

    class Service:
        def __init__(self):
            self._state_lock = threading.Lock()
            self._extra_lock = threading.Lock()
            self._state = {}

        %s
"""


class TestRL011InterproceduralLocks:
    def test_unheld_locked_helper_flagged_with_chain(self):
        findings = one_module(
            "RL011",
            LOCKED_CLASS
            % """def bump_locked(self):
            self._state["x"] = 1

        def outer(self):
            self.bump_locked()
        """,
        )
        assert codes_of(findings) == ["RL011"]
        assert "_state_lock" in findings[0].message
        chain = findings[0].metadata["call_chain"]
        assert [step["function"] for step in chain] == [
            "repro.m:Service.outer",
            "repro.m:Service.bump_locked",
        ]

    def test_held_locked_helper_is_clean(self):
        assert one_module(
            "RL011",
            LOCKED_CLASS
            % """def bump_locked(self):
            self._state["x"] = 1

        def outer(self):
            with self._state_lock:
                self.bump_locked()
        """,
        ) == []

    def test_reacquisition_self_deadlock(self):
        findings = one_module(
            "RL011",
            LOCKED_CLASS
            % """def refresh(self):
            with self._state_lock:
                self._state["x"] = 1

        def outer(self):
            with self._state_lock:
                self.refresh()
        """,
        )
        assert codes_of(findings) == ["RL011"]
        assert "not reentrant" in findings[0].message

    def test_rlock_reacquisition_is_clean(self):
        assert one_module(
            "RL011",
            """
            import threading

            class Service:
                def __init__(self):
                    self._state_lock = threading.RLock()
                    self._state = {}

                def refresh(self):
                    with self._state_lock:
                        self._state["x"] = 1

                def outer(self):
                    with self._state_lock:
                        self.refresh()
            """,
        ) == []

    def test_cross_call_order_cycle(self):
        findings = one_module(
            "RL011",
            LOCKED_CLASS
            % """def take_extra(self):
            with self._extra_lock:
                self._state["y"] = 1

        def take_state(self):
            with self._state_lock:
                self._state["x"] = 1

        def forward(self):
            with self._state_lock:
                self.take_extra()

        def backward(self):
            with self._extra_lock:
                self.take_state()
        """,
        )
        assert "RL011" in codes_of(findings)
        assert any("deadlock" in f.message for f in findings)

    def test_consistent_order_is_clean(self):
        assert one_module(
            "RL011",
            LOCKED_CLASS
            % """def take_extra(self):
            with self._extra_lock:
                self._state["y"] = 1

        def one(self):
            with self._state_lock:
                self.take_extra()

        def two(self):
            with self._state_lock:
                self.take_extra()
        """,
        ) == []


class TestRL012CacheKeyFencing:
    FENCED = """
        class Runtime:
            pass

        def make_key(dataset, vector, rates, k):
            return (dataset, vector, rates, k)

        class Server:
            def __init__(self, cache, runtime):
                self.cache = cache
                self.runtime = runtime

            def lookup(self, dataset, vector, rates, k, epoch):
                key = make_key(dataset, vector, rates, k)
                %s
                return self.cache.get(key)
    """

    def test_missing_epoch_flagged_at_the_sink(self):
        findings = one_module("RL012", self.FENCED % "pass")
        assert codes_of(findings) == ["RL012"]
        assert findings[0].metadata["missing"] == ["ingest epoch"]
        assert "self.cache.get" in findings[0].message

    def test_unconditional_epoch_append_is_clean(self):
        assert one_module(
            "RL012", self.FENCED % 'key += (("epoch", epoch),)'
        ) == []

    def test_conditional_epoch_append_is_clean(self):
        """May-analysis: one path adding the component satisfies the rule."""
        assert one_module(
            "RL012",
            self.FENCED
            % """if epoch is not None:
                    key += (("epoch", epoch),)""",
        ) == []

    def test_gen_component_does_not_count_as_epoch(self):
        """The store generation only moves on slab swaps — not a fence."""
        findings = one_module(
            "RL012", self.FENCED % 'key += (("gen", epoch),)'
        )
        assert codes_of(findings) == ["RL012"]

    def test_non_query_key_is_ignored(self):
        assert one_module(
            "RL012",
            """
            class Server:
                def __init__(self, cache):
                    self.cache = cache

                def lookup(self, name):
                    return self.cache.get((name,))
            """,
        ) == []

    def test_two_stage_params_do_not_satisfy_the_epoch_fence(self):
        """Candidate/fusion cohorting is orthogonal to the ingest fence."""
        findings = one_module(
            "RL012",
            self.FENCED
            % 'key += (("two_stage", ("candidates", "fusion")),)',
        )
        assert codes_of(findings) == ["RL012"]
        assert findings[0].metadata["missing"] == ["ingest epoch"]

    def test_two_stage_params_alongside_epoch_are_clean(self):
        assert one_module(
            "RL012",
            self.FENCED
            % """key += (("two_stage", ("candidates", "fusion")),)
                key += (("epoch", epoch),)""",
        ) == []

    def test_key_built_by_helper_still_seen(self):
        findings = one_module(
            "RL012",
            """
            def make_key(dataset, vector, rates, k):
                return (dataset, vector, rates, k)

            def build(dataset, vector, rates, k):
                return make_key(dataset, vector, rates, k)

            class Server:
                def __init__(self, cache):
                    self.cache = cache

                def lookup(self, dataset, vector, rates, k):
                    key = build(dataset, vector, rates, k)
                    return self.cache.get(key)
            """,
        )
        assert codes_of(findings) == ["RL012"]


class TestRL012Corpus:
    """The acceptance criterion: seeded epoch removal in the real service."""

    EPOCH_LINE = re.compile(
        r"^\s*key \+= \(\("  # the epoch append, single line
        r'"epoch", staleness\["epoch"\]\),\)\n',
        re.MULTILINE,
    )
    TWO_STAGE_LINE = re.compile(
        r"^\s*key \+= \(\("  # the candidate/fusion cohort append
        r'"two_stage", tuple\(sorted\(two_stage\.items\(\)\)\)\),\)\n',
        re.MULTILINE,
    )

    def test_current_service_is_fenced(self):
        (checker,) = all_checkers(["RL012"])
        project = Project(
            [
                SourceFile.parse(
                    "src/repro/serve/service.py",
                    SERVICE_PY.read_text(encoding="utf-8"),
                )
            ]
        )
        assert list(checker.check_project(project)) == []

    def test_seeded_epoch_removal_flagged_at_the_cache_sink(self):
        text = SERVICE_PY.read_text(encoding="utf-8")
        mutated, count = self.EPOCH_LINE.subn("", text)
        assert count == 1, "the epoch append the rule protects has moved"
        (checker,) = all_checkers(["RL012"])
        project = Project(
            [SourceFile.parse("src/repro/serve/service.py", mutated)]
        )
        findings = sorted(checker.check_project(project))
        assert codes_of(findings) == ["RL012"]
        sink_line = next(
            number
            for number, line in enumerate(mutated.splitlines(), start=1)
            if "self.cache.get(key)" in line
        )
        assert findings[0].line == sink_line
        assert findings[0].metadata["missing"] == ["ingest epoch"]

    def test_two_stage_cohort_key_is_present_and_not_a_fence(self):
        """The search key carries the candidate/fusion cohort component —
        and removing the epoch append is still flagged with it in place,
        because two-stage parameters never substitute for the ingest fence.
        """
        text = SERVICE_PY.read_text(encoding="utf-8")
        assert len(self.TWO_STAGE_LINE.findall(text)) == 1, (
            "the two-stage cache-key cohort append has moved"
        )
        mutated, count = self.EPOCH_LINE.subn("", text)
        assert count == 1
        assert self.TWO_STAGE_LINE.search(mutated) is not None
        (checker,) = all_checkers(["RL012"])
        project = Project(
            [SourceFile.parse("src/repro/serve/service.py", mutated)]
        )
        findings = sorted(checker.check_project(project))
        assert codes_of(findings) == ["RL012"]
        assert findings[0].metadata["missing"] == ["ingest epoch"]


class TestRL013BlockingUnderLock:
    def test_direct_sleep_under_lock(self):
        findings = one_module(
            "RL013",
            LOCKED_CLASS
            % """def refresh(self):
            import time
            with self._state_lock:
                time.sleep(0.1)
        """,
        )
        assert codes_of(findings) == ["RL013"]
        assert findings[0].metadata["blocking"] == "time.sleep"

    def test_transitive_blocking_callee_with_chain(self):
        findings = one_module(
            "RL013",
            LOCKED_CLASS
            % """def slow(self):
            import time
            time.sleep(0.1)

        def refresh(self):
            with self._state_lock:
                self.slow()
        """,
        )
        assert codes_of(findings) == ["RL013"]
        chain = findings[0].metadata["call_chain"]
        assert [step["function"] for step in chain] == [
            "repro.m:Service.refresh",
            "repro.m:Service.slow",
        ]

    def test_fixpoint_loop_under_lock(self):
        findings = one_module(
            "RL013",
            LOCKED_CLASS
            % """def solve(self, tol):
            with self._state_lock:
                residual = 1.0
                while residual > tol:
                    residual = residual / 2
        """,
        )
        assert any("fixpoint" in f.message for f in findings)

    def test_blocking_outside_the_lock_is_clean(self):
        assert one_module(
            "RL013",
            LOCKED_CLASS
            % """def refresh(self):
            import time
            time.sleep(0.1)
            with self._state_lock:
                self._state["x"] = 1
        """,
        ) == []

    def test_constructors_are_exempt(self):
        assert one_module(
            "RL013",
            """
            import threading
            import time

            class Service:
                def __init__(self, path):
                    self._state_lock = threading.Lock()
                    with self._state_lock:
                        time.sleep(0.1)
            """,
        ) == []

    def test_condition_wait_is_exempt(self):
        """Waiting on a held condition variable releases it — the idiom."""
        assert one_module(
            "RL013",
            """
            import threading

            class Service:
                def __init__(self):
                    self._cond = threading.Condition()
                    self._ready = False

                def await_ready(self):
                    with self._cond:
                        while not self._ready:
                            self._cond.wait()
            """,
        ) == []
