"""Pragma parsing and baseline-file behaviour."""

import json
import textwrap

import pytest

from repro.analysis import (
    Baseline,
    Finding,
    SourceFile,
    all_checkers,
    lint_source,
    load_baseline,
    parse_pragmas,
    save_baseline,
)


def _source(snippet: str) -> SourceFile:
    return SourceFile.parse("<snippet>", textwrap.dedent(snippet))


class TestPragmas:
    def test_same_line_code_pragma(self):
        index = parse_pragmas(["x = 1", "y == 0.0  # repro-lint: ignore[RL005]"])
        assert index.suppresses(2, "RL005")
        assert not index.suppresses(2, "RL001")
        assert not index.suppresses(1, "RL005")

    def test_line_above_covers_next_line(self):
        index = parse_pragmas(["# repro-lint: ignore[RL004] fills out-dict", "f(x)"])
        assert index.suppresses(2, "RL004")

    def test_multiple_codes(self):
        index = parse_pragmas(["pass  # repro-lint: ignore[RL001, RL003]"])
        assert index.suppresses(1, "RL001")
        assert index.suppresses(1, "RL003")
        assert not index.suppresses(1, "RL005")

    def test_bare_ignore_suppresses_everything(self):
        index = parse_pragmas(["pass  # repro-lint: ignore"])
        assert index.suppresses(1, "RL001")
        assert index.suppresses(1, "RL006")

    def test_skip_file_in_header_window(self):
        index = parse_pragmas(["# repro-lint: skip-file", "anything"])
        assert index.skip_file
        assert index.suppresses(999, "RL001")

    def test_skip_file_deep_in_module_ignored(self):
        lines = ["x = 1"] * 10 + ["# repro-lint: skip-file"]
        assert not parse_pragmas(lines).skip_file

    def test_pragma_actually_suppresses_finding(self):
        source = _source(
            """
            def check(total):
                if total == 0.0:  # repro-lint: ignore[RL005] exact sentinel test
                    return None
            """
        )
        kept, suppressed = lint_source(source, all_checkers(["RL005"]))
        assert kept == []
        assert [finding.code for finding in suppressed] == ["RL005"]


class TestBaseline:
    def _finding(self, line=3, message="exact '== 0.0' float comparison"):
        return Finding(
            file="src/repro/x.py",
            line=line,
            code="RL005",
            message=message,
            source_line="    if total == 0.0:",
        )

    def test_fingerprint_survives_line_drift(self):
        assert self._finding(line=3).fingerprint() == self._finding(line=40).fingerprint()

    def test_roundtrip(self, tmp_path):
        path = tmp_path / "baseline.json"
        baseline = Baseline.from_findings([self._finding()])
        save_baseline(baseline, path)
        loaded = load_baseline(path)
        assert len(loaded) == 1
        assert loaded.contains(self._finding(line=17))

    def test_missing_file_is_empty(self, tmp_path):
        assert len(load_baseline(tmp_path / "nope.json")) == 0

    def test_unsupported_version_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(ValueError, match="unsupported baseline version"):
            load_baseline(path)

    def test_reasons_preserved_across_rewrite(self, tmp_path):
        finding = self._finding()
        first = Baseline.from_findings([finding])
        first.entries[0] = type(first.entries[0])(
            file=finding.file,
            code=finding.code,
            fingerprint=finding.fingerprint(),
            reason="accepted: documented sentinel",
        )
        prior = Baseline(entries=first.entries)
        rewritten = Baseline.from_findings([finding], reasons=prior)
        assert rewritten.reason_for(finding) == "accepted: documented sentinel"

    def test_changed_source_line_resurfaces(self):
        baseline = Baseline.from_findings([self._finding()])
        moved = Finding(
            file="src/repro/x.py",
            line=3,
            code="RL005",
            message="whatever",
            source_line="    if total_weight == 0.0:",  # the line changed
        )
        assert not baseline.contains(moved)
