"""The bottom-up summary engine: facts, propagation, fixpoint convergence.

Each summary field gets a direct test plus one showing it composing
through a call — the composition is the whole point of the engine.  The
fixpoint tests pin the termination story: recursion converges, the round
counts stay tiny, and ``converged`` reports it.
"""

import textwrap

from repro.analysis import SourceFile
from repro.analysis.callgraph import Project
from repro.analysis.summaries import (
    MAX_SCC_ROUNDS,
    compute_summaries,
)


def summaries_for(files: dict):
    project = Project(
        [
            SourceFile.parse(path, textwrap.dedent(text))
            for path, text in files.items()
        ]
    )
    return compute_summaries(project)


def one_module(text: str):
    return summaries_for({"src/repro/m.py": text})


LOCKED_CLASS = """
    import threading

    class Service:
        def __init__(self):
            self._state_lock = threading.Lock()
            self._extra_lock = threading.Lock()
            self._state = {}

        %s
"""


class TestLocks:
    def test_direct_acquisition_is_qualified(self):
        index = one_module(
            LOCKED_CLASS
            % """def touch(self):
            with self._state_lock:
                self._state["x"] = 1
        """
        )
        summary = index["repro.m:Service.touch"]
        assert summary.locks_acquired == {"repro.m.Service._state_lock"}
        assert summary.locks_acquired_transitive == summary.locks_acquired

    def test_transitive_acquisition_with_witness_chain(self):
        index = one_module(
            LOCKED_CLASS
            % """def touch(self):
            with self._state_lock:
                self._state["x"] = 1

        def outer(self):
            self.touch()
        """
        )
        summary = index["repro.m:Service.outer"]
        assert summary.locks_acquired == frozenset()
        assert summary.locks_acquired_transitive == {
            "repro.m.Service._state_lock"
        }
        chain = summary.acquire_witness["repro.m.Service._state_lock"]
        assert [step[0] for step in chain] == [
            "repro.m:Service.outer",
            "repro.m:Service.touch",
        ]

    def test_locked_helper_exports_requirement(self):
        index = one_module(
            LOCKED_CLASS
            % """def bump_locked(self):
            self._state["x"] = 1
        """
        )
        summary = index["repro.m:Service.bump_locked"]
        assert summary.locks_required == {"_state_lock"}
        (step,) = summary.required_witness["_state_lock"]
        assert step[0] == "repro.m:Service.bump_locked"

    def test_plain_method_exports_no_requirement(self):
        """Direct unguarded access is RL007's finding, not a requirement."""
        index = one_module(
            LOCKED_CLASS
            % """def bump(self):
            self._state["x"] = 1
        """
        )
        assert index["repro.m:Service.bump"].locks_required == frozenset()

    def test_requirement_propagates_through_locked_callers(self):
        index = one_module(
            LOCKED_CLASS
            % """def bump_locked(self):
            self._state["x"] = 1

        def outer_locked(self):
            self.bump_locked()
        """
        )
        outer = index["repro.m:Service.outer_locked"]
        assert outer.locks_required == {"_state_lock"}
        chain = outer.required_witness["_state_lock"]
        assert [step[0] for step in chain] == [
            "repro.m:Service.outer_locked",
            "repro.m:Service.bump_locked",
        ]

    def test_held_calls_record_the_lockset(self):
        index = one_module(
            LOCKED_CLASS
            % """def run(self):
            with self._state_lock:
                self.helper()

        def helper(self):
            return 1
        """
        )
        (site,) = [
            s
            for s in index["repro.m:Service.run"].held_calls
            if s.name == "self.helper"
        ]
        assert site.held == {"_state_lock"}
        assert site.callees == ("repro.m:Service.helper",)


class TestBlocking:
    def test_direct_primitive(self):
        index = one_module(
            """
            import time

            def pause():
                time.sleep(1)
            """
        )
        summary = index["repro.m:pause"]
        assert summary.may_block
        assert summary.blocking_reason == "time.sleep"
        assert summary.blocking_sites == (("time.sleep", 5),)

    def test_propagates_with_chain(self):
        index = one_module(
            """
            import time

            def pause():
                time.sleep(1)

            def mid():
                pause()

            def top():
                mid()
            """
        )
        summary = index["repro.m:top"]
        assert summary.may_block
        assert [step[0] for step in summary.blocking_chain] == [
            "repro.m:top",
            "repro.m:mid",
            "repro.m:pause",
        ]

    def test_fixpoint_loop_counts_as_blocking(self):
        index = one_module(
            """
            def solve(tol):
                residual = 1.0
                while residual > tol:
                    residual = residual / 2
                return residual
            """
        )
        summary = index["repro.m:solve"]
        assert summary.has_fixpoint_loop
        assert summary.may_block
        assert "fixpoint" in summary.blocking_reason

    def test_non_blocking_stays_quiet(self):
        index = one_module(
            """
            def pure(x):
                return x + 1
            """
        )
        assert not index["repro.m:pure"].may_block


class TestResources:
    def test_returned_fresh_resource(self):
        index = one_module(
            """
            def open_log(path):
                handle = open(path)
                return handle
            """
        )
        assert index["repro.m:open_log"].returns_resource == "file"

    def test_releasing_parameter_direct(self):
        index = one_module(
            """
            def shutdown(handle):
                handle.close()
            """
        )
        assert index["repro.m:shutdown"].releases_params == {"handle"}

    def test_releasing_parameter_transitive(self):
        index = one_module(
            """
            def close_it(h):
                h.close()

            def shutdown(handle):
                close_it(handle)
            """
        )
        assert index["repro.m:shutdown"].releases_params == {"handle"}

    def test_keeping_parameter_is_not_a_release(self):
        index = one_module(
            """
            def stash(handle, registry):
                registry.append(handle)
            """
        )
        assert index["repro.m:stash"].releases_params == frozenset()


class TestExceptions:
    def test_direct_and_propagated(self):
        index = one_module(
            """
            def fail():
                raise ValueError("boom")

            def outer():
                fail()
            """
        )
        assert index["repro.m:fail"].raises == {"ValueError"}
        assert "ValueError" in index["repro.m:outer"].propagates


class TestCacheKeyTags:
    def test_key_builder_tags_flow_to_return(self):
        index = one_module(
            """
            def build(dataset, vector, rates, k):
                key = make_key(dataset, vector, rates, k)
                return key
            """
        )
        assert index["repro.m:build"].cache_key_tags == {"query", "rates"}

    def test_epoch_pair_concatenation_tags(self):
        index = one_module(
            """
            def build(dataset, vector, rates, k, epoch):
                key = make_key(dataset, vector, rates, k)
                key += (("epoch", epoch),)
                return key
            """
        )
        assert index["repro.m:build"].cache_key_tags == {
            "query",
            "rates",
            "epoch",
        }

    def test_helper_tags_compose(self):
        """A caller returning a helper-built key inherits the helper's tags."""
        index = one_module(
            """
            def build(dataset, vector, rates, k):
                return make_key(dataset, vector, rates, k)

            def outer(dataset, vector, rates, k):
                key = build(dataset, vector, rates, k)
                return key
            """
        )
        assert index["repro.m:outer"].cache_key_tags == {"query", "rates"}


class TestFixpoint:
    def test_direct_recursion_converges(self):
        index = one_module(
            """
            import time

            def spin(n):
                if n:
                    time.sleep(1)
                    spin(n - 1)
            """
        )
        assert index.converged
        assert index["repro.m:spin"].may_block

    def test_mutual_recursion_converges_in_few_rounds(self):
        index = one_module(
            LOCKED_CLASS
            % """def ping(self, n):
            with self._state_lock:
                pass
            self.pong(n)

        def pong(self, n):
            with self._extra_lock:
                pass
            self.ping(n)
        """
        )
        assert index.converged
        assert max(index.scc_rounds) <= 4
        assert max(index.scc_rounds) < MAX_SCC_ROUNDS
        both = {
            "repro.m.Service._state_lock",
            "repro.m.Service._extra_lock",
        }
        assert index["repro.m:Service.ping"].locks_acquired_transitive == both
        assert index["repro.m:Service.pong"].locks_acquired_transitive == both

    def test_every_function_has_a_summary(self):
        index = one_module(
            """
            def a():
                return b()

            def b():
                return a()

            class C:
                def m(self):
                    return a()
            """
        )
        for fid in index.project.graph.functions:
            assert fid in index
        assert len(index) == 3
