"""The project call graph: definition collection, resolution, SCC order.

Resolution is name-and-module based (no type inference), so every test
spells out one resolvable shape from the module docstring's list — plus
the conservative behaviours: unknown callees stay visible as unresolved
sites, and ambiguity drops resolution rather than guessing.
"""

import textwrap

from repro.analysis import SourceFile
from repro.analysis.callgraph import (
    Project,
    build_call_graph,
    calls_in_function,
    module_name_for,
    walk_in_scope,
)


def source(path: str, text: str) -> SourceFile:
    return SourceFile.parse(path, textwrap.dedent(text))


def project(files: dict) -> Project:
    return Project([source(path, text) for path, text in files.items()])


class TestModuleNames:
    def test_src_prefix_stripped(self):
        assert module_name_for("src/repro/serve/service.py") == (
            "repro.serve.service"
        )

    def test_package_init_is_the_package(self):
        assert module_name_for("src/repro/serve/__init__.py") == "repro.serve"

    def test_windows_separators(self):
        assert module_name_for("src\\repro\\cli.py") == "repro.cli"

    def test_no_src_anchor_keeps_all_parts(self):
        assert module_name_for("tools/gen.py") == "tools.gen"


class TestResolution:
    def test_module_function_call(self):
        p = project(
            {
                "src/repro/a.py": """
                def helper():
                    return 1

                def caller():
                    return helper()
                """
            }
        )
        (site,) = p.graph.calls["repro.a:caller"]
        assert site.callees == ("repro.a:helper",)
        assert site.name == "helper"

    def test_nested_def_shadows_module_function(self):
        p = project(
            {
                "src/repro/a.py": """
                def helper():
                    return 1

                def caller():
                    def helper():
                        return 2
                    return helper()
                """
            }
        )
        (site,) = p.graph.calls["repro.a:caller"]
        assert site.callees == ("repro.a:caller.<locals>.helper",)

    def test_self_method_call(self):
        p = project(
            {
                "src/repro/a.py": """
                class Service:
                    def step(self):
                        return 1

                    def run(self):
                        return self.step()
                """
            }
        )
        (site,) = p.graph.calls["repro.a:Service.run"]
        assert site.callees == ("repro.a:Service.step",)

    def test_instantiation_resolves_to_init(self):
        p = project(
            {
                "src/repro/a.py": """
                class Service:
                    def __init__(self):
                        self.state = {}

                def boot():
                    return Service()
                """
            }
        )
        (site,) = p.graph.calls["repro.a:boot"]
        assert site.callees == ("repro.a:Service.__init__",)

    def test_from_import_across_modules(self):
        p = project(
            {
                "src/repro/util.py": """
                def clamp(x):
                    return max(0, x)
                """,
                "src/repro/a.py": """
                from repro.util import clamp

                def caller(x):
                    return clamp(x)
                """,
            }
        )
        sites = p.graph.calls["repro.a:caller"]
        resolved = [s for s in sites if s.resolved]
        assert [s.callees for s in resolved] == [("repro.util:clamp",)]

    def test_module_attribute_call(self):
        p = project(
            {
                "src/repro/util.py": """
                def clamp(x):
                    return x
                """,
                "src/repro/a.py": """
                import repro.util as util

                def caller(x):
                    return util.clamp(x)
                """,
            }
        )
        (site,) = p.graph.calls["repro.a:caller"]
        assert site.callees == ("repro.util:clamp",)

    def test_inherited_method_found_on_base(self):
        p = project(
            {
                "src/repro/a.py": """
                class Base:
                    def step(self):
                        return 1

                class Derived(Base):
                    def run(self):
                        return self.step()
                """
            }
        )
        (site,) = p.graph.calls["repro.a:Derived.run"]
        assert site.callees == ("repro.a:Base.step",)

    def test_field_type_dispatch(self):
        """``self.worker.run()`` through ``self.worker = Worker(...)``."""
        p = project(
            {
                "src/repro/a.py": """
                class Worker:
                    def run(self):
                        return 1

                class Owner:
                    def __init__(self):
                        self.worker = Worker()

                    def go(self):
                        return self.worker.run()
                """
            }
        )
        (site,) = p.graph.calls["repro.a:Owner.go"]
        assert site.callees == ("repro.a:Worker.run",)

    def test_ambiguous_field_type_stays_unresolved(self):
        p = project(
            {
                "src/repro/a.py": """
                class A:
                    def run(self):
                        return 1

                class B:
                    def run(self):
                        return 2

                class Owner:
                    def __init__(self, flag):
                        if flag:
                            self.worker = A()
                        else:
                            self.worker = B()

                    def go(self):
                        return self.worker.run()
                """
            }
        )
        (site,) = p.graph.calls["repro.a:Owner.go"]
        assert not site.resolved

    def test_unknown_callee_recorded_with_dotted_name(self):
        p = project(
            {
                "src/repro/a.py": """
                def caller(sock):
                    sock.close()
                """
            }
        )
        (site,) = p.graph.calls["repro.a:caller"]
        assert not site.resolved
        assert site.name == "sock.close"
        assert site in p.graph.unresolved_sites()

    def test_callers_of_inverts_callees_of(self):
        p = project(
            {
                "src/repro/a.py": """
                def helper():
                    return 1

                def one():
                    return helper()

                def two():
                    return helper() + helper()
                """
            }
        )
        assert p.graph.callers_of("repro.a:helper") == [
            "repro.a:one",
            "repro.a:two",
        ]
        assert p.graph.callees_of("repro.a:two") == ["repro.a:helper"]


class TestSccOrder:
    def test_callees_come_before_callers(self):
        p = project(
            {
                "src/repro/a.py": """
                def leaf():
                    return 1

                def mid():
                    return leaf()

                def top():
                    return mid()
                """
            }
        )
        order = [fid for component in p.graph.sccs() for fid in component]
        assert order.index("repro.a:leaf") < order.index("repro.a:mid")
        assert order.index("repro.a:mid") < order.index("repro.a:top")

    def test_mutual_recursion_is_one_component(self):
        p = project(
            {
                "src/repro/a.py": """
                def even(n):
                    return n == 0 or odd(n - 1)

                def odd(n):
                    return n != 0 and even(n - 1)
                """
            }
        )
        components = p.graph.sccs()
        assert ["repro.a:even", "repro.a:odd"] in components

    def test_order_is_deterministic(self):
        files = {
            "src/repro/a.py": """
            from repro.b import g

            def f():
                return g()
            """,
            "src/repro/b.py": """
            def g():
                return h()

            def h():
                return g()
            """,
        }
        assert project(files).graph.sccs() == project(files).graph.sccs()


class TestProject:
    def test_from_paths_skips_unparseable(self, tmp_path):
        good = tmp_path / "good.py"
        good.write_text("def f():\n    return 1\n")
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        p = Project.from_paths(
            [(str(good), "good.py"), (str(bad), "bad.py")]
        )
        assert [s.path for s in p.sources] == ["good.py"]

    def test_functions_in_filters_by_source(self):
        p = project(
            {
                "src/repro/a.py": "def f():\n    return 1\n",
                "src/repro/b.py": "def g():\n    return 2\n",
            }
        )
        (src_a,) = [s for s in p.sources if s.path == "src/repro/a.py"]
        assert [i.id for i in p.functions_in(src_a)] == ["repro.a:f"]

    def test_summaries_computed_once_and_shared(self):
        p = project({"src/repro/a.py": "def f():\n    return 1\n"})
        assert p.summaries() is p.summaries()


class TestScopeWalk:
    def test_calls_in_function_excludes_nested_scopes(self):
        tree = source(
            "src/repro/a.py",
            """
            def outer():
                inner_result = direct()

                def nested():
                    return hidden()

                return inner_result
            """,
        )
        (func,) = tree.tree.body
        names = [call.func.id for call in calls_in_function(func)]
        assert names == ["direct"]

    def test_nested_default_exprs_belong_to_enclosing_scope(self):
        tree = source(
            "src/repro/a.py",
            """
            def outer():
                def nested(x=default()):
                    return hidden()
                return nested
            """,
        )
        (func,) = tree.tree.body
        names = [call.func.id for call in calls_in_function(func)]
        assert names == ["default"]

    def test_walk_yields_nested_def_without_entering(self):
        tree = source(
            "src/repro/a.py",
            """
            def outer():
                def nested():
                    return hidden()
                return nested
            """,
        )
        import ast

        (func,) = tree.tree.body
        kinds = [type(n).__name__ for n in walk_in_scope(func)]
        assert "FunctionDef" in kinds  # nested def itself is visible
        assert not any(
            isinstance(n, ast.Call) for n in walk_in_scope(func)
        )


class TestBuildOverRealTree:
    def test_graph_covers_every_def_in_src(self):
        """Corpus guarantee: no ``def`` of the repo is invisible."""
        import ast as ast_mod
        from pathlib import Path

        from repro.analysis.runner import discover_files

        repo = Path(__file__).resolve().parents[2]
        files = [
            (str(path), path.relative_to(repo).as_posix())
            for path in discover_files([repo / "src"])
        ]
        p = Project.from_paths(files)
        expected = 0
        for s in p.sources:
            expected += sum(
                isinstance(node, (ast_mod.FunctionDef, ast_mod.AsyncFunctionDef))
                for node in ast_mod.walk(s.tree)
            )
        assert len(p.graph.functions) == expected
        assert len(p.graph.functions) > 500
