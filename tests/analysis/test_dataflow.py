"""The fixpoint solver: reference instances, refinement, termination.

The termination tests are the acceptance criterion of the dataflow layer:
``solve`` must reach a fixpoint on hypothesis-generated control flow and on
every real function in ``src/`` — and must *stop* (``converged=False``,
not a hang) when handed a lattice with an unbounded ascending chain.
"""

import ast
from pathlib import Path

from hypothesis import given, settings

from repro.analysis.cfg import build_cfg
from repro.analysis.dataflow import (
    DataflowProblem,
    LiveVariables,
    ReachingDefinitions,
    solve,
)
from tests.analysis.test_cfg import parse_func, random_functions

REPO_ROOT = Path(__file__).resolve().parents[2]


def solve_func(code: str, problem_cls=ReachingDefinitions):
    func = parse_func(code)
    cfg = build_cfg(func)
    problem = problem_cls(cfg) if problem_cls is ReachingDefinitions else problem_cls()
    return cfg, problem, solve(cfg, problem)


class TestReachingDefinitions:
    def test_params_reach_the_entry(self):
        cfg, problem, solution = solve_func("def f(a, b):\n    return a\n")
        state = solution.state_into(cfg.entry)
        assert ("a", ReachingDefinitions.PARAM) in state
        assert ("b", ReachingDefinitions.PARAM) in state

    def test_redefinition_kills_the_old_definition(self):
        cfg, problem, solution = solve_func(
            """
            def f():
                x = 1
                x = 2
                return x
            """
        )
        state = solution.state_out_of(cfg.entry)
        defs = problem.definitions_of(state, "x")
        assert len(defs) == 1
        assert isinstance(defs[0], ast.Assign)
        assert defs[0].value.value == 2

    def test_both_branch_definitions_reach_the_join(self):
        cfg, problem, solution = solve_func(
            """
            def f(cond):
                if cond:
                    x = 1
                else:
                    x = 2
                return x
            """
        )
        return_block = next(
            b for b in cfg.blocks if any(isinstance(i, ast.Return) for i in b.body)
        )
        defs = problem.definitions_of(solution.state_into(return_block), "x")
        values = sorted(d.value.value for d in defs)
        assert values == [1, 2]

    def test_states_through_pairs_items_with_their_state(self):
        cfg, problem, solution = solve_func(
            """
            def f():
                x = 1
                y = x
                x = 2
            """
        )
        states = solution.states_through(cfg.entry)
        assert len(states) == len(cfg.entry.body)
        # before `y = x`, the x=1 definition reaches; before x=2, still x=1.
        defs_before_y = problem.definitions_of(states[1], "x")
        assert [d.value.value for d in defs_before_y] == [1]


class TestLiveVariables:
    def test_read_after_makes_a_name_live(self):
        cfg, _problem, solution = solve_func(
            """
            def f():
                x = 1
                return x
            """,
            LiveVariables,
        )
        # Backward: state_out_of(entry) is the state at the entry's start.
        assert "x" not in solution.state_out_of(cfg.entry)
        # And x is live between the assignment and the return: the entry
        # input (after the block, i.e. at the exit edge) has nothing.
        assert solution.state_into(cfg.entry) == frozenset()

    def test_reassignment_without_read_is_dead(self):
        cfg, _problem, solution = solve_func(
            """
            def f(a):
                x = a
                x = 2
                return x
            """,
            LiveVariables,
        )
        # `a` is read by the first assignment, so it is live at entry start.
        assert "a" in solution.state_out_of(cfg.entry)

    def test_loop_condition_reads_stay_live_around_the_back_edge(self):
        cfg, _problem, solution = solve_func(
            """
            def f(n):
                while n:
                    n = n - 1
                return n
            """,
            LiveVariables,
        )
        assert "n" in solution.state_out_of(cfg.entry)


class _Ascending(DataflowProblem):
    """Deliberately non-convergent: state grows on every loop transfer."""

    direction = "forward"

    def initial(self):
        return 0

    def join(self, left, right):
        return max(left, right)

    def transfer_item(self, item, state):
        return state + 1


class TestTermination:
    def test_unbounded_chain_reports_non_convergence_instead_of_hanging(self):
        cfg, _problem, solution = solve_func(
            """
            def f(n):
                while n:
                    n = n - 1
            """,
            _Ascending,
        )
        assert solution.converged is False

    @settings(max_examples=40, deadline=None)
    @given(random_functions())
    def test_solver_reaches_a_fixpoint_on_random_control_flow(self, code):
        func = ast.parse(code).body[0]
        cfg = build_cfg(func)
        for problem in (ReachingDefinitions(cfg), LiveVariables()):
            solution = solve(cfg, problem)
            assert solution.converged
            # Fixpoint check: every recorded output is the transfer of its
            # recorded input — nothing left half-propagated.
            for block in cfg.blocks:
                assert solution.state_out_of(block) == problem.transfer_block(
                    block, solution.state_into(block)
                )

    def test_solver_terminates_on_every_function_in_src(self):
        """ISSUE acceptance: both reference analyses converge repo-wide."""
        from repro.analysis.base import SourceFile

        functions = 0
        for path in sorted((REPO_ROOT / "src").rglob("*.py")):
            if "__pycache__" in path.parts:
                continue
            source = SourceFile.parse(path.name, path.read_text(encoding="utf-8"))
            for func in source.functions():
                cfg = source.cfg_for(func)
                assert solve(cfg, ReachingDefinitions(cfg)).converged, path
                assert solve(cfg, LiveVariables()).converged, path
                functions += 1
        assert functions > 200  # the tree is not trivially empty
