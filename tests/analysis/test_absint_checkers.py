"""Fixture tests for the abstract-interpretation rules RL014–RL017.

Each rule gets a known-positive corpus pinned at the exact finding line
(the acceptance criterion of the abstract-interpretation PR) plus
negative fixtures showing the *proof obligations* that silence it:
sanitizer calls and range checks for the taint domain, emptiness/zero
guards and branch refinement for the value domain.
"""

import json
import textwrap

from repro.analysis import Baseline, SourceFile, all_checkers, render, run_lint
from repro.analysis.callgraph import Project


def lint_project(code: str, files: dict):
    (checker,) = all_checkers([code])
    project = Project(
        [
            SourceFile.parse(path, textwrap.dedent(text))
            for path, text in files.items()
        ]
    )
    return sorted(checker.check_project(project))


def one_module(code: str, text: str):
    return lint_project(code, {"src/repro/m.py": text})


def lint_snippet(code: str, snippet: str):
    (checker,) = all_checkers([code])
    source = SourceFile.parse("<snippet>", textwrap.dedent(snippet))
    return sorted(checker.check(source))


def codes_of(findings):
    return [finding.code for finding in findings]


class TestRL014WireTaint:
    def test_wire_body_to_open_in_same_function(self):
        findings = one_module(
            "RL014",
            """
            class Handler:
                def do_POST(self):
                    body = self._read_json_body()
                    path = body["path"]
                    handle = open(path)
                    return handle.read()
            """,
        )
        assert codes_of(findings) == ["RL014"]
        assert findings[0].line == 6  # the open() call
        assert findings[0].metadata["sink"] == "path"
        assert "unvalidated wire input" in findings[0].message

    def test_wire_taint_through_a_callee_sink(self):
        """Interprocedural: the handler forwards wire data to a helper
        whose parameter reaches the sink — the finding lands at the call
        site with a witness chain down to the helper."""
        findings = one_module(
            "RL014",
            """
            def save(path):
                return open(path)

            class Handler:
                def do_POST(self):
                    body = self._read_json_body()
                    save(body["path"])
            """,
        )
        assert codes_of(findings) == ["RL014"]
        assert findings[0].line == 8  # the save(...) call in do_POST
        chain = findings[0].metadata["call_chain"]
        assert len(chain) >= 2  # call site plus the sink inside save()
        assert any("save" in str(step) for step in chain)

    def test_wire_offset_to_seek(self):
        findings = one_module(
            "RL014",
            """
            class Handler:
                def do_POST(self, slab):
                    body = self._read_json_body()
                    offset = body["offset"]
                    slab.seek(offset)
            """,
        )
        assert codes_of(findings) == ["RL014"]
        assert findings[0].line == 6
        assert findings[0].metadata["sink"] == "offset"

    def test_typed_parser_sanitizes(self):
        assert one_module(
            "RL014",
            """
            class Handler:
                def do_POST(self):
                    body = self._read_json_body()
                    name = _require_str(body, "name")
                    return open(name)
            """,
        ) == []

    def test_range_check_sanitizes(self):
        assert one_module(
            "RL014",
            """
            class Handler:
                def do_POST(self, slab):
                    body = self._read_json_body()
                    offset = body["offset"]
                    if 0 <= offset < 4096:
                        slab.seek(offset)
            """,
        ) == []

    def test_non_wire_data_is_quiet(self):
        assert one_module(
            "RL014",
            """
            def load(config):
                path = config["path"]
                return open(path)
            """,
        ) == []

    def test_sarif_carries_code_flow(self, tmp_path):
        """The witness chain renders as a SARIF codeFlow (acceptance
        criterion: RL014 SARIF results carry codeFlows)."""
        module = tmp_path / "handler.py"
        module.write_text(
            textwrap.dedent(
                """
                def save(path):
                    return open(path)

                class Handler:
                    def do_POST(self):
                        body = self._read_json_body()
                        save(body["path"])
                """
            )
        )
        report = run_lint(
            [module],
            checkers=all_checkers(["RL014"]),
            baseline=Baseline(),
            root=tmp_path,
        )
        assert [f.code for f in report.findings] == ["RL014"]
        sarif = json.loads(render(report, "sarif"))
        (run,) = sarif["runs"]
        (result,) = run["results"]
        assert result["ruleId"] == "RL014"
        (code_flow,) = result["codeFlows"]
        locations = code_flow["threadFlows"][0]["locations"]
        assert len(locations) >= 2
        for location in locations:
            physical = location["location"]["physicalLocation"]
            assert physical["artifactLocation"]["uri"] == "handler.py"
            assert physical["region"]["startLine"] >= 1


class TestRL015ZeroDenominator:
    def test_unguarded_len_denominator(self):
        findings = lint_snippet(
            "RL015",
            """
            def mean(values):
                total = sum(values)
                return total / len(values)
            """,
        )
        assert codes_of(findings) == ["RL015"]
        assert findings[0].line == 4
        assert findings[0].metadata["denominator"] == "len(values)"

    def test_unguarded_sum_accumulator(self):
        findings = lint_snippet(
            "RL015",
            """
            def normalize(weights):
                total = sum(weights.values())
                return {k: w / total for k, w in weights.items()}
            """,
        )
        assert codes_of(findings) == ["RL015"]
        assert findings[0].line == 4
        assert findings[0].metadata["denominator"] == "total"

    def test_emptiness_guard_discharges_len(self):
        assert lint_snippet(
            "RL015",
            """
            def mean(values):
                if not values:
                    return 0.0
                return sum(values) / len(values)
            """,
        ) == []

    def test_relational_guard_discharges_total(self):
        assert lint_snippet(
            "RL015",
            """
            def normalize(weights):
                total = sum(weights.values())
                if total <= 0.0:
                    return {}
                return {k: w / total for k, w in weights.items()}
            """,
        ) == []

    def test_conditional_expression_guard_discharges(self):
        """The relational test of a conditional expression is replayed
        onto its arms: the division only executes where ``total > 0``
        holds, so the interval analysis proves it non-zero there."""
        assert lint_snippet(
            "RL015",
            """
            def share(part, values):
                total = sum(values)
                return part / total if total > 0 else 0.0
            """,
        ) == []

    def test_guard_survives_into_a_later_loop(self):
        """Regression: an emptiness guard must keep discharging divisions
        inside a *later* loop.  An infeasible branch refinement used to
        silently widen the ``len`` fact instead of killing the edge, and
        the premature wide state got locked into the loop's fixpoint
        (joins never narrow)."""
        assert lint_snippet(
            "RL015",
            """
            def averages(rows, steps):
                kept = []
                for row in rows:
                    kept.append(row)
                if not kept:
                    raise ValueError("no rows")
                n = len(kept)
                out = []
                for step in range(steps):
                    out.append(sum(r[step] for r in kept) / n)
                return out
            """,
        ) == []


class TestRL016RateOutOfRange:
    def test_literal_rate_above_one(self):
        findings = one_module(
            "RL016",
            """
            def configure(graph):
                graph.set_rate("paper", "author", 1.5)
            """,
        )
        assert codes_of(findings) == ["RL016"]
        assert findings[0].line == 3
        assert findings[0].metadata["kind"] == "rate"

    def test_damping_of_exactly_one(self):
        """d = 1.0 never converges: the valid damping interval is open."""
        findings = one_module(
            "RL016",
            """
            def run(rank):
                return rank(damping=1.0)
            """,
        )
        assert codes_of(findings) == ["RL016"]
        assert findings[0].line == 3
        assert findings[0].metadata["kind"] == "damping"

    def test_computed_rate_through_arithmetic(self):
        findings = one_module(
            "RL016",
            """
            def boost(graph, bonus):
                if bonus < 0.0:
                    return
                rate = 1.5 + bonus
                graph.set_rate("a", "b", rate)
            """,
        )
        assert codes_of(findings) == ["RL016"]
        assert findings[0].line == 6

    def test_propagates_through_a_callee(self):
        """The callee forwards its parameter into a rate position; the
        caller's constant argument is judged against it."""
        findings = one_module(
            "RL016",
            """
            def apply(graph, rate):
                graph.set_rate("a", "b", rate)

            def setup(graph):
                apply(graph, 2.0)
            """,
        )
        lines = sorted(f.line for f in findings)
        assert 6 in lines  # the apply(graph, 2.0) call site
        site = next(f for f in findings if f.line == 6)
        assert "call_chain" in site.metadata

    def test_valid_rate_is_quiet(self):
        assert one_module(
            "RL016",
            """
            def configure(graph):
                graph.set_rate("paper", "author", 0.85)
            """,
        ) == []

    def test_unbounded_value_is_quiet(self):
        assert one_module(
            "RL016",
            """
            def configure(graph, rate):
                graph.set_rate("paper", "author", rate)
            """,
        ) == []


class TestRL017IndexBounds:
    def test_literal_index_past_known_length(self):
        findings = lint_snippet(
            "RL017",
            """
            def pick():
                xs = [1, 2, 3]
                return xs[3]
            """,
        )
        assert codes_of(findings) == ["RL017"]
        assert findings[0].line == 4
        assert findings[0].metadata["index"] == 3
        assert findings[0].metadata["length"] == 3

    def test_computed_negative_index_into_array(self):
        findings = lint_snippet(
            "RL017",
            """
            import numpy as np

            def head(values, n):
                arr = np.zeros(n)
                start = 0 - 1
                return arr[start]
            """,
        )
        assert codes_of(findings) == ["RL017"]
        assert findings[0].line == 7

    def test_provably_negative_seek_offset(self):
        findings = lint_snippet(
            "RL017",
            """
            def rewind(handle, size):
                position = 0 - 8
                handle.seek(position)
            """,
        )
        assert codes_of(findings) == ["RL017"]
        assert findings[0].line == 4

    def test_literal_tail_index_is_idiomatic(self):
        """arr[-1] is the accepted Python idiom — never flagged without a
        provable length contradiction."""
        assert lint_snippet(
            "RL017",
            """
            import numpy as np

            def tail(values, n):
                arr = np.zeros(n)
                return arr[-1]
            """,
        ) == []

    def test_seek_with_whence_allows_negative(self):
        assert lint_snippet(
            "RL017",
            """
            def back(handle):
                position = 0 - 8
                handle.seek(position, 2)
            """,
        ) == []

    def test_guard_makes_index_safe(self):
        assert lint_snippet(
            "RL017",
            """
            import numpy as np

            def read(values, n, i):
                arr = np.zeros(n)
                if i < 0:
                    raise ValueError("negative index")
                return arr[i]
            """,
        ) == []

    def test_range_loop_index_is_quiet(self):
        assert lint_snippet(
            "RL017",
            """
            import numpy as np

            def walk(n):
                arr = np.zeros(n)
                total = 0.0
                for i in range(4):
                    total += arr[i]
                return total
            """,
        ) == []
