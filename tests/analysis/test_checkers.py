"""Per-checker fixture tests: one positive and one negative snippet each.

The positive snippets are minimal reproductions of the PR 2 bug patterns
each rule encodes — most importantly the pre-fix ``personalized_pagerank``
fancy-indexing restart write for RL001.
"""

import textwrap

import pytest

from repro.analysis import SourceFile, all_checkers, checker_codes


def lint_snippet(code: str, snippet: str):
    """Findings of one rule over one dedented snippet."""
    (checker,) = all_checkers([code])
    source = SourceFile.parse("<snippet>", textwrap.dedent(snippet))
    return list(checker.check(source))


def codes_of(findings):
    return [finding.code for finding in findings]


class TestRegistry:
    def test_all_seventeen_rules_registered(self):
        assert checker_codes() == [
            "RL001", "RL002", "RL003", "RL004", "RL005", "RL006",
            "RL007", "RL008", "RL009", "RL010", "RL011", "RL012",
            "RL013", "RL014", "RL015", "RL016", "RL017",
        ]

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError, match="unknown rule codes"):
            all_checkers(["RL999"])


class TestRL001DuplicateIndexWrite:
    PRE_FIX_PERSONALIZED_PAGERANK = """
        import numpy as np

        def restart_distribution(n, restart_nodes, restart_weights):
            restart = np.zeros(n)
            nodes = np.asarray(restart_nodes, dtype=np.int64)
            restart[nodes] = restart_weights
            total = restart.sum()
            restart /= total
            return restart
    """

    def test_detects_pre_fix_personalized_pagerank_restart_write(self):
        """The exact PR 2 bug: duplicate base-set indices lose their mass."""
        findings = lint_snippet("RL001", self.PRE_FIX_PERSONALIZED_PAGERANK)
        assert codes_of(findings) == ["RL001"]
        assert "last write survives" in findings[0].message
        assert "np.add.at" in findings[0].suggestion

    def test_detects_augmented_fancy_write(self):
        findings = lint_snippet(
            "RL001",
            """
            import numpy as np

            def accumulate(scores, hit_indices):
                scores[hit_indices] += 1.0
            """,
        )
        assert codes_of(findings) == ["RL001"]

    def test_detects_list_literal_index(self):
        findings = lint_snippet(
            "RL001",
            """
            def f(a, w):
                a[[0, 0, 1]] += w
            """,
        )
        assert codes_of(findings) == ["RL001"]

    def test_negative_np_add_at_fix_is_clean(self):
        """The post-fix shape of personalized_pagerank passes."""
        findings = lint_snippet(
            "RL001",
            """
            import numpy as np

            def restart_distribution(n, restart_nodes, restart_weights):
                restart = np.zeros(n)
                nodes = np.asarray(restart_nodes, dtype=np.int64)
                np.add.at(restart, nodes, restart_weights)
                return restart / restart.sum()
            """,
        )
        assert findings == []

    def test_negative_scalar_loop_index_is_clean(self):
        findings = lint_snippet(
            "RL001",
            """
            def fill(a, n):
                for i in range(n):
                    a[i] += 1.0
            """,
        )
        assert findings == []

    def test_negative_constant_store_is_clean(self):
        """Assigning a constant is idempotent under duplicate indices."""
        findings = lint_snippet(
            "RL001",
            """
            import numpy as np

            def mask_out(a, dead_indices):
                a[dead_indices] = 0.0
            """,
        )
        assert findings == []


class TestRL002CacheLatch:
    PRE_FIX_TRANSFER_VIEW_LATCH = """
        class SearchEngine:
            def __init__(self, rates):
                self._transfer_graph = None
                self.rates = rates

            def transfer_view(self):
                if self._transfer_graph is None:
                    self._transfer_graph = build(self.rates)
                return self._transfer_graph

            def apply_rates(self, rates):
                self.rates = rates
    """

    def test_detects_pre_fix_transfer_view_latch(self):
        """The PR 2 bug: a built-once view that ignores later rate changes."""
        findings = lint_snippet("RL002", self.PRE_FIX_TRANSFER_VIEW_LATCH)
        assert codes_of(findings) == ["RL002"]
        assert "_transfer_graph" in findings[0].message
        assert "apply_rates" in findings[0].message

    def test_detects_boolean_flag_latch(self):
        findings = lint_snippet(
            "RL002",
            """
            class Runtime:
                def __init__(self):
                    self._built = False
                    self._cache = None
                    self.config = {}

                def get(self):
                    if not self._built:
                        self._cache = expensive(self.config)
                        self._built = True
                    return self._cache

                def reconfigure(self, config):
                    self.config = config
            """,
        )
        assert codes_of(findings) == ["RL002"]

    def test_negative_invalidating_writer_is_clean(self):
        """A writer that resets the latch is a correct invalidation."""
        findings = lint_snippet(
            "RL002",
            """
            class SearchEngine:
                def __init__(self, rates):
                    self._transfer_graph = None
                    self.rates = rates

                def transfer_view(self):
                    if self._transfer_graph is None:
                        self._transfer_graph = build(self.rates)
                    return self._transfer_graph

                def apply_rates(self, rates):
                    self.rates = rates
                    self._transfer_graph = None
            """,
        )
        assert findings == []

    def test_negative_constructor_writes_do_not_count(self):
        findings = lint_snippet(
            "RL002",
            """
            class Lazy:
                def __init__(self, inputs):
                    self._value = None
                    self.inputs = inputs

                def get(self):
                    if self._value is None:
                        self._value = compute(self.inputs)
                    return self._value
            """,
        )
        assert findings == []


class TestRL003LockDiscipline:
    def test_detects_naming_convention_violation(self):
        findings = lint_snippet(
            "RL003",
            """
            import threading

            class Service:
                def __init__(self):
                    self._views_lock = threading.Lock()
                    self._views = {}

                def get(self, key):
                    return self._views.get(key)
            """,
        )
        assert codes_of(findings) == ["RL003"]
        assert "_views_lock" in findings[0].message

    def test_detects_annotation_violation(self):
        findings = lint_snippet(
            "RL003",
            """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    #: guarded by self._lock
                    self._value = 0.0

                def inc(self):
                    self._value += 1.0
            """,
        )
        assert codes_of(findings) == ["RL003"]
        assert "written" in findings[0].message

    def test_negative_with_block_access_is_clean(self):
        findings = lint_snippet(
            "RL003",
            """
            import threading

            class Service:
                def __init__(self):
                    self._views_lock = threading.Lock()
                    self._views = {}

                def get(self, key):
                    with self._views_lock:
                        return self._views.get(key)
            """,
        )
        assert findings == []

    def test_negative_locked_suffix_helper_exempt(self):
        """``*_locked`` names the caller-holds-the-lock convention."""
        findings = lint_snippet(
            "RL003",
            """
            import threading

            class Service:
                def __init__(self):
                    self._views_lock = threading.Lock()
                    self._views = {}

                def _evict_locked(self):
                    self._views.clear()

                def evict(self):
                    with self._views_lock:
                        self._evict_locked()
            """,
        )
        assert findings == []

    def test_negative_constructor_exempt(self):
        findings = lint_snippet(
            "RL003",
            """
            import threading

            class Service:
                def __init__(self):
                    self._views_lock = threading.Lock()
                    self._views = {}
                    self._views["warm"] = 1
            """,
        )
        assert findings == []

    def test_negative_unannotated_bare_lock_not_bound(self):
        """A bare ``_lock`` guards nothing without an annotation."""
        findings = lint_snippet(
            "RL003",
            """
            import threading

            class Loose:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._value = 0

                def read(self):
                    return self._value
            """,
        )
        assert findings == []


class TestRL004ParamMutation:
    def test_detects_shared_rates_mutation(self):
        """The PR 1 bug shape: learning writes into the caller's rate map."""
        findings = lint_snippet(
            "RL004",
            """
            def learn(rates, flows):
                for edge_type, flow in flows.items():
                    rates[edge_type] = flow
                return rates
            """,
        )
        assert codes_of(findings) == ["RL004"]
        assert "'rates'" in findings[0].message

    def test_detects_update_call(self):
        findings = lint_snippet(
            "RL004",
            """
            def merge(weights, extra):
                weights.update(extra)
            """,
        )
        assert codes_of(findings) == ["RL004"]

    def test_detects_del_item(self):
        findings = lint_snippet(
            "RL004",
            """
            def prune(weights, term):
                del weights[term]
            """,
        )
        assert codes_of(findings) == ["RL004"]

    def test_negative_copy_first_is_clean(self):
        findings = lint_snippet(
            "RL004",
            """
            def learn(rates, flows):
                rates = dict(rates)
                for edge_type, flow in flows.items():
                    rates[edge_type] = flow
                return rates
            """,
        )
        assert findings == []

    def test_negative_out_param_contract_is_clean(self):
        findings = lint_snippet(
            "RL004",
            """
            def fill(out, values):
                for key, value in values:
                    out[key] = value
            """,
        )
        assert findings == []

    def test_negative_local_dict_is_clean(self):
        findings = lint_snippet(
            "RL004",
            """
            def collect(items):
                weights = {}
                for term in items:
                    weights[term] = weights.get(term, 0.0) + 1.0
                return weights
            """,
        )
        assert findings == []

    def test_negative_nested_function_params_scoped(self):
        """A nested def's own parameter mutation is the nested scope's deal."""
        findings = lint_snippet(
            "RL004",
            """
            def outer(rates):
                def inner(local_map):
                    local_map["x"] = 1.0
                    return local_map
                return inner(dict(rates))
            """,
        )
        assert codes_of(findings) == ["RL004"]  # inner's own mutation only
        assert "'local_map'" in findings[0].message


class TestRL005FloatEquality:
    def test_detects_total_weight_guard(self):
        """The pre-fix PrecomputedRanker.rank guard shape."""
        findings = lint_snippet(
            "RL005",
            """
            def rank(weights):
                total_weight = sum(weights)
                if total_weight == 0.0:
                    raise ValueError("empty")
                return total_weight
            """,
        )
        assert codes_of(findings) == ["RL005"]
        assert "<= 0.0" in findings[0].suggestion

    def test_detects_not_equal_and_reversed_operands(self):
        findings = lint_snippet(
            "RL005",
            """
            def check(x, y):
                return 1.0 != x or y == -0.5
            """,
        )
        assert codes_of(findings) == ["RL005", "RL005"]

    def test_negative_integer_comparison_is_clean(self):
        findings = lint_snippet(
            "RL005",
            """
            def check(count):
                return count == 0
            """,
        )
        assert findings == []

    def test_negative_inequality_is_clean(self):
        findings = lint_snippet(
            "RL005",
            """
            def check(total):
                if total <= 0.0:
                    raise ValueError("empty")
            """,
        )
        assert findings == []


class TestRL006RateInvariants:
    def test_detects_negative_literal_rate(self):
        findings = lint_snippet(
            "RL006",
            """
            from repro.graph.authority import AuthorityTransferSchemaGraph

            def build(schema, edge):
                return AuthorityTransferSchemaGraph(schema, rates={edge: -0.3})
            """,
        )
        assert codes_of(findings) == ["RL006"]
        assert "non-negative" in findings[0].message

    def test_detects_unnormalized_rate_above_one(self):
        findings = lint_snippet(
            "RL006",
            """
            def build(schema, edge):
                return AuthorityTransferSchemaGraph(schema, rates={edge: 1.5})
            """,
        )
        assert codes_of(findings) == ["RL006"]
        assert "convergence" in findings[0].message

    def test_detects_negative_set_rate(self):
        findings = lint_snippet(
            "RL006",
            """
            def poke(schema, edge):
                schema.set_rate(edge, -1.0)
            """,
        )
        assert codes_of(findings) == ["RL006"]

    def test_negative_normalized_scope_allows_above_one(self):
        """A >1 literal on its way into scaled_to_convergent is legitimate."""
        findings = lint_snippet(
            "RL006",
            """
            def build(schema, edge):
                raw = AuthorityTransferSchemaGraph(schema, rates={edge: 1.5})
                return raw.scaled_to_convergent()
            """,
        )
        assert findings == []

    def test_negative_valid_rates_are_clean(self):
        findings = lint_snippet(
            "RL006",
            """
            def build(schema, forward, backward):
                return AuthorityTransferSchemaGraph(
                    schema, rates={forward: 0.7, backward: 0.0}, epsilon=1e-9
                )
            """,
        )
        assert findings == []

    def test_negative_computed_rates_not_judged(self):
        """Non-literal rate expressions are out of static reach — no guess."""
        findings = lint_snippet(
            "RL006",
            """
            def build(schema, edge, learned):
                return AuthorityTransferSchemaGraph(schema, rates={edge: learned})
            """,
        )
        assert findings == []
