"""The persistent summary cache: hit/miss semantics and invalidation.

The acceptance criterion of the incremental-lint satellite is that a no-op
``repro lint --changed`` run performs **zero** project-phase fixpoint
iterations — the summary index loads from disk keyed on per-file content
hashes, and any content change invalidates it.
"""

import textwrap

import pytest

from repro.analysis import Baseline, all_checkers, run_lint
from repro.analysis.summary_cache import (
    CACHE_VERSION,
    file_hashes,
    load_summaries,
    store_summaries,
)

HELPER = """
    def save(path):
        return open(path)
"""

HANDLER = """
    from helper import save

    class Handler:
        def do_POST(self):
            body = self._read_json_body()
            save(body["path"])
"""


@pytest.fixture
def tree(tmp_path):
    (tmp_path / "helper.py").write_text(textwrap.dedent(HELPER))
    (tmp_path / "handler.py").write_text(textwrap.dedent(HANDLER))
    return tmp_path


def lint(tree, cache):
    return run_lint(
        [tree],
        checkers=all_checkers(),
        baseline=Baseline(),
        root=tree,
        cache=cache,
    )


class TestSummaryCache:
    def test_cold_run_is_a_miss_that_populates(self, tree):
        cache = tree / ".repro-lint-cache"
        report = lint(tree, cache)
        assert report.summary_cache == "miss"
        assert report.fixpoint_rounds > 0
        assert cache.exists()

    def test_noop_rerun_hits_with_zero_fixpoint_rounds(self, tree):
        cache = tree / ".repro-lint-cache"
        first = lint(tree, cache)
        second = lint(tree, cache)
        assert second.summary_cache == "hit"
        assert second.fixpoint_rounds == 0
        # Identical findings either way — the cache is invisible except
        # for the skipped work.
        assert [f.fingerprint() for f in second.findings] == [
            f.fingerprint() for f in first.findings
        ]

    def test_content_change_invalidates(self, tree):
        cache = tree / ".repro-lint-cache"
        first = lint(tree, cache)
        assert any(f.code == "RL014" for f in first.findings)
        # Sanitize the helper: the cached summaries are now stale and the
        # fixpoint must rerun to clear the finding.
        (tree / "helper.py").write_text(
            textwrap.dedent(
                """
                def save(raw):
                    path = _require_str({"path": raw}, "path")
                    return open(path)
                """
            )
        )
        second = lint(tree, cache)
        assert second.summary_cache == "miss"
        assert second.fixpoint_rounds > 0
        assert not any(f.code == "RL014" for f in second.findings)
        # And the rewritten cache serves the new tree.
        third = lint(tree, cache)
        assert third.summary_cache == "hit"
        assert not any(f.code == "RL014" for f in third.findings)

    def test_added_file_invalidates(self, tree):
        cache = tree / ".repro-lint-cache"
        lint(tree, cache)
        (tree / "extra.py").write_text("VALUE = 1\n")
        assert lint(tree, cache).summary_cache == "miss"

    def test_no_cache_path_means_no_cache_activity(self, tree):
        report = lint(tree, None)
        assert report.summary_cache == ""
        assert report.fixpoint_rounds > 0
        assert not (tree / ".repro-lint-cache").exists()

    def test_corrupt_cache_is_a_silent_miss(self, tree):
        cache = tree / ".repro-lint-cache"
        cache.write_bytes(b"not a pickle")
        report = lint(tree, cache)
        assert report.summary_cache == "miss"
        assert report.fixpoint_rounds > 0
        # The corrupt file was replaced with a valid one.
        assert lint(tree, cache).summary_cache == "hit"

    def test_version_skew_is_a_miss(self, tree):
        import pickle

        cache = tree / ".repro-lint-cache"
        lint(tree, cache)
        payload = pickle.loads(cache.read_bytes())
        assert payload["version"] == CACHE_VERSION
        payload["version"] = CACHE_VERSION + 1
        cache.write_bytes(pickle.dumps(payload))
        assert lint(tree, cache).summary_cache == "miss"


class TestCachePrimitives:
    def test_file_hashes_track_content(self, tree):
        files = [(p, p.name) for p in sorted(tree.glob("*.py"))]
        before = file_hashes(files)
        assert set(before) == {"handler.py", "helper.py"}
        (tree / "helper.py").write_text("VALUE = 2\n")
        after = file_hashes(files)
        assert before["handler.py"] == after["handler.py"]
        assert before["helper.py"] != after["helper.py"]

    def test_load_requires_exact_hash_map(self, tmp_path):
        class FakeIndex:
            by_id = {"m.f": object()}
            converged = True

        cache = tmp_path / "cache"
        store_summaries(cache, {"a.py": "h1"}, FakeIndex())
        assert load_summaries(cache, {"a.py": "h1"}) is not None
        assert load_summaries(cache, {"a.py": "h2"}) is None
        assert load_summaries(cache, {"a.py": "h1", "b.py": "h3"}) is None
        assert load_summaries(cache, {}) is None

    def test_missing_file_loads_none(self, tmp_path):
        assert load_summaries(tmp_path / "absent", {}) is None
