"""Shared fixtures: the paper's Figure 1 example and small synthetic datasets.

Expensive fixtures are session-scoped; tests must not mutate them.  Tests that
need a mutable graph build their own through the helpers below.
"""

from __future__ import annotations

import pytest

from repro.datasets import load_dataset
from repro.datasets.figure1 import figure1_dataset
from repro.graph import AuthorityTransferDataGraph
from repro.ir import BM25Scorer, InvertedIndex
from repro.query import KeywordQuery, SearchEngine
from repro.ranking import objectrank2


@pytest.fixture(scope="session")
def figure1():
    """The Figure 1 dataset (7 nodes, 9 edges, Figure 3 rates)."""
    return figure1_dataset()


@pytest.fixture(scope="session")
def figure1_graph(figure1):
    """The materialized authority transfer data graph of Figure 5."""
    return AuthorityTransferDataGraph(figure1.data_graph, figure1.transfer_schema)


@pytest.fixture(scope="session")
def figure1_index(figure1):
    return InvertedIndex.from_graph(figure1.data_graph)


@pytest.fixture(scope="session")
def figure1_scorer(figure1_index):
    return BM25Scorer(figure1_index)


@pytest.fixture(scope="session")
def olap_result(figure1_graph, figure1_scorer):
    """Converged ObjectRank2 scores for Q=["OLAP"] on Figure 1 (Figure 6)."""
    return objectrank2(
        figure1_graph,
        figure1_scorer,
        KeywordQuery(["OLAP"]).vector(),
        damping=0.85,
        tolerance=1e-8,
    )


@pytest.fixture(scope="session")
def dblp_tiny():
    """A small synthetic DBLP dataset (a few hundred nodes)."""
    return load_dataset("dblp_tiny")


@pytest.fixture(scope="session")
def bio_tiny():
    """A small synthetic biological dataset."""
    return load_dataset("bio_tiny")


@pytest.fixture(scope="session")
def dblp_tiny_engine(dblp_tiny):
    """A shared search engine over dblp_tiny with ground-truth rates."""
    return SearchEngine(dblp_tiny.data_graph, dblp_tiny.transfer_schema)
