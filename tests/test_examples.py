"""Every example script must run clean end-to-end.

Examples are executed in-process via runpy with argv patched, so failures
surface as ordinary test failures with stack traces.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


def run_example(monkeypatch, capsys, name: str, *argv: str) -> str:
    monkeypatch.setattr(sys, "argv", [name, *argv])
    runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "quickstart.py")
        assert "Data Cube" in out
        assert "Explanation for v4" in out
        assert "transfer rates (before -> after):" in out

    def test_bibliographic_search(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "bibliographic_search.py", "olap")
        assert "precision@10" in out
        assert "cosine similarity:" in out

    def test_biological_discovery(self, monkeypatch, capsys, tmp_path):
        monkeypatch.chdir(tmp_path)  # the script writes a .dot file
        out = run_example(monkeypatch, capsys, "biological_discovery.py", "cancer")
        assert "Top entities for 'cancer'" in out
        assert (tmp_path / "biological_explanation.dot").exists() or (
            "nothing to explain" in out
        )

    def test_train_transfer_rates(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "train_transfer_rates.py")
        assert "Cf=0.5" in out
        assert "peak at iteration" in out
        assert "learned | expert" in out

    def test_implicit_feedback(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "implicit_feedback.py")
        assert "implied feedback objects" in out
        assert "Honest finding" in out

    def test_every_example_has_a_test(self):
        tested = {
            "quickstart.py",
            "bibliographic_search.py",
            "biological_discovery.py",
            "train_transfer_rates.py",
            "implicit_feedback.py",
        }
        on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
        assert on_disk == tested
