"""End-to-end integration tests over the synthetic datasets."""

import pytest

from repro.core import ObjectRankSystem, SystemConfig
from repro.datasets import dblp_edge_order, keyword_subset
from repro.feedback import (
    SimulatedUser,
    run_feedback_session,
    train_transfer_rates,
)
from repro.graph import AuthorityTransferSchemaGraph
from repro.query import SearchEngine


class TestDblpPipeline:
    def test_full_session_on_synthetic_dblp(self, dblp_tiny):
        system = ObjectRankSystem(
            dblp_tiny.data_graph, dblp_tiny.transfer_schema, SystemConfig(top_k=10)
        )
        result = system.query("olap cube")
        assert len(result.top) == 10

        explanation = system.explain(result.top[0][0])
        assert explanation.converged

        outcome = system.feedback([result.top[0][0], result.top[1][0]])
        assert outcome.result.iterations >= 1
        assert len(system.timings) == 2

    def test_topical_query_returns_topical_results(self, dblp_tiny):
        """The synthetic generator's topic structure must be recoverable:
        most top results for 'olap' are olap-topic papers or their hubs."""
        system = ObjectRankSystem(
            dblp_tiny.data_graph, dblp_tiny.transfer_schema, SystemConfig(top_k=10)
        )
        result = system.query("olap")
        topics = dblp_tiny.extras["paper_topics"]
        paper_hits = [nid for nid, _ in result.top if nid in topics]
        assert paper_hits
        olap_hits = [nid for nid in paper_hits if topics[nid] == "olap"]
        assert len(olap_hits) >= len(paper_hits) / 2

    def test_multi_session_isolation(self, dblp_tiny):
        """Two systems sharing one engine must not leak rates/state."""
        engine = SearchEngine(dblp_tiny.data_graph, dblp_tiny.transfer_schema)
        config = SystemConfig.structure_only(top_k=5)
        one = ObjectRankSystem(
            dblp_tiny.data_graph, dblp_tiny.transfer_schema, config, engine=engine
        )
        two = ObjectRankSystem(
            dblp_tiny.data_graph, dblp_tiny.transfer_schema, config, engine=engine
        )
        first = one.query("olap")
        one.feedback([first.top[0][0]])
        baseline = two.query("olap")
        repeat = two.query("olap")
        assert baseline.ranked.ranking() == repeat.ranked.ranking()


class TestBiologicalPipeline:
    def test_cancer_query_on_bio_graph(self, bio_tiny):
        system = ObjectRankSystem(
            bio_tiny.data_graph, bio_tiny.transfer_schema, SystemConfig(top_k=10)
        )
        result = system.query("cancer")
        assert result.top
        explanation = system.explain(result.top[0][0])
        assert explanation.converged

    def test_gene_reached_through_publications(self, bio_tiny):
        """A gene can rank for 'cancer' without containing the word — the
        paper's motivating biology scenario."""
        system = ObjectRankSystem(
            bio_tiny.data_graph, bio_tiny.transfer_schema, SystemConfig(top_k=50)
        )
        result = system.query("cancer")
        labels = {bio_tiny.data_graph.node(nid).label for nid, _ in result.top}
        assert labels - {"PubMed"}  # non-publication entities surface too

    def test_ds7cancer_subset_pipeline(self, bio_tiny):
        subset = keyword_subset(bio_tiny, "cancer", hops=1, seed_labels=("PubMed",))
        system = ObjectRankSystem(
            subset.data_graph, subset.transfer_schema, SystemConfig(top_k=5)
        )
        result = system.query("cancer")
        assert result.top


class TestLearningLoop:
    def test_structure_feedback_recovers_rates(self, dblp_tiny):
        curve = train_transfer_rates(
            dblp_tiny,
            ["olap", "xml"],
            adjustment_factor=0.5,
            iterations=3,
            edge_order=dblp_edge_order(dblp_tiny.schema),
        )
        assert max(curve.similarities) > curve.similarities[0]

    def test_survey_session_runs_all_settings(self, dblp_tiny):
        flat = AuthorityTransferSchemaGraph(dblp_tiny.schema, default_rate=0.3)
        engine = SearchEngine(dblp_tiny.data_graph, flat)
        user = SimulatedUser(engine, dblp_tiny.ground_truth_rates, relevance_depth=30)
        for config in (
            SystemConfig.content_only(top_k=10),
            SystemConfig.structure_only(top_k=10),
            SystemConfig.content_and_structure(top_k=10),
        ):
            system = ObjectRankSystem(dblp_tiny.data_graph, flat, config, engine=engine)
            trace = run_feedback_session(system, user, "olap", feedback_iterations=2)
            assert len(trace.precisions) == 3
