"""Integration tests reproducing the paper's worked examples end-to-end."""

import pytest

from repro.core import ObjectRankSystem, SystemConfig
from repro.explain import top_paths
from repro.query import KeywordQuery
from repro.ranking import objectrank2


class TestSection1Motivation:
    def test_data_cube_ranked_top_without_keyword(self, figure1):
        """'Given the subgraph of Figure 1, the Data Cube paper is ranked on
        the top, even though it does not contain the keyword OLAP.'"""
        system = ObjectRankSystem(
            figure1.data_graph, figure1.transfer_schema, SystemConfig(top_k=7)
        )
        result = system.query("OLAP")
        assert result.top[0][0] == "v7"
        assert "olap" not in figure1.data_graph.node("v7").text().lower()


class TestFigure6:
    def test_keyword_containing_papers_in_base_set(
        self, figure1_graph, figure1_scorer
    ):
        result = objectrank2(
            figure1_graph, figure1_scorer, KeywordQuery(["OLAP"]).vector()
        )
        assert set(result.base_weights) == {"v1", "v4"}

    def test_score_magnitude_ordering_matches_figure6(self, olap_result):
        """Figure 6 reports r = [.076, .002, .009, .076, .017, .025, .083]:
        the two base papers and 'Data Cube' dominate; the conference node is
        weakest."""
        score = {nid: olap_result.score_of(nid) for nid in
                 ("v1", "v2", "v3", "v4", "v5", "v6", "v7")}
        assert score["v7"] > score["v6"]
        assert min(score["v1"], score["v4"]) > score["v6"] > score["v3"]
        assert score["v2"] < 0.2 * score["v7"]


class TestExample1:
    def test_explaining_subgraph_structure(self, figure1):
        """Example 1: for target v4, the Data Cube paper is not in the
        explaining subgraph; the incoming flows of v4 stay unadjusted
        (h(v4) = 1); v1's reduction factor is the smallest (its flow mostly
        leaks to v7)."""
        system = ObjectRankSystem(
            figure1.data_graph,
            figure1.transfer_schema,
            SystemConfig(top_k=7, radius=None, tolerance=1e-8),
        )
        system.query("OLAP")
        explanation = system.explain("v4")
        graph = explanation.graph
        assert not explanation.subgraph.contains_node(graph.index_of("v7"))
        reduction = {
            graph.node_id_of(n): h for n, h in explanation.reduction.items()
        }
        assert reduction["v4"] == 1.0
        others = {k: v for k, v in reduction.items() if k != "v4"}
        assert min(others, key=others.get) == "v1"
        # Ripple effect: h decreases with distance from the target.
        assert reduction["v6"] > reduction["v5"] > reduction["v3"] > reduction["v1"]

    def test_paths_reach_target_through_author(self, figure1):
        system = ObjectRankSystem(
            figure1.data_graph,
            figure1.transfer_schema,
            SystemConfig(top_k=7, radius=None, tolerance=1e-8),
        )
        system.query("OLAP")
        explanation = system.explain("v4")
        path_sets = {p.node_ids for p in top_paths(explanation, 10, max_length=6)}
        assert ("v1", "v3", "v5", "v6", "v4") in path_sets


class TestExample2:
    def test_reformulated_vector_contains_feedback_terms(self, figure1):
        """Example 2: feeding back 'Range Queries in OLAP Data Cubes' expands
        the query with its topical terms (cubes/range/queries...)."""
        config = SystemConfig(
            top_k=7, radius=None, expansion_factor=0.5, adjustment_factor=0.5,
            tolerance=1e-8,
        )
        system = ObjectRankSystem(figure1.data_graph, figure1.transfer_schema, config)
        system.query("OLAP")
        outcome = system.feedback(["v4"])
        vector = outcome.reformulated.query_vector
        assert vector.weight("olap") >= 1.0
        new_terms = set(vector.terms) - {"olap"}
        assert new_terms & {"cubes", "range", "queries", "data", "agrawal"}

    def test_rate_adjustment_direction(self, figure1):
        """Example 2 (cont'd): PA's rate rises relative to AP's."""
        from repro.datasets import dblp_edge_order

        config = SystemConfig(top_k=7, radius=None, adjustment_factor=0.5,
                              expansion_factor=0.0, tolerance=1e-8)
        system = ObjectRankSystem(figure1.data_graph, figure1.transfer_schema, config)
        system.query("OLAP")
        outcome = system.feedback(["v4"])
        order = dblp_edge_order(figure1.schema)
        before = figure1.transfer_schema.as_vector(order)
        after = outcome.reformulated.transfer_schema.as_vector(order)
        pa_ratio = after[2] / before[2]
        ap_ratio = after[3] / before[3]
        assert pa_ratio > ap_ratio
