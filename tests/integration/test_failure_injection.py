"""Failure-injection tests: the system must fail loudly and precisely.

Production systems distinguish "no results" from "wrong input" from
"numerical divergence"; these tests feed each failure mode and assert the
error type and the absence of silent corruption.
"""

import numpy as np
import pytest

from repro.datasets import dblp_transfer_schema
from repro.datasets.figure1 import figure1_dataset
from repro.errors import (
    ConvergenceError,
    EmptyBaseSetError,
    RateError,
    ReproError,
)
from repro.graph import AuthorityTransferDataGraph, AuthorityTransferSchemaGraph


class TestDivergentRates:
    def test_nonconvergent_rates_detected_before_running(self):
        """Rates summing over 1 per label are detectable up front."""
        schema = dblp_transfer_schema().schema
        hot = AuthorityTransferSchemaGraph(schema, default_rate=0.9)
        assert not hot.is_convergent()

    def test_power_iteration_reports_non_convergence(self):
        """A genuinely expanding matrix hits max_iterations with
        converged=False rather than looping forever or lying."""
        from scipy import sparse

        from repro.ranking import power_iteration

        expanding = sparse.csr_matrix(np.full((3, 3), 2.0))
        restart = np.full(3, 1 / 3)
        result = power_iteration(
            expanding, restart, tolerance=1e-12, max_iterations=10
        )
        assert not result.converged
        assert result.iterations == 10

    def test_explaining_divergence_raises_when_asked(self, figure1_graph, olap_result):
        from repro.explain import build_explaining_subgraph
        from repro.explain.adjustment import adjust_flows

        subgraph = build_explaining_subgraph(
            figure1_graph, list(olap_result.base_weights), "v4", radius=None
        )
        with pytest.raises(ConvergenceError):
            adjust_flows(
                subgraph,
                olap_result.scores,
                tolerance=0.0,  # unattainable
                max_iterations=3,
                raise_on_divergence=True,
            )


class TestBadInputs:
    def test_nan_rate_rejected(self):
        schema = dblp_transfer_schema()
        with pytest.raises(RateError):
            schema.set_rate(schema.edge_types()[0], float("nan"))

    def test_infinite_rate_rejected(self):
        schema = dblp_transfer_schema()
        with pytest.raises(RateError):
            schema.set_rate(schema.edge_types()[0], float("inf"))

    def test_empty_query_raises_not_crashes(self, dblp_tiny_engine):
        with pytest.raises(EmptyBaseSetError):
            dblp_tiny_engine.search("")

    def test_whitespace_only_query(self, dblp_tiny_engine):
        with pytest.raises(EmptyBaseSetError):
            dblp_tiny_engine.search("   \t  ")

    def test_punctuation_only_query(self, dblp_tiny_engine):
        with pytest.raises(EmptyBaseSetError):
            dblp_tiny_engine.search("!!! ??? ...")

    def test_giant_query_is_handled(self, dblp_tiny_engine):
        """A thousand-keyword query degrades gracefully (big base set)."""
        result = dblp_tiny_engine.search("olap " * 500 + "cube", top_k=5)
        assert len(result.top) == 5

    def test_explaining_unknown_target(self, figure1):
        from repro.core import ObjectRankSystem, SystemConfig
        from repro.errors import UnknownNodeError

        system = ObjectRankSystem(
            figure1.data_graph, figure1.transfer_schema, SystemConfig(top_k=7)
        )
        system.query("OLAP")
        with pytest.raises(UnknownNodeError):
            system.explain("not-a-node")

    def test_feedback_with_unknown_object(self, figure1):
        from repro.core import ObjectRankSystem, SystemConfig
        from repro.errors import UnknownNodeError

        system = ObjectRankSystem(
            figure1.data_graph, figure1.transfer_schema, SystemConfig(top_k=7)
        )
        system.query("OLAP")
        with pytest.raises(UnknownNodeError):
            system.feedback(["ghost"])


class TestNumericalEdges:
    def test_single_node_graph(self):
        """One isolated node: the base set holds everything; no crash."""
        from repro.graph import DataGraph, SchemaGraph
        from repro.ir import BM25Scorer, InvertedIndex
        from repro.query import QueryVector
        from repro.ranking import objectrank2

        schema = SchemaGraph()
        schema.add_label("Paper")
        schema.add_edge("Paper", "Paper", "cites")
        graph = DataGraph()
        graph.add_node("only", "Paper", {"title": "olap"})
        atdg = AuthorityTransferDataGraph(
            graph, AuthorityTransferSchemaGraph(schema, default_rate=0.5)
        )
        index = InvertedIndex.from_graph(graph)
        result = objectrank2(atdg, BM25Scorer(index), QueryVector({"olap": 1.0}))
        assert result.converged
        assert result.top_k(1)[0][0] == "only"

    def test_all_zero_rates_still_converge(self):
        """With every rate 0, scores collapse to the jump distribution."""
        dataset = figure1_dataset()
        zero = AuthorityTransferSchemaGraph(dataset.schema, default_rate=0.0)
        atdg = AuthorityTransferDataGraph(dataset.data_graph, zero)
        from repro.ir import BM25Scorer, InvertedIndex
        from repro.query import QueryVector
        from repro.ranking import objectrank2

        index = InvertedIndex.from_graph(dataset.data_graph)
        result = objectrank2(
            atdg, BM25Scorer(index), QueryVector({"olap": 1.0}), tolerance=1e-12
        )
        assert result.converged
        # Only base-set nodes hold mass.
        for node_id in ("v2", "v3", "v5", "v6", "v7"):
            assert result.score_of(node_id) == pytest.approx(0.0, abs=1e-12)

    def test_base_class_catches_everything(self, dblp_tiny_engine):
        with pytest.raises(ReproError):
            dblp_tiny_engine.search("zz-not-a-term")
