"""Unit tests for IR/authority score fusion."""

from __future__ import annotations

import numpy as np
import pytest

from repro.retrieval import FUSION_MODES, fuse_scores

IR = np.array([3.0, 1.0, 2.0, 0.5])
AUTH = np.array([0.1, 0.4, 0.2, 0.3])


class TestWeighted:
    def test_weight_one_is_exact_authority_passthrough(self):
        fused = fuse_scores("weighted", IR, AUTH, authority_weight=1.0)
        assert np.array_equal(fused, AUTH)
        assert fused is not AUTH  # a copy, never an alias

    def test_weight_zero_is_exact_ir_passthrough(self):
        fused = fuse_scores("weighted", IR, AUTH, authority_weight=0.0)
        assert np.array_equal(fused, IR)
        assert fused is not IR

    def test_interior_weight_is_convex_combination_of_normalized(self):
        fused = fuse_scores("weighted", IR, AUTH, authority_weight=0.25)
        expected = 0.25 * AUTH / AUTH.sum() + 0.75 * IR / IR.sum()
        assert np.allclose(fused, expected)
        assert fused.sum() == pytest.approx(1.0)

    @pytest.mark.parametrize("weight", [-0.1, 1.5])
    def test_out_of_range_weight_rejected(self, weight):
        with pytest.raises(ValueError, match="authority_weight"):
            fuse_scores("weighted", IR, AUTH, authority_weight=weight)


class TestMultiplicative:
    def test_product_of_normalized(self):
        fused = fuse_scores("multiplicative", IR, AUTH)
        assert np.allclose(fused, (IR / IR.sum()) * (AUTH / AUTH.sum()))

    def test_zero_on_either_signal_kills_the_candidate(self):
        fused = fuse_scores("multiplicative", np.array([1.0, 0.0]), np.array([0.5, 0.9]))
        assert fused[1] == 0.0


class TestRRF:
    def test_known_ranks(self):
        fused = fuse_scores("rrf", IR, AUTH, rrf_k=60.0)
        # IR ranks: [1, 3, 2, 4]; authority ranks: [4, 1, 3, 2].
        expected = 1.0 / (60.0 + np.array([4.0, 1.0, 3.0, 2.0])) + 1.0 / (
            60.0 + np.array([1.0, 3.0, 2.0, 4.0])
        )
        assert np.allclose(fused, expected)

    def test_tied_scores_rank_by_position(self):
        fused = fuse_scores(
            "rrf", np.array([1.0, 1.0]), np.array([0.0, 0.0]), rrf_k=10.0
        )
        # Stable argsort: earlier position wins both tied rankings.
        assert fused[0] > fused[1]

    def test_non_positive_k_rejected(self):
        with pytest.raises(ValueError, match="rrf_k"):
            fuse_scores("rrf", IR, AUTH, rrf_k=0.0)


class TestValidation:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown fusion mode"):
            fuse_scores("bogus", IR, AUTH)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shapes differ"):
            fuse_scores("weighted", IR, AUTH[:-1])

    @pytest.mark.parametrize("mode", FUSION_MODES)
    def test_every_mode_returns_aligned_vector(self, mode):
        fused = fuse_scores(mode, IR, AUTH, authority_weight=0.5)
        assert fused.shape == IR.shape
        assert np.isfinite(fused).all()
