"""Unit tests for the pruned (WAND/max-score) top-N candidate generator.

The load-bearing invariant: :func:`pruned_top_n` is *exact* — same ids,
same score floats, same document-id tiebreak as :func:`exhaustive_top_n` —
while evaluating fewer documents.  Everything downstream (restricted base
sets, degenerate bit-identity with focused ObjectRank2) leans on it.
"""

from __future__ import annotations

import pytest

from repro.errors import EmptyBaseSetError
from repro.ir import BM25Scorer, InvertedIndex, TfIdfScorer, UniformScorer
from repro.query import QueryVector, SearchEngine
from repro.retrieval import (
    exhaustive_top_n,
    positive_query_weights,
    pruned_top_n,
)


@pytest.fixture(scope="module")
def tiny_scorer(dblp_tiny):
    return SearchEngine(dblp_tiny.data_graph, dblp_tiny.transfer_schema).scorer


TINY_QUERIES = (
    {"improved": 1.0},
    {"improved": 1.0, "study": 1.0},
    {"dynamic": 0.7, "evaluation": 0.3},
    {"practical": 1.0, "effective": 2.0, "study": 0.5},
)


class TestPrunedEqualsExhaustive:
    @pytest.mark.parametrize("weights", TINY_QUERIES)
    @pytest.mark.parametrize("n", [1, 3, 10, 50, 10_000])
    def test_same_ids_and_score_floats(self, tiny_scorer, weights, n):
        vector = QueryVector(dict(weights))
        exact = exhaustive_top_n(tiny_scorer, vector, n)
        pruned = pruned_top_n(tiny_scorer, vector, n)
        assert pruned.doc_ids == exact.doc_ids
        for mine, theirs in zip(pruned.candidates, exact.candidates):
            assert mine.score == theirs.score  # bit-identical, not approx

    @pytest.mark.parametrize("scorer_cls", [BM25Scorer, TfIdfScorer, UniformScorer])
    def test_every_scorer_protocol_member(self, figure1_index, scorer_cls):
        scorer = scorer_cls(figure1_index)
        vector = QueryVector({"olap": 1.0, "xml": 0.5})
        exact = exhaustive_top_n(scorer, vector, 5)
        pruned = pruned_top_n(scorer, vector, 5)
        assert pruned.doc_ids == exact.doc_ids
        assert [c.score for c in pruned.candidates] == [
            c.score for c in exact.candidates
        ]

    def test_pruning_skips_evaluations(self, tiny_scorer):
        """A dominant first term lets the gate drop the tail term's docs.

        After the heavy term's accumulation pass, θ (the N-th best partial
        score) already exceeds everything the light tail term can contribute
        on its own, so documents appearing only in the tail postings are
        never scored — yet the result stays exact (checked above).
        """
        vector = QueryVector({"improved": 5.0, "study": 0.05})
        exact = exhaustive_top_n(tiny_scorer, vector, 1)
        pruned = pruned_top_n(tiny_scorer, vector, 1)
        assert pruned.doc_ids == exact.doc_ids
        assert pruned.evaluated < exact.evaluated
        assert pruned.pruned > 0
        assert pruned.evaluated + pruned.pruned == exact.evaluated

    def test_document_id_tiebreak(self):
        index = InvertedIndex.from_documents(
            [("d3", "olap cube"), ("d1", "olap cube"), ("d2", "olap cube")]
        )
        scorer = BM25Scorer(index)
        vector = QueryVector({"olap": 1.0})
        for top in (exhaustive_top_n(scorer, vector, 2), pruned_top_n(scorer, vector, 2)):
            # Equal scores everywhere: ascending doc id decides.
            assert top.doc_ids == ["d1", "d2"]


class TestEdgesAndErrors:
    def test_no_matching_document_raises(self, tiny_scorer):
        with pytest.raises(EmptyBaseSetError):
            pruned_top_n(tiny_scorer, QueryVector({"zzzmissing": 1.0}), 5)
        with pytest.raises(EmptyBaseSetError):
            exhaustive_top_n(tiny_scorer, QueryVector({"zzzmissing": 1.0}), 5)

    @pytest.mark.parametrize("n", [0, -3])
    def test_non_positive_n_rejected(self, tiny_scorer, n):
        with pytest.raises(ValueError):
            pruned_top_n(tiny_scorer, QueryVector({"improved": 1.0}), n)
        with pytest.raises(ValueError):
            exhaustive_top_n(tiny_scorer, QueryVector({"improved": 1.0}), n)

    def test_zero_weight_terms_ignored(self, tiny_scorer):
        with_noise = QueryVector({"improved": 1.0, "study": 0.0})
        clean = QueryVector({"improved": 1.0})
        noisy = pruned_top_n(tiny_scorer, with_noise, 5)
        assert noisy.doc_ids == pruned_top_n(tiny_scorer, clean, 5).doc_ids

    def test_positive_query_weights_filters(self):
        vector = QueryVector({"a": 1.0, "b": 0.0})
        assert positive_query_weights(vector) == {"a": 1.0}

    def test_candidate_set_container_protocol(self, tiny_scorer):
        candidates = pruned_top_n(tiny_scorer, QueryVector({"improved": 1.0}), 4)
        assert len(candidates) == len(candidates.doc_ids) == 4
        assert [c.doc_id for c in candidates] == candidates.doc_ids
