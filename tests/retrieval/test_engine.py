"""Unit tests for the two-stage engine (stage assembly and degeneracies)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.query import QueryVector, SearchEngine
from repro.ranking import focused_objectrank2, weighted_base_set
from repro.retrieval import (
    TwoStageEngine,
    TwoStageSearchResult,
    pruned_top_n,
    restricted_base_set,
    two_stage_rank,
)

QUERY = QueryVector({"improved": 1.0, "study": 1.0})
EVERYTHING = 1_000_000  # candidate budget that always covers S(Q)


@pytest.fixture(scope="module")
def tiny_engine(dblp_tiny):
    return SearchEngine(dblp_tiny.data_graph, dblp_tiny.transfer_schema)


class TestRestrictedBaseSet:
    def test_full_coverage_equals_weighted_base_set(self, tiny_engine):
        """Candidates ⊇ S(Q) ⇒ the restricted base set IS Equation 2's."""
        candidates = pruned_top_n(tiny_engine.scorer, QUERY, EVERYTHING)
        restricted = restricted_base_set(tiny_engine.scorer, QUERY, candidates)
        full = weighted_base_set(tiny_engine.scorer, QUERY)
        assert restricted == full  # same keys, same order, same floats

    def test_partial_coverage_normalizes_over_candidates_only(self, tiny_engine):
        candidates = pruned_top_n(tiny_engine.scorer, QUERY, 5)
        base = restricted_base_set(tiny_engine.scorer, QUERY, candidates)
        assert set(base) == set(candidates.doc_ids)
        assert sum(base.values()) == pytest.approx(1.0)
        assert all(weight > 0 for weight in base.values())


class TestTwoStageRank:
    def test_degenerate_config_matches_focused_objectrank2(self, tiny_engine):
        graph = tiny_engine.transfer_view(None)
        mine = two_stage_rank(
            graph, tiny_engine.scorer, QUERY,
            candidates=EVERYTHING, fusion="weighted", fusion_weight=1.0, horizon=2,
        )
        focused = focused_objectrank2(
            graph, tiny_engine.scorer, QUERY, horizon=2
        )
        assert np.array_equal(mine.ranked.scores, focused.ranked.scores)
        assert mine.ranked.iterations == focused.ranked.iterations
        assert mine.subgraph_nodes == focused.subgraph_nodes
        assert mine.subgraph_edges == focused.subgraph_edges

    def test_mixed_fusion_scores_live_on_candidates_only(self, tiny_engine):
        graph = tiny_engine.transfer_view(None)
        result = two_stage_rank(
            graph, tiny_engine.scorer, QUERY,
            candidates=10, fusion="rrf", horizon=2,
        )
        candidate_indices = {
            graph.index_of(doc_id) for doc_id in result.candidate_set.doc_ids
        }
        positive = set(np.flatnonzero(result.ranked.scores > 0).tolist())
        assert positive <= candidate_indices

    def test_authority_only_scores_cover_the_neighborhood(self, tiny_engine):
        graph = tiny_engine.transfer_view(None)
        result = two_stage_rank(
            graph, tiny_engine.scorer, QUERY, candidates=10, horizon=2
        )
        positive = np.flatnonzero(result.ranked.scores > 0)
        assert len(positive) > len(result.candidate_set)
        assert set(positive.tolist()) <= set(result.neighborhood.tolist())

    def test_horizon_zero_reranks_candidates_in_isolation(self, tiny_engine):
        graph = tiny_engine.transfer_view(None)
        result = two_stage_rank(
            graph, tiny_engine.scorer, QUERY, candidates=10, horizon=0
        )
        assert result.subgraph_nodes == len(result.candidate_set)

    def test_early_k_converges_to_a_stable_page(self, tiny_engine):
        graph = tiny_engine.transfer_view(None)
        exact = two_stage_rank(
            graph, tiny_engine.scorer, QUERY, candidates=20, horizon=2
        )
        early = two_stage_rank(
            graph, tiny_engine.scorer, QUERY, candidates=20, horizon=2, early_k=5
        )
        assert early.ranked.iterations <= exact.ranked.iterations
        top = lambda r: [n for n, _ in r.ranked.top_k(5)]  # noqa: E731
        assert top(early) == top(exact)

    def test_validation(self, tiny_engine):
        graph = tiny_engine.transfer_view(None)
        with pytest.raises(ValueError, match="fusion"):
            two_stage_rank(graph, tiny_engine.scorer, QUERY, fusion="bogus")
        with pytest.raises(ValueError, match="horizon"):
            two_stage_rank(graph, tiny_engine.scorer, QUERY, horizon=-1)


class TestTwoStageEngine:
    def test_search_returns_stage_accounting(self, tiny_engine):
        engine = TwoStageEngine(tiny_engine, candidates=15)
        result = engine.search(QUERY, top_k=5)
        assert isinstance(result, TwoStageSearchResult)
        assert len(result.top) == 5
        assert result.stages is not None
        assert result.stages.num_candidates == 15
        assert result.stages.stage1_seconds >= 0.0
        assert result.stages.stage2_seconds >= 0.0

    def test_label_filter(self, tiny_engine):
        engine = TwoStageEngine(tiny_engine, candidates=15)
        result = engine.search(QUERY, top_k=5, labels=("Author",))
        data_graph = tiny_engine.data_graph
        assert result.top
        assert all(
            data_graph.node(node_id).label == "Author" for node_id, _ in result.top
        )

    def test_per_call_overrides_beat_engine_defaults(self, tiny_engine):
        engine = TwoStageEngine(tiny_engine, candidates=15, fusion="weighted")
        result = engine.search(QUERY, top_k=3, candidates=5, fusion="rrf")
        assert result.stages.num_candidates == 5
        assert result.stages.fusion == "rrf"

    def test_string_queries_accepted(self, tiny_engine):
        engine = TwoStageEngine(tiny_engine, candidates=10)
        assert engine.search("improved study", top_k=3).top

    def test_expand_cap_shrinks_the_neighborhood(self, tiny_engine):
        engine = TwoStageEngine(tiny_engine, candidates=10, horizon=2)
        uncapped = engine.search(QUERY, top_k=3)
        capped = engine.search(QUERY, top_k=3, expand_cap=1)
        assert capped.stages.subgraph_nodes <= uncapped.stages.subgraph_nodes

    def test_node_budget_deepens_small_neighborhoods(self, tiny_engine):
        engine = TwoStageEngine(tiny_engine, candidates=2, horizon=0)
        fixed = engine.search(QUERY, top_k=3)
        # Horizon 0 keeps only the candidates; an unreached budget deepens
        # the expansion up to max_horizon instead.
        adaptive = engine.search(
            QUERY, top_k=3, node_budget=1_000_000, max_horizon=2
        )
        assert fixed.stages.subgraph_nodes == 2
        assert adaptive.stages.subgraph_nodes > fixed.stages.subgraph_nodes
        # A budget the candidates already satisfy never deepens.
        satisfied = engine.search(QUERY, top_k=3, node_budget=1, max_horizon=2)
        assert satisfied.stages.subgraph_nodes == fixed.stages.subgraph_nodes
