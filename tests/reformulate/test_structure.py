"""Unit tests for structure-based reformulation (Section 5.2, Equation 13).

Includes the Example 2 regression: our normalization pipeline reproduces the
paper's reformulated rate vector [0.67, 0.0, 0.24, 0.16, 0.24, 0.24, 0.24,
0.08] from the stated inputs.
"""

import pytest

from repro.datasets import dblp_edge_order, dblp_transfer_schema
from repro.explain import adjust_flows, build_explaining_subgraph
from repro.graph.authority import Direction, EdgeType
from repro.reformulate import StructureReformulator


@pytest.fixture
def explanation(figure1_graph, olap_result):
    base = list(olap_result.base_weights)
    subgraph = build_explaining_subgraph(figure1_graph, base, "v4", radius=None)
    return adjust_flows(subgraph, olap_result.scores, 0.85, tolerance=1e-10)


class TestFlowFactors:
    def test_factors_sum_across_objects(self, explanation):
        reformulator = StructureReformulator(0.5)
        single = reformulator.flow_factors([explanation])
        double = reformulator.flow_factors([explanation, explanation])
        for edge_type, factor in single.items():
            assert double[edge_type] == pytest.approx(2 * factor)

    def test_factors_match_explanation_totals(self, explanation):
        reformulator = StructureReformulator(0.5)
        assert reformulator.flow_factors([explanation]) == explanation.flow_by_edge_type()


class TestReformulation:
    def test_flow_carrying_types_gain_relative_to_others(self, explanation, figure1):
        """In the v4 explanation the by/AP edges carry flow while CY carries
        none, so by's rate must grow relative to CY's."""
        reformulator = StructureReformulator(0.5)
        before = figure1.transfer_schema
        after = reformulator.reformulate(before, [explanation])
        order = dblp_edge_order(before.schema)
        b = dict(zip(order, before.as_vector(order)))
        a = dict(zip(order, after.as_vector(order)))
        pa = order[2]  # Paper->Author forward
        cy = order[4]  # Conference->Year forward
        assert a[pa] / b[pa] > a[cy] / b[cy]

    def test_result_is_convergent(self, explanation, figure1):
        reformulator = StructureReformulator(0.9)
        after = reformulator.reformulate(figure1.transfer_schema, [explanation])
        assert after.is_convergent()

    def test_zero_factor_changes_nothing(self, explanation, figure1):
        reformulator = StructureReformulator(0.0)
        after = reformulator.reformulate(figure1.transfer_schema, [explanation])
        # Cf=0 boosts nothing; normalization then only rescales uniformly,
        # which preserves relative rates.
        order = dblp_edge_order(figure1.schema)
        before_vec = figure1.transfer_schema.as_vector(order)
        after_vec = after.as_vector(order)
        ratios = {
            round(a / b, 9) for a, b in zip(after_vec, before_vec) if b > 0
        }
        assert len(ratios) == 1

    def test_no_explanations_returns_copy(self, figure1):
        reformulator = StructureReformulator(0.5)
        after = reformulator.reformulate(figure1.transfer_schema, [])
        assert after == figure1.transfer_schema
        assert after is not figure1.transfer_schema

    def test_original_schema_untouched(self, explanation, figure1):
        order = dblp_edge_order(figure1.schema)
        before_vec = list(figure1.transfer_schema.as_vector(order))
        StructureReformulator(0.5).reformulate(figure1.transfer_schema, [explanation])
        assert figure1.transfer_schema.as_vector(order) == before_vec

    def test_adjustment_factor_bounds(self):
        with pytest.raises(ValueError):
            StructureReformulator(-0.1)
        with pytest.raises(ValueError):
            StructureReformulator(1.1)


class TestExample2Regression:
    def test_paper_normalization_numbers(self, figure1):
        """Feed the normalization pipeline the F values implied by Example 2
        (F_norm(PA) = 1, F_norm(PP) ~ 0.39) and check the paper's output
        vector [0.67, 0.0, 0.24, 0.16, 0.24, 0.24, 0.24, 0.08]."""
        schema = figure1.schema
        order = dblp_edge_order(schema)
        before = dblp_transfer_schema()  # [0.7, 0, .2, .2, .3, .3, .3, .1]
        pp = order[0]
        pa = order[2]

        class _FakeExplanation:
            def flow_by_edge_type(self):
                return {pa: 1.0, pp: 0.392}

        after = StructureReformulator(0.5).reformulate(before, [_FakeExplanation()])
        result = after.as_vector(order)
        expected = [0.67, 0.0, 0.24, 0.16, 0.24, 0.24, 0.24, 0.08]
        assert result == pytest.approx(expected, abs=0.01)

    def test_pa_up_ap_down(self, figure1):
        """The paper notes PA increases and AP decreases after Example 2."""
        order = dblp_edge_order(figure1.schema)
        before = dblp_transfer_schema()
        pp, pa = order[0], order[2]

        class _FakeExplanation:
            def flow_by_edge_type(self):
                return {pa: 1.0, pp: 0.392}

        after = StructureReformulator(0.5).reformulate(before, [_FakeExplanation()])
        vec = after.as_vector(order)
        assert vec[2] > 0.2  # PA up
        assert vec[3] < 0.2  # AP down
