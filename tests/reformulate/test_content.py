"""Unit tests for content-based reformulation (Section 5.1, Eq. 11-12)."""

import pytest

from repro.explain import adjust_flows, build_explaining_subgraph
from repro.query import QueryVector
from repro.reformulate import ContentReformulator


@pytest.fixture
def explanation(figure1_graph, olap_result):
    base = list(olap_result.base_weights)
    subgraph = build_explaining_subgraph(figure1_graph, base, "v4", radius=None)
    return adjust_flows(subgraph, olap_result.scores, 0.85, tolerance=1e-10)


@pytest.fixture
def reformulator():
    return ContentReformulator(decay=0.5, expansion_factor=0.5, num_terms=5)


class TestTermWeights:
    def test_feedback_object_terms_dominate(self, reformulator, explanation):
        """Example 2's intuition: terms of the feedback object and of the
        nodes feeding it authority directly (here the shared author
        'agrawal', which appears in both v4 and v6) dominate terms of
        distant nodes."""
        weights = reformulator.term_weights(explanation)
        near_terms = {"olap", "cubes", "range", "queries", "data", "agrawal"}
        strongest = max(weights, key=weights.get)
        assert strongest in near_terms
        # Every target-object topic term outweighs every distance-4 term.
        assert weights["cubes"] > weights["selection"]
        assert weights["range"] > weights["index"]

    def test_distant_terms_decayed(self, reformulator, explanation):
        """'multidimensional' (v5, distance 2) outweighs nothing from the
        target, and 'index'/'selection' (v1, distance 4) weigh even less."""
        weights = reformulator.term_weights(explanation)
        assert weights["multidimensional"] > weights["selection"]

    def test_stopwords_excluded(self, reformulator, explanation):
        weights = reformulator.term_weights(explanation)
        assert "in" not in weights
        assert "for" not in weights

    def test_decay_one_removes_distance_effect(self, explanation, figure1_graph):
        flat = ContentReformulator(decay=1.0, expansion_factor=0.5)
        weights = flat.term_weights(explanation)
        # v5's outgoing flow contributes at full weight now.
        v5_outflow = explanation.outgoing_flow(figure1_graph.index_of("v5"))
        assert weights["multidimensional"] == pytest.approx(v5_outflow)

    def test_aggregation_sums_across_objects(self, reformulator, explanation):
        single = reformulator.term_weights(explanation)
        double = reformulator.aggregate_term_weights([explanation, explanation])
        for term, weight in single.items():
            assert double[term] == pytest.approx(2 * weight)


class TestExpansion:
    def test_top_z_terms_selected(self, reformulator, explanation):
        terms = reformulator.expansion_terms(QueryVector({"olap": 1.0}), [explanation])
        assert len(terms) <= 5

    def test_normalization_max_equals_average_query_weight(
        self, reformulator, explanation
    ):
        """Section 5.1: the strongest expansion term is scaled to a_q."""
        vector = QueryVector({"olap": 2.0, "cube": 4.0})  # a_q = 3
        terms = reformulator.expansion_terms(vector, [explanation])
        assert max(w for _, w in terms) == pytest.approx(3.0)

    def test_reformulate_applies_expansion_factor(self, reformulator, explanation):
        vector = QueryVector({"olap": 1.0})
        new_vector = reformulator.reformulate(vector, [explanation])
        terms = reformulator.expansion_terms(vector, [explanation])
        expected = dict(vector.weights)
        for term, weight in terms:
            expected[term] = expected.get(term, 0.0) + 0.5 * weight
        assert new_vector.weights == pytest.approx(expected)

    def test_original_terms_kept(self, reformulator, explanation):
        new_vector = reformulator.reformulate(QueryVector({"olap": 1.0}), [explanation])
        assert new_vector.weight("olap") >= 1.0

    def test_no_explanations_returns_copy(self, reformulator):
        vector = QueryVector({"olap": 1.0})
        result = reformulator.reformulate(vector, [])
        assert result == vector
        assert result is not vector

    def test_empty_explanation_no_expansion(
        self, reformulator, figure1_graph, olap_result
    ):
        subgraph = build_explaining_subgraph(figure1_graph, ["v7"], "v2", radius=1)
        empty = adjust_flows(subgraph, olap_result.scores, 0.85)
        result = reformulator.reformulate(QueryVector({"olap": 1.0}), [empty])
        assert result.weights == {"olap": 1.0}


class TestValidation:
    def test_decay_bounds(self):
        with pytest.raises(ValueError):
            ContentReformulator(decay=0.0)
        with pytest.raises(ValueError):
            ContentReformulator(decay=1.5)

    def test_expansion_factor_bounds(self):
        with pytest.raises(ValueError):
            ContentReformulator(expansion_factor=-0.1)
        with pytest.raises(ValueError):
            ContentReformulator(expansion_factor=1.1)
