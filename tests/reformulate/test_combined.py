"""Unit tests for the combined reformulator (Sections 5.1-5.3)."""

import pytest

from repro.explain import adjust_flows, build_explaining_subgraph
from repro.query import QueryVector
from repro.reformulate import Reformulator


@pytest.fixture
def explanation(figure1_graph, olap_result):
    base = list(olap_result.base_weights)
    subgraph = build_explaining_subgraph(figure1_graph, base, "v4", radius=None)
    return adjust_flows(subgraph, olap_result.scores, 0.85, tolerance=1e-10)


@pytest.fixture
def vector():
    return QueryVector({"olap": 1.0})


class TestSettings:
    def test_with_factors(self):
        reformulator = Reformulator.with_factors(0.2, 0.5, decay=0.4, num_terms=7)
        assert reformulator.content.expansion_factor == 0.2
        assert reformulator.structure.adjustment_factor == 0.5
        assert reformulator.content.decay == 0.4
        assert reformulator.content.num_terms == 7

    def test_uses_flags(self):
        assert Reformulator.with_factors(0.2, 0.0).uses_content
        assert not Reformulator.with_factors(0.2, 0.0).uses_structure
        assert Reformulator.with_factors(0.0, 0.5).uses_structure
        assert not Reformulator.with_factors(0.0, 0.5).uses_content


class TestModes:
    def test_content_only_keeps_rates(self, explanation, vector, figure1):
        outcome = Reformulator.with_factors(0.2, 0.0).reformulate(
            vector, figure1.transfer_schema, [explanation]
        )
        assert outcome.transfer_schema == figure1.transfer_schema
        assert len(outcome.query_vector) > 1

    def test_structure_only_keeps_vector(self, explanation, vector, figure1):
        outcome = Reformulator.with_factors(0.0, 0.5).reformulate(
            vector, figure1.transfer_schema, [explanation]
        )
        assert outcome.query_vector == vector
        assert outcome.transfer_schema != figure1.transfer_schema

    def test_combined_changes_both(self, explanation, vector, figure1):
        outcome = Reformulator.with_factors(0.2, 0.5).reformulate(
            vector, figure1.transfer_schema, [explanation]
        )
        assert outcome.query_vector != vector
        assert outcome.transfer_schema != figure1.transfer_schema

    def test_no_feedback_is_identity(self, vector, figure1):
        outcome = Reformulator.with_factors(0.2, 0.5).reformulate(
            vector, figure1.transfer_schema, []
        )
        assert outcome.query_vector == vector
        assert outcome.transfer_schema == figure1.transfer_schema


class TestMultipleFeedbackObjects:
    def test_two_objects_aggregate(self, figure1_graph, olap_result, vector, figure1):
        base = list(olap_result.base_weights)
        explanations = []
        for target in ("v4", "v7"):
            subgraph = build_explaining_subgraph(figure1_graph, base, target, radius=None)
            explanations.append(
                adjust_flows(subgraph, olap_result.scores, 0.85, tolerance=1e-10)
            )
        outcome = Reformulator.with_factors(0.5, 0.5).reformulate(
            vector, figure1.transfer_schema, explanations
        )
        # v7's explanation brings cites-flow: PP must now be boosted.
        order = figure1.transfer_schema.edge_types()
        assert outcome.transfer_schema.is_convergent()
        assert len(outcome.query_vector) > 1
