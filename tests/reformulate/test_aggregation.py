"""Unit tests for multi-object aggregation functions (Section 5.3)."""

import pytest

from repro.reformulate import AGGREGATORS, aggregate_maps
from repro.reformulate.content import ContentReformulator
from repro.reformulate.structure import StructureReformulator


class TestAggregateMaps:
    def test_sum(self):
        result = aggregate_maps([{"a": 1.0, "b": 2.0}, {"a": 3.0}], "sum")
        assert result == {"a": 4.0, "b": 2.0}

    def test_min_ignores_absent_keys(self):
        result = aggregate_maps([{"a": 1.0}, {"a": 2.0, "b": 3.0}], "min")
        assert result == {"a": 1.0, "b": 3.0}

    def test_max(self):
        result = aggregate_maps([{"a": 1.0}, {"a": 5.0}], "max")
        assert result == {"a": 5.0}

    def test_avg(self):
        result = aggregate_maps([{"a": 1.0}, {"a": 3.0}], "avg")
        assert result == {"a": 2.0}

    def test_empty_input(self):
        assert aggregate_maps([], "sum") == {}

    def test_unknown_aggregator(self):
        with pytest.raises(ValueError):
            aggregate_maps([{"a": 1.0}], "median")

    def test_all_aggregators_registered(self):
        assert set(AGGREGATORS) == {"sum", "min", "max", "avg"}

    def test_single_map_identity_for_all(self):
        mapping = {"a": 1.5, "b": 0.5}
        for how in AGGREGATORS:
            assert aggregate_maps([mapping], how) == mapping


class TestReformulatorValidation:
    def test_content_rejects_unknown_aggregation(self):
        with pytest.raises(ValueError):
            ContentReformulator(aggregation="median")

    def test_structure_rejects_unknown_aggregation(self):
        with pytest.raises(ValueError):
            StructureReformulator(aggregation="median")
