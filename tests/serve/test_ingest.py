"""Serve-tier ingest tests: /ingest wiring, staleness bounds, cache epochs.

The staleness-bug sweep lives here too: every response-facing cache must be
cohorted by the ingest epoch, so a query or explanation computed before a
mutation batch can never be served after the refresh that absorbed it.
"""

from __future__ import annotations

import time

import pytest

from repro.errors import ReproError
from repro.ranking.precompute import PrecomputedRanker
from repro.serve import QueryService, ServeConfig
from repro.store import build_and_publish, read_manifest


def _service(figure1, **overrides):
    config = ServeConfig(
        datasets=("fig1",),
        precompute_min_document_frequency=1,
        ingest=True,
        **overrides,
    )
    return QueryService(config, datasets={"fig1": figure1})


ADD_PAPER = [
    {
        "op": "add_node",
        "node_id": "p_new",
        "label": "Paper",
        "attributes": {"title": "OLAP cube maintenance revisited"},
    },
    {"op": "add_edge", "source": "v7", "target": "p_new", "role": "cites"},
]


class TestDisabled:
    def test_ingest_off_by_default(self, figure1):
        service = QueryService(
            ServeConfig(datasets=("fig1",), precompute_min_document_frequency=1),
            datasets={"fig1": figure1},
        )
        with pytest.raises(ReproError, match="ingest is disabled"):
            service.ingest("fig1", ADD_PAPER)

    def test_responses_carry_no_staleness_without_ingest(self, figure1):
        service = QueryService(
            ServeConfig(datasets=("fig1",), precompute_min_document_frequency=1),
            datasets={"fig1": figure1},
        )
        assert "staleness" not in service.search("fig1", "OLAP")


class TestStalenessBound:
    def test_responses_report_pending_mutations(self, figure1):
        service = _service(figure1, ingest_staleness_bound=10)
        before = service.search("fig1", "OLAP")
        assert before["staleness"]["pending_mutations"] == 0
        service.ingest("fig1", ADD_PAPER, refresh="none")
        after = service.search("fig1", "OLAP")
        assert after["staleness"]["pending_mutations"] == 2
        assert after["staleness"]["topology_dirty"]

    def test_bound_zero_refreshes_before_serving(self, figure1):
        service = _service(figure1)  # bound 0: never serve stale
        service.ingest("fig1", ADD_PAPER, refresh="none")
        response = service.search("fig1", "OLAP", top_k=8)
        assert response["staleness"]["pending_mutations"] == 0
        assert "p_new" in [r["id"] for r in response["results"]]

    def test_bound_allows_bounded_staleness(self, figure1):
        service = _service(figure1, ingest_staleness_bound=2)
        service.ingest("fig1", ADD_PAPER, refresh="none")
        within = service.search("fig1", "OLAP", top_k=8)
        assert within["staleness"]["pending_mutations"] == 2
        assert "p_new" not in [r["id"] for r in within["results"]]
        service.ingest(
            "fig1",
            [{"op": "update_node", "node_id": "p_new",
              "attributes": {"title": "OLAP cube upkeep"}}],
            refresh="none",
        )
        beyond = service.search("fig1", "OLAP", top_k=8)
        assert beyond["staleness"]["pending_mutations"] == 0
        assert "p_new" in [r["id"] for r in beyond["results"]]

    def test_auto_refresh_policy_respects_bound(self, figure1):
        service = _service(figure1, ingest_staleness_bound=5)
        out = service.ingest("fig1", ADD_PAPER, refresh="auto")
        assert out["refresh"] is None
        assert out["staleness"]["pending_mutations"] == 2

    def test_force_refresh_policy_ignores_bound(self, figure1):
        service = _service(figure1, ingest_staleness_bound=5)
        out = service.ingest("fig1", ADD_PAPER, refresh="force")
        assert out["refresh"] is not None
        assert out["staleness"]["pending_mutations"] == 0
        assert out["epoch"] == 1

    def test_unknown_refresh_policy_rejected(self, figure1):
        service = _service(figure1)
        with pytest.raises(ReproError, match="refresh"):
            service.ingest("fig1", ADD_PAPER, refresh="later")


class TestCacheEpochs:
    def test_result_cache_never_serves_pre_mutation_ranking(self, figure1):
        service = _service(figure1)
        first = service.search("fig1", "OLAP", top_k=8)
        cached = service.search("fig1", "OLAP", top_k=8)
        assert cached["served_from"] == "cache"
        service.ingest("fig1", ADD_PAPER, refresh="force")
        fresh = service.search("fig1", "OLAP", top_k=8)
        assert fresh["served_from"] != "cache"
        assert "p_new" in [r["id"] for r in fresh["results"]]
        assert "p_new" not in [r["id"] for r in first["results"]]

    def test_explain_never_serves_pre_mutation_topology(self, figure1):
        service = _service(figure1)
        service.ingest("fig1", ADD_PAPER, refresh="force")
        explained = service.explain("fig1", "OLAP", target="p_new")
        assert [
            e for e in explained["edges"] if e["target"] == "p_new"
        ], "v7 cites p_new: the explanation must show that inflow"
        # Remove the edge; the cached explanation belongs to the old epoch
        # and must not come back.
        service.ingest(
            "fig1",
            [{"op": "remove_edge", "source": "v7", "target": "p_new"}],
            refresh="force",
        )
        explained = service.explain("fig1", "OLAP", target="p_new")
        assert not [e for e in explained["edges"] if e["target"] == "p_new"]

    def test_refresh_invalidates_both_caches(self, figure1):
        service = _service(figure1, ingest_staleness_bound=10)
        service.search("fig1", "OLAP")
        service.explain("fig1", "OLAP", target="v7")
        service.ingest("fig1", ADD_PAPER, refresh="force")
        snapshot = service.metrics.snapshot()
        assert snapshot["repro_cache_invalidations_total"] >= 2


class TestMutationErrors:
    def test_bad_mutations_reported_not_fatal(self, figure1):
        service = _service(figure1, ingest_staleness_bound=10)
        out = service.ingest(
            "fig1",
            [
                {"op": "add_edge", "source": "nope", "target": "v7"},
                {"op": "warp_graph"},
                ADD_PAPER[0],
            ],
            refresh="none",
        )
        assert out["applied"] == 1
        positions = [error["position"] for error in out["errors"]]
        assert positions == [0, 1]
        assert out["errors"][1]["op"] == "warp_graph"
        assert out["staleness"]["pending_mutations"] == 1

    def test_failed_mutations_do_not_advance_graph_version(self, figure1):
        service = _service(figure1, ingest_staleness_bound=10)
        before = service.ingest("fig1", [ADD_PAPER[0]], refresh="none")
        after = service.ingest(
            "fig1",
            [{"op": "add_edge", "source": "nope", "target": "v7"}],
            refresh="none",
        )
        assert after["graph_version"] == before["graph_version"]


class TestMetrics:
    def test_ingest_counters(self, figure1):
        service = _service(figure1, ingest_staleness_bound=10)
        service.ingest("fig1", ADD_PAPER, refresh="force")
        snapshot = service.metrics.snapshot()
        assert snapshot["repro_ingest_mutations_total"] == 2
        assert snapshot["repro_ingest_refreshes_total"] == 1
        assert snapshot["repro_ingest_columns_recomputed_total"] > 0


class TestStoreIntegration:
    def test_refresh_publishes_next_generation(self, figure1, tmp_path):
        store_root = tmp_path / "stores"
        service = _service(
            figure1,
            store_dir=str(store_root),
            store_refresh_seconds=0.0,
        )
        service.preload()
        runtime = service.runtime("fig1")
        seed = PrecomputedRanker(
            runtime.engine.graph, runtime.engine.index, min_document_frequency=1
        )
        build_and_publish(store_root / "fig1", seed, "fig1")
        first = service.search("fig1", "OLAP")
        assert first["served_from"] == "store"
        assert first["store_generation"] == 1

        out = service.ingest("fig1", ADD_PAPER, refresh="force")
        assert out["refresh"] is not None
        manifest = read_manifest(store_root / "fig1")
        assert manifest.generation == 2

        fresh = service.search("fig1", "OLAP", top_k=8)
        assert fresh["served_from"] == "store"
        assert fresh["store_generation"] == 2
        assert "p_new" in [r["id"] for r in fresh["results"]]

    def test_published_generation_reaches_a_concurrent_reader(
        self, figure1, tmp_path
    ):
        """Generation-swap under a concurrent reader: a second service
        process-alike (own StoreManager over the same directory) picks up
        the ingest-published generation between requests."""
        store_root = tmp_path / "stores"
        builder = _service(
            figure1, store_dir=str(store_root), store_refresh_seconds=0.0
        )
        builder.preload()
        runtime = builder.runtime("fig1")
        seed = PrecomputedRanker(
            runtime.engine.graph, runtime.engine.index, min_document_frequency=1
        )
        build_and_publish(store_root / "fig1", seed, "fig1")

        reader = QueryService(
            ServeConfig(
                datasets=("fig1",),
                precompute_min_document_frequency=1,
                store_dir=str(store_root),
                store_refresh_seconds=0.0,
            ),
            datasets={"fig1": figure1},
        )
        assert reader.search("fig1", "OLAP")["store_generation"] == 1

        builder.ingest("fig1", ADD_PAPER, refresh="force")
        fresh = reader.search("fig1", "OLAP", top_k=8)
        assert fresh["store_generation"] == 2
        # The reader's local graph predates the mutation; the store row for
        # p_new must still be served (degrading to an id-only entry).
        entry = [r for r in fresh["results"] if r["id"] == "p_new"]
        assert entry and entry[0]["score"] > 0
