"""Serve-tier tests for two-stage retrieval: routing, caching, metrics, HTTP.

Boots the :class:`QueryService` over ``dblp_tiny`` and exercises
``mode="two_stage"`` end to end: the payload accounting block, cache
cohorting by candidate/fusion parameters, the override-rejection contract,
the new metric families on ``/metrics``, and the restricted two-stage
explanations.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.errors import ReproError
from repro.serve import QueryService, ServeConfig, create_server

QUERY = "improved study"


@pytest.fixture(scope="module")
def service(dblp_tiny):
    return QueryService(
        ServeConfig(datasets=("tiny",), precompute=False, candidates=25),
        datasets={"tiny": dblp_tiny},
    )


class TestServiceTwoStage:
    def test_two_stage_search_payload(self, service):
        payload = service.search("tiny", QUERY, top_k=5, mode="two_stage")
        assert payload["served_from"] == "two_stage"
        assert len(payload["results"]) == 5
        stages = payload["two_stage"]
        assert stages["requested_candidates"] == 25
        assert stages["candidates"] == 25
        assert stages["fusion"] == "weighted"
        assert stages["subgraph_nodes"] >= stages["candidates"]
        assert stages["stage1_seconds"] >= 0.0
        assert stages["stage2_seconds"] >= 0.0

    def test_repeat_request_is_a_cache_hit(self, service):
        first = service.search("tiny", QUERY, top_k=4, mode="two_stage")
        second = service.search("tiny", QUERY, top_k=4, mode="two_stage")
        assert second["served_from"] == "cache"
        assert second["results"] == first["results"]

    def test_parameter_overrides_start_fresh_cache_cohorts(self, service):
        base = service.search("tiny", QUERY, top_k=3, mode="two_stage")
        smaller = service.search(
            "tiny", QUERY, top_k=3, mode="two_stage", candidates=5
        )
        refused = service.search(
            "tiny", QUERY, top_k=3, mode="two_stage", fusion="rrf"
        )
        # Different candidate budget / fusion mode: never the cached answer.
        assert smaller["served_from"] == "two_stage"
        assert smaller["two_stage"]["candidates"] == 5
        assert refused["served_from"] == "two_stage"
        assert refused["two_stage"]["fusion"] == "rrf"
        assert base["served_from"] in ("two_stage", "cache")

    def test_degenerate_two_stage_matches_live_ranking(self, service):
        """Candidates ⊇ corpus: same page as live, scores focused-close.

        Bit-identity is against *focused* ObjectRank2 (covered in
        tests/retrieval); live full ObjectRank2 differs only by flow from
        outside the horizon, so the page agrees and scores are close.
        """
        live = service.search("tiny", QUERY, top_k=10, mode="live")
        degenerate = service.search(
            "tiny", QUERY, top_k=10, mode="two_stage", candidates=10_000
        )
        assert [r["id"] for r in degenerate["results"]] == [
            r["id"] for r in live["results"]
        ]
        for mine, theirs in zip(degenerate["results"], live["results"]):
            assert mine["score"] == pytest.approx(theirs["score"], rel=1e-3)

    def test_neighborhood_overrides_echoed_and_separately_cached(self, service):
        capped = service.search(
            "tiny", QUERY, top_k=6, mode="two_stage",
            expand_cap=4, node_budget=64, max_horizon=4,
        )
        assert capped["served_from"] == "two_stage"
        assert capped["two_stage"]["expand_cap"] == 4
        assert capped["two_stage"]["node_budget"] == 64
        assert capped["two_stage"]["max_horizon"] == 4
        # A different expansion policy is a different cache cohort.
        uncapped = service.search("tiny", QUERY, top_k=6, mode="two_stage")
        assert uncapped["two_stage"]["expand_cap"] is None
        assert (
            uncapped["two_stage"]["subgraph_nodes"]
            >= capped["two_stage"]["subgraph_nodes"]
        )

    def test_overrides_outside_two_stage_rejected(self, service):
        with pytest.raises(ReproError, match="two_stage"):
            service.search("tiny", QUERY, mode="live", candidates=10)
        with pytest.raises(ReproError, match="two_stage"):
            service.search("tiny", QUERY, mode="auto", fusion="rrf")
        with pytest.raises(ReproError, match="two_stage"):
            service.search("tiny", QUERY, mode="live", expand_cap=8)
        with pytest.raises(ReproError, match="two_stage"):
            service.search("tiny", QUERY, mode="auto", node_budget=64)

    @pytest.mark.parametrize(
        "overrides, message",
        [
            ({"fusion": "bogus"}, "unknown fusion mode"),
            ({"fusion_weight": 1.5}, "fusion_weight"),
            ({"candidates": 0}, "candidates"),
            ({"horizon": -1}, "horizon"),
            ({"expand_cap": 0}, "expand_cap"),
            ({"node_budget": -2}, "node_budget"),
            ({"max_horizon": 0}, "max_horizon"),
        ],
    )
    def test_bad_parameters_rejected(self, service, overrides, message):
        with pytest.raises(ReproError, match=message):
            service.search("tiny", QUERY, mode="two_stage", **overrides)

    def test_no_match_yields_empty_results(self, service):
        payload = service.search("tiny", "zzzmissing", mode="two_stage")
        assert payload["served_from"] == "two_stage"
        assert payload["results"] == []


class TestServiceTwoStageExplain:
    def test_two_stage_explanation_is_restricted(self, service):
        search = service.search("tiny", QUERY, top_k=1, mode="two_stage")
        target = search["results"][0]["id"]
        live = service.explain("tiny", QUERY, target, mode="live")
        restricted = service.explain("tiny", QUERY, target, mode="two_stage")
        assert restricted["mode"] == "two_stage"
        assert restricted["target"] == target
        assert restricted["edges"]
        # Restricted to the rerank neighborhood: never larger than live.
        assert restricted["subgraph_nodes"] <= live["subgraph_nodes"]

    def test_live_and_two_stage_are_separate_cache_cohorts(self, service):
        search = service.search("tiny", QUERY, top_k=1, mode="two_stage")
        target = search["results"][0]["id"]
        service.explain("tiny", QUERY, target, mode="live")
        first = service.explain("tiny", QUERY, target, mode="two_stage")
        again = service.explain("tiny", QUERY, target, mode="two_stage")
        assert first["served_from"] in ("live", "cache")
        assert again["served_from"] == "cache"

    def test_unknown_mode_rejected(self, service):
        with pytest.raises(ReproError, match="unknown mode"):
            service.explain("tiny", QUERY, "x", mode="precomputed")


def _request(url: str, body: dict | None = None) -> tuple[int, dict]:
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"} if body else {}
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


@pytest.fixture(scope="module")
def url(dblp_tiny):
    service = QueryService(
        ServeConfig(datasets=("tiny",), precompute=False, candidates=20),
        datasets={"tiny": dblp_tiny},
    )
    server = create_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server.url
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def _metrics_text(url: str) -> str:
    with urllib.request.urlopen(f"{url}/metrics", timeout=30) as response:
        return response.read().decode()


def _metric(text: str, name: str) -> float:
    for line in text.splitlines():
        if line.startswith(f"{name} "):
            return float(line.split()[1])
    return 0.0


class TestHTTPTwoStage:
    def test_get_search_with_two_stage_params(self, url):
        status, payload = _request(
            f"{url}/search?dataset=tiny&q=improved+study&top_k=5"
            "&mode=two_stage&candidates=10&fusion=rrf&horizon=1"
        )
        assert status == 200
        assert payload["served_from"] == "two_stage"
        assert payload["two_stage"]["candidates"] == 10
        assert payload["two_stage"]["fusion"] == "rrf"
        assert payload["two_stage"]["horizon"] == 1

    def test_post_search_with_fusion_weight(self, url):
        status, payload = _request(
            f"{url}/search",
            {
                "dataset": "tiny",
                "query": QUERY,
                "mode": "two_stage",
                "fusion": "weighted",
                "fusion_weight": 0.5,
                "early_k": 5,
            },
        )
        assert status == 200
        assert payload["two_stage"]["fusion_weight"] == 0.5

    def test_metrics_families_present_and_counted(self, url):
        before = _metric(_metrics_text(url), "repro_served_two_stage_total")
        status, _ = _request(
            f"{url}/search?dataset=tiny&q=improved&mode=two_stage&candidates=7"
        )
        assert status == 200
        text = _metrics_text(url)
        assert _metric(text, "repro_served_two_stage_total") == before + 1
        assert _metric(text, "repro_two_stage_fusion_weighted_total") >= 1
        assert _metric(text, "repro_two_stage_candidates_count") >= 1
        assert _metric(text, "repro_two_stage_candidates_sum") >= 7
        assert "repro_two_stage_stage1_seconds" in text
        assert "repro_two_stage_stage2_seconds" in text
        assert "repro_two_stage_fusion_rrf_total" in text

    def test_bad_fusion_is_400(self, url):
        status, payload = _request(
            f"{url}/search?dataset=tiny&q=improved&mode=two_stage&fusion=bogus"
        )
        assert (status, payload["error"]) == (400, "repro_error")

    def test_overrides_without_two_stage_mode_are_400(self, url):
        status, payload = _request(
            f"{url}/search?dataset=tiny&q=improved&candidates=10"
        )
        assert (status, payload["error"]) == (400, "repro_error")

    def test_non_numeric_candidates_is_400(self, url):
        status, payload = _request(
            f"{url}/search?dataset=tiny&q=improved&mode=two_stage&candidates=many"
        )
        assert (status, payload["error"]) == (400, "bad_request")

    def test_post_explain_two_stage(self, url):
        _, search = _request(
            f"{url}/search?dataset=tiny&q=improved+study&mode=two_stage&top_k=1"
        )
        target = search["results"][0]["id"]
        status, payload = _request(
            f"{url}/explain",
            {
                "dataset": "tiny",
                "query": QUERY,
                "target": target,
                "mode": "two_stage",
                "max_edges": 5,
            },
        )
        assert status == 200
        assert payload["mode"] == "two_stage"
        assert 0 < len(payload["edges"]) <= 5
