"""Graceful-shutdown tests: drain mechanics, signal handling, 503 refusals."""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.serve import QueryService, ServeConfig, create_server
from repro.serve.http_server import serve_until_shutdown


@pytest.fixture
def service(figure1):
    return QueryService(
        ServeConfig(datasets=("fig1",), precompute=False),
        datasets={"fig1": figure1},
    )


@pytest.fixture
def server(service):
    server = create_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def _get(url: str) -> tuple[int, dict, dict]:
    try:
        with urllib.request.urlopen(url, timeout=30) as response:
            return response.status, json.loads(response.read()), dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), dict(error.headers)


class TestDrainMechanics:
    def test_draining_server_refuses_with_503_and_close(self, server):
        assert not server.draining
        server.begin_drain()
        status, payload, headers = _get(server.url + "/healthz")
        assert status == 503
        assert payload["error"] == "shutting_down"
        assert headers.get("Connection") == "close"

    def test_drain_waits_for_inflight_request(self, server, service):
        release = threading.Event()
        entered = threading.Event()
        original = service.health

        def slow_health():
            entered.set()
            release.wait(10)
            return original()

        service.health = slow_health
        responses = []
        client = threading.Thread(
            target=lambda: responses.append(_get(server.url + "/healthz")),
            daemon=True,
        )
        client.start()
        assert entered.wait(5)
        assert server.inflight == 1
        server.begin_drain()
        assert not server.drain(timeout=0.05)  # still in flight
        release.set()
        assert server.drain(timeout=5)  # completes once the request finishes
        client.join(timeout=5)
        assert responses[0][0] == 200  # the in-flight request was answered
        assert server.inflight == 0

    def test_drain_on_idle_server_returns_immediately(self, server):
        start = time.monotonic()
        assert server.drain(timeout=5)
        assert time.monotonic() - start < 1.0


class TestServeUntilShutdown:
    def test_programmatic_shutdown_drains_and_returns(self, service):
        server = create_server(service, port=0)
        threading.Timer(0.3, server.shutdown).start()
        signum, drained = serve_until_shutdown(server, drain_timeout=5)
        assert signum == 0
        assert drained

    def test_signal_handlers_are_restored(self, service):
        before = signal.getsignal(signal.SIGTERM)
        server = create_server(service, port=0)
        threading.Timer(0.2, server.shutdown).start()
        serve_until_shutdown(server, drain_timeout=5)
        assert signal.getsignal(signal.SIGTERM) is before


_CHILD = """
import sys
from repro.serve import QueryService, ServeConfig, create_server
from repro.serve.http_server import serve_until_shutdown

service = QueryService(ServeConfig(datasets=("dblp_tiny",), precompute=False))
server = create_server(service, port=0)
print(server.server_address[1], flush=True)
signum, drained = serve_until_shutdown(server, drain_timeout=5)
print(f"signum={signum} drained={drained}", flush=True)
sys.exit(0 if drained else 1)
"""


class TestSigtermEndToEnd:
    def test_sigterm_drains_and_exits_zero(self):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        child = subprocess.Popen(
            [sys.executable, "-c", _CHILD],
            stdout=subprocess.PIPE,
            env=env,
            text=True,
        )
        try:
            port = int(child.stdout.readline())
            status, payload, _ = _get(f"http://127.0.0.1:{port}/healthz")
            assert status == 200 and payload["status"] == "ok"
            child.send_signal(signal.SIGTERM)
            out, _ = child.communicate(timeout=30)
        finally:
            if child.poll() is None:
                child.kill()
        assert child.returncode == 0
        assert "signum=15 drained=True" in out
