"""Unit tests for the serving result cache: LRU, TTL, keying, concurrency."""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.datasets import dblp_transfer_schema
from repro.query.query import QueryVector
from repro.serve.cache import ResultCache, make_key, query_fingerprint, rates_fingerprint


class FakeClock:
    """A hand-cranked monotonic clock for TTL tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestLruEviction:
    def test_evicts_least_recently_used_first(self):
        cache = ResultCache(max_entries=3)
        for key in ("a", "b", "c"):
            cache.put(key, key.upper())
        cache.put("d", "D")  # overflows: "a" was least recently used
        assert cache.get("a") is None
        assert cache.get("b") == "B"
        assert len(cache) == 3
        assert cache.stats().evictions == 1

    def test_get_refreshes_recency(self):
        cache = ResultCache(max_entries=3)
        for key in ("a", "b", "c"):
            cache.put(key, key.upper())
        cache.get("a")  # touch: now "b" is the LRU entry
        cache.put("d", "D")
        assert cache.get("a") == "A"
        assert cache.get("b") is None

    def test_put_refreshes_recency_and_value(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh, does not evict
        cache.put("c", 3)  # evicts "b"
        assert cache.get("a") == 10
        assert cache.get("b") is None
        assert cache.get("c") == 3

    def test_rejects_non_positive_bounds(self):
        with pytest.raises(ValueError):
            ResultCache(max_entries=0)
        with pytest.raises(ValueError):
            ResultCache(ttl_seconds=0)


class TestTtlExpiry:
    def test_entry_expires_after_ttl(self):
        clock = FakeClock()
        cache = ResultCache(max_entries=8, ttl_seconds=10.0, clock=clock)
        cache.put("a", "A")
        clock.advance(9.9)
        assert cache.get("a") == "A"
        clock.advance(0.2)
        assert cache.get("a") is None
        stats = cache.stats()
        assert stats.expirations == 1
        assert stats.size == 0

    def test_put_resets_the_clock(self):
        clock = FakeClock()
        cache = ResultCache(max_entries=8, ttl_seconds=10.0, clock=clock)
        cache.put("a", "old")
        clock.advance(8.0)
        cache.put("a", "new")
        clock.advance(8.0)
        assert cache.get("a") == "new"

    def test_no_ttl_means_no_expiry(self):
        clock = FakeClock()
        cache = ResultCache(max_entries=8, ttl_seconds=None, clock=clock)
        cache.put("a", "A")
        clock.advance(1e9)
        assert cache.get("a") == "A"


class TestKeying:
    def test_same_query_same_key(self):
        rates = dblp_transfer_schema()
        a = make_key("dblp", QueryVector({"olap": 1.0, "cube": 2.0}), rates, 10)
        b = make_key("dblp", QueryVector({"cube": 2.0, "olap": 1.0}), rates, 10)
        assert a == b  # term order is canonicalized

    def test_zero_weight_terms_are_ignored(self):
        assert query_fingerprint(
            QueryVector({"olap": 1.0, "dead": 0.0})
        ) == query_fingerprint(QueryVector({"olap": 1.0}))

    def test_different_rates_different_key(self):
        vector = QueryVector({"olap": 1.0})
        initial = dblp_transfer_schema()
        learned = dblp_transfer_schema([0.5, 0.0, 0.2, 0.2, 0.3, 0.3, 0.3, 0.1])
        assert make_key("dblp", vector, initial, 10) != make_key(
            "dblp", vector, learned, 10
        )

    def test_equal_rates_from_different_objects_share_key(self):
        assert rates_fingerprint(dblp_transfer_schema()) == rates_fingerprint(
            dblp_transfer_schema()
        )

    def test_top_k_and_dataset_key(self):
        vector = QueryVector({"olap": 1.0})
        rates = dblp_transfer_schema()
        assert make_key("a", vector, rates, 10) != make_key("a", vector, rates, 20)
        assert make_key("a", vector, rates, 10) != make_key("b", vector, rates, 10)


class TestInvalidation:
    def _key(self, dataset, term="olap", k=10):
        return make_key(dataset, QueryVector({term: 1.0}), dblp_transfer_schema(), k)

    def test_invalidate_one_dataset(self):
        cache = ResultCache(max_entries=8)
        cache.put(self._key("a"), 1)
        cache.put(self._key("a", "cube"), 2)
        cache.put(self._key("b"), 3)
        assert cache.invalidate("a") == 2
        assert cache.get(self._key("b")) == 3
        assert cache.get(self._key("a")) is None
        assert cache.stats().invalidations == 2

    def test_invalidate_everything(self):
        cache = ResultCache(max_entries=8)
        cache.put(self._key("a"), 1)
        cache.put(self._key("b"), 2)
        assert cache.invalidate() == 2
        assert len(cache) == 0


class TestStats:
    def test_hit_rate_accounting(self):
        cache = ResultCache(max_entries=4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("a")
        cache.get("missing")
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (2, 1)
        assert stats.hit_rate == pytest.approx(2 / 3)

    def test_empty_cache_hit_rate_is_zero(self):
        assert ResultCache().stats().hit_rate == 0.0


class TestConcurrency:
    def test_hammer_get_put_invalidate(self):
        """Concurrent get/put/invalidate never corrupts the cache and the
        size bound holds throughout."""
        cache = ResultCache(max_entries=32)
        keys = [("ds", ("t", float(i)), (0.5,), 10) for i in range(64)]

        def worker(seed: int) -> int:
            hits = 0
            for i in range(400):
                key = keys[(seed * 7 + i) % len(keys)]
                if i % 3 == 0:
                    cache.put(key, (seed, i))
                else:
                    value = cache.get(key)
                    if value is not None:
                        hits += 1
                        assert isinstance(value, tuple) and len(value) == 2
                if i % 97 == 0 and seed == 0:
                    cache.invalidate("ds")
                assert len(cache) <= 32
            return hits

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(worker, range(8)))

        stats = cache.stats()
        assert stats.size <= 32
        # All lookups were accounted as either hit or miss.
        total_gets = sum(1 for seed in range(8) for i in range(400) if i % 3 != 0)
        assert stats.hits + stats.misses == total_gets
        assert stats.hits == sum(results)
