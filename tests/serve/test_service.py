"""Unit tests for QueryService routing, caching and invalidation wiring."""

from __future__ import annotations

import pytest

from repro.errors import ReproError
from repro.serve import Deadline, DeadlineExceededError, QueryService, ServeConfig


@pytest.fixture
def service(figure1):
    """A service over the 7-node Figure 1 dataset with precompute enabled."""
    return QueryService(
        ServeConfig(datasets=("fig1",), precompute_min_document_frequency=1),
        datasets={"fig1": figure1},
    )


@pytest.fixture
def live_service(figure1):
    """Same dataset, precomputed vectors disabled: every miss runs live."""
    return QueryService(
        ServeConfig(datasets=("fig1",), precompute=False),
        datasets={"fig1": figure1},
    )


class TestRouting:
    def test_first_query_runs_live_without_precompute(self, live_service):
        response = live_service.search("fig1", "OLAP")
        assert response["served_from"] == "live"
        assert response["iterations"] > 0
        assert response["results"][0]["id"] == "v7"

    def test_repeat_query_served_from_cache(self, live_service):
        first = live_service.search("fig1", "OLAP")
        second = live_service.search("fig1", "OLAP")
        assert second["served_from"] == "cache"
        assert [r["id"] for r in second["results"]] == [
            r["id"] for r in first["results"]
        ]
        snapshot = live_service.metrics.snapshot()
        assert snapshot["repro_cache_hits_total"] == 1
        assert snapshot["repro_cache_misses_total"] == 1

    def test_auto_prefers_fresh_precomputed_on_miss(self, service):
        response = service.search("fig1", "OLAP")
        assert response["served_from"] == "precomputed"
        assert response["iterations"] == 0
        assert response["results"]

    def test_live_mode_bypasses_cache_read(self, live_service):
        live_service.search("fig1", "OLAP")
        forced = live_service.search("fig1", "OLAP", mode="live")
        assert forced["served_from"] == "live"

    def test_precomputed_mode_reports_exact_source(self, service):
        response = service.search("fig1", "OLAP", mode="precomputed")
        assert response["served_from"] == "precomputed"
        assert response["iterations"] == 0

    def test_precomputed_mode_without_ranker_raises(self, live_service):
        with pytest.raises(ReproError, match="disabled"):
            live_service.search("fig1", "OLAP", mode="precomputed")

    def test_unknown_mode_raises(self, service):
        with pytest.raises(ReproError, match="unknown mode"):
            service.search("fig1", "OLAP", mode="turbo")

    def test_unknown_dataset_raises(self, service):
        with pytest.raises(ReproError, match="not served"):
            service.search("nope", "OLAP")

    def test_empty_base_set_yields_empty_results(self, live_service):
        response = live_service.search("fig1", "nonexistentterm")
        assert response["results"] == []
        assert response["served_from"] == "live"

    def test_label_filter(self, live_service):
        response = live_service.search("fig1", "OLAP", labels=("Author",))
        assert response["results"]
        assert all(r["label"] == "Author" for r in response["results"])

    def test_label_filter_is_part_of_the_cache_key(self, live_service):
        unfiltered = live_service.search("fig1", "OLAP")
        filtered = live_service.search("fig1", "OLAP", labels=("Author",))
        assert filtered["served_from"] != "cache"
        assert [r["id"] for r in filtered["results"]] != [
            r["id"] for r in unfiltered["results"]
        ]

    def test_results_match_direct_engine_search(self, live_service):
        response = live_service.search("fig1", "OLAP", top_k=5)
        engine = live_service.runtime("fig1").engine
        expected = engine.search("OLAP", top_k=5)
        assert [r["id"] for r in response["results"]] == expected.hit_ids()
        assert [r["score"] for r in response["results"]] == pytest.approx(
            [score for _, score in expected.top]
        )

    def test_unanswerable_precomputed_query_is_not_cached(self, figure1):
        service = QueryService(
            ServeConfig(datasets=("fig1",), precompute_keywords=("databases",)),
            datasets={"fig1": figure1},
        )
        forced = service.search("fig1", "OLAP", mode="precomputed")
        assert forced["results"] == []
        after = service.search("fig1", "OLAP")
        assert after["served_from"] == "live"
        assert after["results"]


class TestDeadline:
    def test_expired_deadline_fails_fast(self, live_service):
        with pytest.raises(DeadlineExceededError):
            live_service.search("fig1", "OLAP", deadline=Deadline(0.0))

    def test_cache_hit_beats_an_expired_deadline(self, live_service):
        live_service.search("fig1", "OLAP")
        response = live_service.search("fig1", "OLAP", deadline=Deadline(0.0))
        assert response["served_from"] == "cache"

    def test_generous_deadline_passes(self, live_service):
        response = live_service.search("fig1", "OLAP", deadline=Deadline(30.0))
        assert response["results"]


class TestExplain:
    def test_explains_top_result(self, live_service):
        explanation = live_service.explain("fig1", "OLAP", "v7")
        assert explanation["target"] == "v7"
        assert explanation["target_inflow"] > 0
        assert explanation["adjustment_iterations"] > 0
        assert explanation["edges"]
        flows = [edge["flow"] for edge in explanation["edges"]]
        assert flows == sorted(flows, reverse=True)


class TestReformulationInvalidation:
    """The stale path: applying structure-based reformulation must invalidate
    both the result cache and the precomputed vectors."""

    def test_apply_invalidates_cache_and_stales_precompute(self, service):
        warm = service.search("fig1", "OLAP")
        assert warm["served_from"] in ("precomputed", "live")
        service.search("fig1", "OLAP")  # populate + prove cache works
        runtime = service.runtime("fig1")
        ranker = runtime.precomputed_ranker()
        assert not ranker.is_stale(runtime.rates)

        outcome = service.feedback_reformulate("fig1", "OLAP", ["v4"])
        assert outcome["applied"] is True
        assert outcome["invalidated_cache_entries"] >= 1
        assert outcome["precomputed_stale"] is True

        # Both caches are gone: no entry for the dataset, ranker stale.
        assert len(service.cache) == 0
        assert ranker.is_stale(runtime.rates)

        # Subsequent identical traffic routes to live ObjectRank2.
        after = service.search("fig1", "OLAP")
        assert after["served_from"] == "live"
        assert after["iterations"] > 0

    def test_what_if_reformulation_leaves_serving_state_alone(self, service):
        service.search("fig1", "OLAP")
        runtime = service.runtime("fig1")
        rates_before = runtime.rates
        outcome = service.feedback_reformulate("fig1", "OLAP", ["v4"], apply=False)
        assert outcome["applied"] is False
        assert outcome["invalidated_cache_entries"] == 0
        assert runtime.rates is rates_before
        assert len(service.cache) == 1
        assert service.search("fig1", "OLAP")["served_from"] == "cache"

    def test_learned_rates_differ_from_initial(self, service, figure1):
        outcome = service.feedback_reformulate("fig1", "OLAP", ["v4"])
        initial = {
            str(t): figure1.transfer_schema.rate(t)
            for t in figure1.transfer_schema.edge_types()
        }
        assert outcome["learned_rates"] != initial

    def test_invalidation_only_hits_the_reformulated_dataset(self, figure1, bio_tiny):
        service = QueryService(
            ServeConfig(datasets=("fig1", "bio"), precompute=False),
            datasets={"fig1": figure1, "bio": bio_tiny},
        )
        service.search("fig1", "OLAP")
        service.search("bio", "cancer")
        service.feedback_reformulate("fig1", "OLAP", ["v4"])
        assert service.search("bio", "cancer")["served_from"] == "cache"
        assert service.search("fig1", "OLAP")["served_from"] == "live"


class TestCoverageFallback:
    """Regression: a precomputed answer must never silently drop uncached
    query terms — partial coverage routes auto traffic back to live."""

    @pytest.fixture
    def partial_service(self, figure1):
        return QueryService(
            ServeConfig(datasets=("fig1",), precompute_keywords=("olap",)),
            datasets={"fig1": figure1},
        )

    def test_auto_falls_back_to_live_on_partial_coverage(self, partial_service):
        response = partial_service.search("fig1", "OLAP multidimensional")
        assert response["served_from"] == "live"
        assert response["iterations"] > 0
        assert response["coverage"] == 1.0  # live ranks with every term

    def test_forced_precomputed_reports_partial_coverage(self, partial_service):
        with pytest.raises(ReproError, match="cover"):
            partial_service.search(
                "fig1", "OLAP multidimensional", mode="precomputed"
            )

    def test_threshold_admits_partial_coverage(self, figure1):
        service = QueryService(
            ServeConfig(
                datasets=("fig1",),
                precompute_keywords=("olap",),
                precompute_min_coverage=0.5,
            ),
            datasets={"fig1": figure1},
        )
        response = service.search("fig1", "OLAP multidimensional")
        assert response["served_from"] == "precomputed"
        assert response["coverage"] == pytest.approx(0.5)

    def test_fully_covered_query_stays_precomputed(self, partial_service):
        response = partial_service.search("fig1", "OLAP")
        assert response["served_from"] == "precomputed"
        assert response["coverage"] == 1.0


class TestPrecomputeRebuild:
    """With ``precompute_rebuild`` on, an applied reformulation rebuilds the
    per-keyword vectors under the learned rates instead of abandoning the
    precomputed fast path."""

    @pytest.fixture
    def rebuild_service(self, figure1):
        return QueryService(
            ServeConfig(
                datasets=("fig1",),
                precompute_min_document_frequency=1,
                precompute_rebuild=True,
            ),
            datasets={"fig1": figure1},
        )

    def test_reformulation_restores_precomputed_path(self, rebuild_service):
        assert rebuild_service.search("fig1", "OLAP")["served_from"] == "precomputed"
        outcome = rebuild_service.feedback_reformulate("fig1", "OLAP", ["v4"])
        assert outcome["applied"] is True
        assert outcome["precomputed_stale"] is False

        after = rebuild_service.search("fig1", "OLAP")
        assert after["served_from"] == "precomputed"
        assert after["iterations"] == 0

    def test_rebuilt_vectors_use_learned_rates(self, rebuild_service, figure1):
        before = rebuild_service.search("fig1", "OLAP")
        rebuild_service.feedback_reformulate("fig1", "OLAP", ["v4"])
        after = rebuild_service.search("fig1", "OLAP")
        runtime = rebuild_service.runtime("fig1")
        assert runtime.rates != figure1.transfer_schema

        from repro.ranking import keyword_objectrank

        view = runtime.engine.transfer_view(runtime.rates)
        exact = keyword_objectrank(view, runtime.engine.index, "olap")
        expected = exact.top_k(len(after["results"]))
        assert [r["id"] for r in after["results"]] == [nid for nid, _ in expected]
        assert [r["score"] for r in after["results"]] == pytest.approx(
            [score for _, score in expected], abs=1e-8
        )
        assert before["results"] != after["results"]

    def test_without_rebuild_flag_path_stays_live(self, service):
        service.search("fig1", "OLAP")
        service.feedback_reformulate("fig1", "OLAP", ["v4"])
        assert service.search("fig1", "OLAP")["served_from"] == "live"


class TestHealthAndMetrics:
    def test_health_reports_datasets_and_cache(self, live_service):
        live_service.search("fig1", "OLAP")
        health = live_service.health()
        assert health["status"] == "ok"
        assert health["datasets"]["loaded"] == ["fig1"]
        assert health["cache"]["size"] == 1

    def test_metrics_text_is_prometheus_format(self, live_service):
        live_service.search("fig1", "OLAP")
        live_service.search("fig1", "OLAP")
        text = live_service.metrics_text()
        assert "# TYPE repro_requests_total counter" in text
        assert "repro_cache_hits_total 1" in text
        assert "repro_search_seconds_count 2" in text
        assert "repro_cache_entries 1" in text
