"""Unit tests for serving metrics: counters, histograms, text rendering."""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.serve.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_increments(self):
        counter = Counter("requests_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_decrease(self):
        with pytest.raises(ValueError):
            Counter("x").inc(-1)

    def test_render(self):
        counter = Counter("requests_total", "Requests seen")
        counter.inc(3)
        text = counter.render()
        assert "# HELP requests_total Requests seen" in text
        assert "# TYPE requests_total counter" in text
        assert "requests_total 3" in text


class TestHistogram:
    def test_count_and_sum(self):
        hist = Histogram("latency_seconds")
        for value in (0.1, 0.2, 0.3):
            hist.observe(value)
        assert hist.count == 3
        assert hist.sum == pytest.approx(0.6)

    def test_quantiles_on_known_distribution(self):
        hist = Histogram("latency_seconds")
        for i in range(1, 101):  # 1..100 ms
            hist.observe(i / 1000)
        assert hist.quantile(0.5) == pytest.approx(0.050, abs=0.002)
        assert hist.quantile(0.95) == pytest.approx(0.095, abs=0.002)
        assert hist.quantile(0.99) == pytest.approx(0.099, abs=0.002)
        assert hist.quantile(0.0) == pytest.approx(0.001)
        assert hist.quantile(1.0) == pytest.approx(0.100)

    def test_empty_quantile_is_zero(self):
        assert Histogram("x").quantile(0.5) == 0.0

    def test_quantile_bounds(self):
        with pytest.raises(ValueError):
            Histogram("x").quantile(1.5)

    def test_window_bounds_memory_but_not_count(self):
        hist = Histogram("x", window=10)
        for i in range(100):
            hist.observe(float(i))
        assert hist.count == 100
        # Window holds only the last 10 observations (90..99).
        assert hist.quantile(0.0) == 90.0

    def test_render_summary_format(self):
        hist = Histogram("latency_seconds", "Latency")
        hist.observe(0.25)
        text = hist.render()
        assert "# TYPE latency_seconds summary" in text
        assert 'latency_seconds{quantile="0.5"} 0.25' in text
        assert "latency_seconds_sum 0.25" in text
        assert "latency_seconds_count 1" in text


class TestGauge:
    def test_set_and_add(self):
        gauge = Gauge("in_flight")
        gauge.set(5)
        gauge.add(-2)
        assert gauge.value == 3
        assert "# TYPE in_flight gauge" in gauge.render()


class TestRegistry:
    def test_get_or_create_returns_same_metric(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")

    def test_kind_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ValueError):
            registry.histogram("a")

    def test_render_contains_all_metrics_sorted(self):
        registry = MetricsRegistry()
        registry.counter("z_total").inc()
        registry.histogram("a_seconds").observe(0.5)
        text = registry.render()
        assert text.index("a_seconds") < text.index("z_total")
        assert text.endswith("\n")

    def test_snapshot_flattens_histograms(self):
        registry = MetricsRegistry()
        registry.counter("hits_total").inc(2)
        hist = registry.histogram("lat")
        hist.observe(1.0)
        snap = registry.snapshot()
        assert snap["hits_total"] == 2
        assert snap["lat_count"] == 1
        assert snap["lat_p50"] == 1.0

    def test_concurrent_increments_are_not_lost(self):
        registry = MetricsRegistry()
        counter = registry.counter("n")
        hist = registry.histogram("h")

        def worker(_):
            for _ in range(1000):
                counter.inc()
                hist.observe(1.0)

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(worker, range(8)))
        assert counter.value == 8000
        assert hist.count == 8000
