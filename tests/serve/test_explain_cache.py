"""Tests for the explanation cache in QueryService.explain."""

from __future__ import annotations

import pytest

from repro.serve import QueryService, ServeConfig


@pytest.fixture
def service(figure1):
    """Figure 1 service, precompute off: /explain always runs ObjectRank2 live."""
    return QueryService(
        ServeConfig(datasets=("fig1",), precompute=False),
        datasets={"fig1": figure1},
    )


class TestExplainCache:
    def test_repeat_explain_served_from_cache(self, service):
        first = service.explain("fig1", "OLAP", "v7")
        second = service.explain("fig1", "OLAP", "v7")
        assert first["served_from"] == "live"
        assert second["served_from"] == "cache"
        assert second["edges"] == first["edges"]
        assert second["target_inflow"] == first["target_inflow"]
        assert second["adjustment_iterations"] == first["adjustment_iterations"]
        snapshot = service.metrics.snapshot()
        assert snapshot["repro_explain_cache_hits_total"] == 1
        assert snapshot["repro_explain_cache_misses_total"] == 1

    def test_cache_hit_trims_to_max_edges(self, service):
        full = service.explain("fig1", "OLAP", "v7", max_edges=50)
        assert len(full["edges"]) > 1
        trimmed = service.explain("fig1", "OLAP", "v7", max_edges=1)
        assert trimmed["served_from"] == "cache"
        assert trimmed["edges"] == full["edges"][:1]
        assert trimmed["subgraph_edges"] == full["subgraph_edges"]

    def test_distinct_targets_miss_independently(self, service):
        service.explain("fig1", "OLAP", "v7")
        other = service.explain("fig1", "OLAP", "v4")
        assert other["served_from"] == "live"
        snapshot = service.metrics.snapshot()
        assert snapshot["repro_explain_cache_misses_total"] == 2

    def test_distinct_queries_miss_independently(self, service):
        service.explain("fig1", "OLAP", "v7")
        other = service.explain("fig1", "Index", "v7")
        assert other["served_from"] == "live"

    def test_applied_reformulation_invalidates(self, service):
        service.explain("fig1", "OLAP", "v7")
        service.feedback_reformulate("fig1", "OLAP", ["v7"], apply=True)
        after = service.explain("fig1", "OLAP", "v7")
        # The serving rates changed, so the old entry is both evicted and —
        # thanks to the rate fingerprint in the key — unreachable anyway.
        assert after["served_from"] == "live"
        assert "repro_explain_cache_entries 1" in service.metrics_text()

    def test_what_if_reformulation_keeps_cache(self, service):
        service.explain("fig1", "OLAP", "v7")
        service.feedback_reformulate("fig1", "OLAP", ["v7"], apply=False)
        after = service.explain("fig1", "OLAP", "v7")
        assert after["served_from"] == "cache"

    def test_metrics_gauge_tracks_entries(self, service):
        assert "repro_explain_cache_entries 0" in service.metrics_text()
        service.explain("fig1", "OLAP", "v7")
        assert "repro_explain_cache_entries 1" in service.metrics_text()
