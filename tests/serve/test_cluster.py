"""Prefork cluster tests: shared listener, per-worker probes, respawn."""

from __future__ import annotations

import json
import os
import signal
import time
import urllib.request

import pytest

from repro.ranking.precompute import PrecomputedRanker
from repro.serve import QueryService, ServeConfig
from repro.serve.cluster import ClusterConfig, ClusterSupervisor, inject_labels
from repro.store import build_and_publish


def _get(url: str, timeout: float = 10.0) -> str:
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.read().decode("utf-8")


def _get_json(url: str) -> dict:
    return json.loads(_get(url))


@pytest.fixture(scope="module")
def cluster(figure1, tmp_path_factory):
    """A running 2-worker cluster over Figure 1, store-backed."""
    store_root = tmp_path_factory.mktemp("stores")
    service = QueryService(
        ServeConfig(
            datasets=("fig1",),
            precompute_min_document_frequency=1,
            store_dir=str(store_root),
            store_refresh_seconds=0.0,
        ),
        datasets={"fig1": figure1},
    )
    service.preload()
    runtime = service.runtime("fig1")
    ranker = PrecomputedRanker(
        runtime.engine.graph, runtime.engine.index, min_document_frequency=1
    )
    build_and_publish(store_root / "fig1", ranker, "fig1")
    supervisor = ClusterSupervisor(
        ClusterConfig(
            serve=service.config,
            workers=2,
            run_dir=str(tmp_path_factory.mktemp("run")),
            monitor_interval=0.05,
            drain_timeout=5.0,
        ),
        service=service,
    )
    supervisor.start()
    _wait_for_workers(supervisor, 2)
    yield supervisor, store_root, ranker
    supervisor.stop()


def _wait_for_workers(supervisor, count, timeout=15.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if len(supervisor.workers()) >= count:
            return
        time.sleep(0.05)
    raise AssertionError(
        f"cluster never reached {count} workers: {supervisor.workers()}"
    )


class TestServing:
    def test_shared_listener_answers(self, cluster):
        supervisor, _, _ = cluster
        payload = _get_json(supervisor.url + "/search?dataset=fig1&q=OLAP")
        assert payload["served_from"] in ("store", "cache")
        assert payload["store_generation"] == 1
        assert payload["results"]

    def test_workers_answer_identically(self, cluster):
        """The mmap fast path gives bit-equal JSON from every worker."""
        supervisor, _, _ = cluster
        answers = []
        for worker in supervisor.workers():
            payload = _get_json(
                f"http://127.0.0.1:{worker.control_port}"
                "/search?dataset=fig1&q=OLAP%20data&top_k=7"
            )
            assert payload["served_from"] in ("store", "cache")
            answers.append(
                [(r["id"], r["score"]) for r in payload["results"]]
            )
        assert len(answers) == 2
        assert answers[0] == answers[1]

    def test_generation_swap_reaches_every_worker(self, cluster):
        supervisor, store_root, ranker = cluster
        build_and_publish(store_root / "fig1", ranker, "fig1")
        deadline = time.monotonic() + 10
        generations = set()
        while time.monotonic() < deadline:
            generations = {
                _get_json(
                    f"http://127.0.0.1:{w.control_port}"
                    "/search?dataset=fig1&q=cube"
                )["store_generation"]
                for w in supervisor.workers()
            }
            if generations == {2}:
                break
            time.sleep(0.05)
        assert generations == {2}


class TestAggregation:
    def test_metrics_carry_worker_and_generation_labels(self, cluster):
        supervisor, _, _ = cluster
        for worker in supervisor.workers():
            _get(f"http://127.0.0.1:{worker.control_port}/metrics")
        text = supervisor.aggregate_metrics()
        worker_ids = {w.worker_id for w in supervisor.workers()}
        for worker_id in worker_ids:
            assert f'repro_requests_total{{worker_id="{worker_id}"' in text
        assert 'store_generation="' in text
        assert "repro_cluster_workers 2" in text
        # HELP/TYPE metadata appears once despite two workers contributing.
        assert text.count("# TYPE repro_requests_total counter") == 1

    def test_existing_labels_are_preserved(self, cluster):
        supervisor, _, _ = cluster
        text = supervisor.aggregate_metrics()
        assert 'quantile="0.5",worker_id="' in text

    def test_cluster_health(self, cluster):
        supervisor, _, _ = cluster
        health = supervisor.cluster_health()
        assert health["status"] == "ok"
        assert health["configured_workers"] == 2
        assert len(health["workers"]) == 2


class TestSupervision:
    def test_killed_worker_is_respawned(self, cluster):
        supervisor, _, _ = cluster
        victim = supervisor.workers()[0]
        os.kill(victim.pid, signal.SIGKILL)
        deadline = time.monotonic() + 15
        while time.monotonic() < deadline:
            workers = supervisor.workers()
            if len(workers) == 2 and all(w.pid != victim.pid for w in workers):
                break
            time.sleep(0.05)
        workers = supervisor.workers()
        assert len(workers) == 2
        assert all(w.pid != victim.pid for w in workers)
        assert supervisor.respawns >= 1
        # The replacement serves the same answers.
        replacement = next(
            w for w in workers if w.worker_id == victim.worker_id
        )
        payload = _get_json(
            f"http://127.0.0.1:{replacement.control_port}"
            "/search?dataset=fig1&q=OLAP"
        )
        assert payload["results"]


class TestStop:
    def test_stop_terminates_every_worker_cleanly(self, figure1, tmp_path):
        service = QueryService(
            ServeConfig(datasets=("fig1",), precompute=False),
            datasets={"fig1": figure1},
        )
        service.preload()
        supervisor = ClusterSupervisor(
            ClusterConfig(
                serve=service.config,
                workers=2,
                run_dir=str(tmp_path),
                drain_timeout=5.0,
            ),
            service=service,
        )
        supervisor.start()
        _wait_for_workers(supervisor, 2)
        pids = [w.pid for w in supervisor.workers()]
        assert supervisor.stop()
        for pid in pids:
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)


class TestInjectLabels:
    def test_plain_sample_gains_labels(self):
        out = inject_labels("m_total 5", {"worker_id": "1"})
        assert out == 'm_total{worker_id="1"} 5'

    def test_existing_labels_are_extended(self):
        out = inject_labels(
            'lat{quantile="0.5"} 0.1', {"worker_id": "1", "store_generation": "3"}
        )
        assert out == 'lat{quantile="0.5",worker_id="1",store_generation="3"} 0.1'

    def test_metadata_deduplicated_across_calls(self):
        seen: set[str] = set()
        first = inject_labels("# TYPE m counter\nm 1", {"w": "0"}, seen)
        second = inject_labels("# TYPE m counter\nm 2", {"w": "1"}, seen)
        assert "# TYPE m counter" in first
        assert "# TYPE m counter" not in second
        assert 'm{w="1"} 2' in second


class TestBindFailure:
    """start() must not leak the listener socket when bind() fails."""

    def test_failed_bind_closes_listener_and_allows_retry(
        self, tmp_path, monkeypatch
    ):
        import socket as socket_mod

        from repro.errors import ReproError
        from repro.serve import cluster as cluster_mod

        # Occupy a port so the supervisor's bind() raises EADDRINUSE.
        blocker = socket_mod.socket(socket_mod.AF_INET, socket_mod.SOCK_STREAM)
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        _, busy_port = blocker.getsockname()

        real_socket = socket_mod.socket
        created: list = []

        def recording_socket(*args, **kwargs):
            sock = real_socket(*args, **kwargs)
            created.append(sock)
            return sock

        monkeypatch.setattr(cluster_mod.socket, "socket", recording_socket)
        supervisor = ClusterSupervisor(
            ClusterConfig(
                serve=ServeConfig(datasets=()),
                port=busy_port,
                workers=1,
                run_dir=str(tmp_path),
            )
        )
        try:
            with pytest.raises(OSError):
                supervisor.start()
            assert created, "supervisor never created a listener socket"
            assert all(sock.fileno() == -1 for sock in created), (
                "bind() failure leaked an open listener fd"
            )
            # The supervisor is back in its pre-start state: address raises
            # and a retry is allowed (it fails on the same busy port, but
            # with a fresh socket rather than "cluster already started").
            with pytest.raises(ReproError):
                supervisor.address
            with pytest.raises(OSError):
                supervisor.start()
            assert all(sock.fileno() == -1 for sock in created)
        finally:
            blocker.close()
            for sock in created:
                sock.close()
