"""Store-backed QueryService tests: routing, generation keys, bit-identity."""

from __future__ import annotations

import pytest

from repro.ranking.precompute import PrecomputedRanker
from repro.serve import QueryService, ServeConfig
from repro.store import build_and_publish


@pytest.fixture
def store_root(tmp_path):
    return tmp_path / "stores"


@pytest.fixture
def store_service(figure1, store_root):
    """A service routed through an (initially empty) mmap score store."""
    return QueryService(
        ServeConfig(
            datasets=("fig1",),
            precompute_min_document_frequency=1,
            store_dir=str(store_root),
            store_refresh_seconds=0.0,  # re-check the manifest every request
        ),
        datasets={"fig1": figure1},
    )


@pytest.fixture
def memory_service(figure1):
    """The classic in-process precompute service, for bit-identity checks."""
    return QueryService(
        ServeConfig(datasets=("fig1",), precompute_min_document_frequency=1),
        datasets={"fig1": figure1},
    )


def _publish(store_root, service, dataset="fig1"):
    runtime = service.runtime(dataset)
    ranker = PrecomputedRanker(
        runtime.engine.graph, runtime.engine.index, min_document_frequency=1
    )
    return build_and_publish(store_root / dataset, ranker, dataset)


class TestRouting:
    def test_empty_store_routes_live(self, store_service):
        response = store_service.search("fig1", "OLAP")
        assert response["served_from"] == "live"
        assert "store_generation" not in response

    def test_published_store_serves_zero_copy(self, store_service, store_root):
        _publish(store_root, store_service)
        response = store_service.search("fig1", "OLAP")
        assert response["served_from"] == "store"
        assert response["store_generation"] == 1
        assert response["iterations"] == 0
        snapshot = store_service.metrics.snapshot()
        assert snapshot["repro_served_store_total"] == 1

    def test_store_response_bit_identical_to_in_memory(
        self, store_service, memory_service, store_root
    ):
        _publish(store_root, store_service)
        from_store = store_service.search("fig1", "OLAP data", top_k=7)
        from_memory = memory_service.search("fig1", "OLAP data", top_k=7)
        assert from_memory["served_from"] == "precomputed"
        assert from_store["served_from"] == "store"
        assert from_store["results"] == from_memory["results"]
        assert from_store["coverage"] == from_memory["coverage"]

    def test_generation_is_part_of_the_cache_key(
        self, store_service, store_root
    ):
        _publish(store_root, store_service)
        assert store_service.search("fig1", "OLAP")["served_from"] == "store"
        assert store_service.search("fig1", "OLAP")["served_from"] == "cache"
        _publish(store_root, store_service)  # generation 2: new cache cohort
        bumped = store_service.search("fig1", "OLAP")
        assert bumped["served_from"] == "store"
        assert bumped["store_generation"] == 2

    def test_forced_precomputed_mode_uses_the_store(
        self, store_service, store_root
    ):
        _publish(store_root, store_service)
        response = store_service.search("fig1", "OLAP", mode="precomputed")
        assert response["served_from"] == "store"

    def test_forced_precomputed_mode_unavailable_on_empty_store(
        self, store_service
    ):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="precomputed mode unavailable"):
            store_service.search("fig1", "OLAP", mode="precomputed")


class TestRebuild:
    def test_rebuild_publishes_next_generation(self, store_service, store_root):
        _publish(store_root, store_service)
        runtime = store_service.runtime("fig1")
        assert runtime.store_generation() is None  # nothing loaded yet
        assert runtime.precomputed_ranker() is not None
        assert runtime.store_generation() == 1
        rebuilt = runtime.rebuild_precomputed()
        assert rebuilt is not None and rebuilt.generation == 2
        assert runtime.store_generation() == 2

    def test_reformulation_with_rebuild_stays_on_store_path(
        self, figure1, store_root
    ):
        service = QueryService(
            ServeConfig(
                datasets=("fig1",),
                precompute_min_document_frequency=1,
                precompute_rebuild=True,
                store_dir=str(store_root),
                store_refresh_seconds=0.0,
            ),
            datasets={"fig1": figure1},
        )
        _publish(store_root, service)
        first = service.search("fig1", "OLAP")
        assert first["served_from"] == "store"
        marked = [first["results"][0]["id"]]
        outcome = service.feedback_reformulate("fig1", "OLAP", marked)
        assert outcome["applied"]
        assert outcome["precomputed_stale"] is False  # rebuilt under new rates
        after = service.search("fig1", "OLAP")
        assert after["served_from"] == "store"
        assert after["store_generation"] == 2

    def test_stale_store_routes_live_until_republished(
        self, store_service, store_root
    ):
        _publish(store_root, store_service)
        runtime = store_service.runtime("fig1")
        changed = runtime.rates.copy()
        edge_type = changed.edge_types()[0]
        changed.set_rate(edge_type, changed.rate(edge_type) / 2 + 0.05)
        runtime.apply_rates(changed)
        response = store_service.search("fig1", "OLAP")
        assert response["served_from"] == "live"


class TestIntrospection:
    def test_health_reports_store_generations(self, store_service, store_root):
        _publish(store_root, store_service)
        store_service.search("fig1", "OLAP")
        health = store_service.health()
        assert health["store"]["dir"] == str(store_root)
        assert health["store"]["generations"] == {"fig1": 1}

    def test_metrics_expose_store_gauges(self, store_service, store_root):
        _publish(store_root, store_service)
        store_service.search("fig1", "OLAP")
        text = store_service.metrics_text()
        assert "repro_store_generation 1" in text
        assert "repro_store_swaps 0" in text
        assert "repro_store_load_errors 0" in text
        assert "repro_served_store_total 1" in text

    def test_swap_gauge_counts_generation_flips(self, store_service, store_root):
        _publish(store_root, store_service)
        store_service.search("fig1", "OLAP")
        _publish(store_root, store_service)
        store_service.search("fig1", "OLAP")
        assert "repro_store_swaps 1" in store_service.metrics_text()
