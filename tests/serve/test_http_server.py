"""Integration tests: boot the HTTP server on an ephemeral port and hit it."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.serve import QueryService, ServeConfig, create_server


def _request(url: str, body: dict | None = None) -> tuple[int, dict]:
    """GET (or POST when a body is given); returns (status, decoded JSON)."""
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"} if body else {}
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _boot(service: QueryService):
    server = create_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread


@pytest.fixture(scope="module")
def server(figure1):
    service = QueryService(
        ServeConfig(datasets=("fig1",), precompute=False),
        datasets={"fig1": figure1},
    )
    server, thread = _boot(service)
    yield server
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


@pytest.fixture(scope="module")
def url(server):
    return server.url


def _metric(url: str, name: str) -> float:
    status, _ = _request(f"{url}/healthz")
    assert status == 200
    text = urllib.request.urlopen(f"{url}/metrics", timeout=30).read().decode()
    for line in text.splitlines():
        if line.startswith(f"{name} "):
            return float(line.split()[1])
    return 0.0


class TestEndpoints:
    def test_healthz(self, url):
        status, payload = _request(f"{url}/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["datasets"]["configured"] == ["fig1"]

    def test_metrics_content_type(self, url):
        with urllib.request.urlopen(f"{url}/metrics", timeout=30) as response:
            assert response.status == 200
            assert response.headers["Content-Type"].startswith("text/plain")
            assert b"# TYPE repro_requests_total counter" in response.read()

    def test_get_search(self, url):
        status, payload = _request(f"{url}/search?dataset=fig1&q=OLAP&top_k=3")
        assert status == 200
        assert payload["results"][0]["id"] == "v7"
        assert len(payload["results"]) <= 3

    def test_repeat_search_hits_cache_and_metrics_show_it(self, url):
        hits_before = _metric(url, "repro_cache_hits_total")
        first = _request(f"{url}/search?dataset=fig1&q=index+selection")
        second = _request(f"{url}/search?dataset=fig1&q=index+selection")
        assert first[0] == second[0] == 200
        assert second[1]["served_from"] == "cache"
        assert second[1]["results"] == first[1]["results"]
        assert _metric(url, "repro_cache_hits_total") == hits_before + 1

    def test_post_search_with_weighted_query_vector(self, url):
        status, payload = _request(
            f"{url}/search",
            {"dataset": "fig1", "query": {"olap": 1.0, "cube": 2.0}, "top_k": 5},
        )
        assert status == 200
        assert payload["results"]

    def test_post_search_with_label_filter(self, url):
        status, payload = _request(
            f"{url}/search",
            {"dataset": "fig1", "query": "OLAP", "labels": ["Author"]},
        )
        assert status == 200
        assert [r["label"] for r in payload["results"]] == ["Author"]

    def test_explain(self, url):
        status, payload = _request(
            f"{url}/explain",
            {"dataset": "fig1", "query": "OLAP", "target": "v7", "max_edges": 5},
        )
        assert status == 200
        assert payload["target"] == "v7"
        assert 0 < len(payload["edges"]) <= 5

    def test_feedback_reformulate(self, url):
        status, payload = _request(
            f"{url}/feedback/reformulate",
            {"dataset": "fig1", "query": "OLAP", "relevant_ids": ["v4"]},
        )
        assert status == 200
        assert payload["applied"] is True
        assert payload["results"]
        assert payload["learned_rates"]


class TestErrorMapping:
    def test_missing_query_is_400(self, url):
        status, payload = _request(f"{url}/search?dataset=fig1")
        assert status == 400
        assert payload["error"] == "bad_request"

    def test_bad_top_k_is_400(self, url):
        status, payload = _request(f"{url}/search?dataset=fig1&q=OLAP&top_k=zero")
        assert (status, payload["error"]) == (400, "bad_request")

    def test_unknown_dataset_is_404(self, url):
        status, payload = _request(f"{url}/search?dataset=missing&q=OLAP")
        assert (status, payload["error"]) == (404, "repro_error")

    def test_unknown_explain_target_is_404(self, url):
        status, payload = _request(
            f"{url}/explain", {"dataset": "fig1", "query": "OLAP", "target": "v99"}
        )
        assert (status, payload["error"]) == (404, "unknown_node")

    def test_unknown_route_is_404(self, url):
        status, payload = _request(f"{url}/no/such/route")
        assert (status, payload["error"]) == (404, "not_found")

    def test_post_invalid_json_is_400(self, url):
        request = urllib.request.Request(
            f"{url}/search",
            data=b"not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400


class TestAdmissionControl:
    @pytest.fixture(scope="class")
    def tight_server(self, figure1):
        service = QueryService(
            ServeConfig(datasets=("fig1",), precompute=False, max_concurrency=1),
            datasets={"fig1": figure1},
        )
        server, thread = _boot(service)
        yield server
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)

    def test_saturated_server_returns_429(self, tight_server):
        url = tight_server.url
        assert tight_server.admission.acquire(blocking=False)
        try:
            status, payload = _request(f"{url}/search?dataset=fig1&q=OLAP")
            assert (status, payload["error"]) == (429, "overloaded")
        finally:
            tight_server.admission.release()
        rejected = _metric(url, "repro_requests_rejected_total")
        assert rejected >= 1

    def test_healthz_and_metrics_are_never_throttled(self, tight_server):
        url = tight_server.url
        assert tight_server.admission.acquire(blocking=False)
        try:
            assert _request(f"{url}/healthz")[0] == 200
            with urllib.request.urlopen(f"{url}/metrics", timeout=30) as response:
                assert response.status == 200
        finally:
            tight_server.admission.release()

    def test_permit_is_released_after_requests(self, tight_server):
        url = tight_server.url
        for _ in range(3):
            status, _ = _request(f"{url}/search?dataset=fig1&q=cube")
            assert status == 200


class TestDeadline:
    def test_expired_deadline_returns_503(self, figure1):
        service = QueryService(
            ServeConfig(datasets=("fig1",), precompute=False, deadline_seconds=0.0),
            datasets={"fig1": figure1},
        )
        server, thread = _boot(service)
        try:
            status, payload = _request(
                f"{server.url}/search?dataset=fig1&q=databases"
            )
            assert (status, payload["error"]) == (503, "deadline_exceeded")
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
