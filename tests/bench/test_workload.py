"""Unit tests for the query workload generator."""

import pytest

from repro.bench import WorkloadGenerator


@pytest.fixture(scope="module")
def generator(request):
    dblp_tiny = request.getfixturevalue("dblp_tiny")
    return WorkloadGenerator(dblp_tiny, seed=5)


class TestPools:
    def test_selective_terms_have_small_df(self, generator):
        pool = generator.selective_terms()
        assert pool
        popular = generator.popular_terms()
        max_selective = max(generator.index.document_frequency(t) for t in pool)
        max_popular = max(generator.index.document_frequency(t) for t in popular)
        assert max_selective <= max_popular

    def test_topical_terms_match_topics(self, generator, dblp_tiny):
        topics = generator.topical_terms()
        known = set(dblp_tiny.extras["paper_topics"].values())
        assert set(topics) <= known
        assert topics  # at least one topic term appears in the index


class TestSampling:
    def test_sample_count_and_kind(self, generator):
        queries = generator.sample("selective", 5)
        assert len(queries) == 5
        assert all(q.kind == "selective" for q in queries)
        assert all(1 <= len(q.keywords) <= 2 for q in queries)

    def test_all_queries_answerable(self, generator):
        """Every sampled query must match at least one document."""
        for kind in ("topical", "selective", "popular"):
            for query in generator.sample(kind, 5):
                matched = generator.index.documents_with_any(query.keywords)
                assert matched, f"{kind} query {query.text!r} matches nothing"

    def test_unknown_kind_rejected(self, generator):
        with pytest.raises(ValueError):
            generator.sample("weird", 1)

    def test_mixed_covers_kinds(self, generator):
        workload = generator.mixed(9)
        assert len(workload) == 9
        assert {q.kind for q in workload} == {"topical", "selective", "popular"}

    def test_deterministic_per_seed(self, dblp_tiny):
        first = WorkloadGenerator(dblp_tiny, seed=3).mixed(6)
        second = WorkloadGenerator(dblp_tiny, seed=3).mixed(6)
        assert [q.text for q in first] == [q.text for q in second]
