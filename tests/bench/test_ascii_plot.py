"""Unit tests for the ASCII chart helper."""

import pytest

from repro.bench import ascii_chart


class TestAsciiChart:
    def test_basic_shape(self):
        chart = ascii_chart({"a": [0.0, 0.5, 1.0]}, width=20, height=5, title="t")
        lines = chart.splitlines()
        assert lines[0] == "t"
        assert lines[1].strip().startswith("1.000")
        assert "o=a" in lines[-1]

    def test_marker_positions_monotone(self):
        chart = ascii_chart({"up": [0.0, 1.0]}, width=10, height=4)
        rows = [line for line in chart.splitlines() if "|" in line]
        first_marker_row = next(i for i, row in enumerate(rows) if "o" in row)
        last_marker_row = max(i for i, row in enumerate(rows) if "o" in row)
        assert first_marker_row < last_marker_row  # higher value plots higher

    def test_multiple_series_get_distinct_markers(self):
        chart = ascii_chart({"a": [0, 1], "b": [1, 0]})
        assert "o=a" in chart and "x=b" in chart

    def test_flat_series_handled(self):
        chart = ascii_chart({"flat": [0.5, 0.5, 0.5]})
        assert "flat" in chart

    def test_single_point(self):
        assert "o=p" in ascii_chart({"p": [1.0]})

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_chart({})
        with pytest.raises(ValueError):
            ascii_chart({"a": [1.0], "b": [1.0, 2.0]})
        with pytest.raises(ValueError):
            ascii_chart({"a": []})

    def test_explicit_bounds_clamp(self):
        chart = ascii_chart({"a": [0.0, 10.0]}, y_min=0.0, y_max=1.0)
        assert "1.000" in chart
