"""Unit tests for stage timing helpers."""

import pytest

from repro.bench import (
    ALL_STAGES,
    STAGE_SEARCH,
    STAGE_SUBGRAPH,
    IterationTiming,
    StageClock,
)


class TestStageClock:
    def test_accumulates(self):
        clock = StageClock()
        with clock.stage(STAGE_SEARCH):
            pass
        with clock.stage(STAGE_SEARCH):
            pass
        assert clock.counts[STAGE_SEARCH] == 2
        assert clock.total(STAGE_SEARCH) > 0

    def test_missing_stage_reads_zero(self):
        clock = StageClock()
        assert clock.total(STAGE_SUBGRAPH) == 0.0

    def test_snapshot_covers_all_stages(self):
        clock = StageClock()
        with clock.stage(STAGE_SEARCH):
            pass
        snapshot = clock.snapshot()
        assert set(snapshot) == set(ALL_STAGES)

    def test_records_even_on_exception(self):
        clock = StageClock()
        with pytest.raises(RuntimeError):
            with clock.stage(STAGE_SEARCH):
                raise RuntimeError("boom")
        assert clock.counts[STAGE_SEARCH] == 1

    def test_reset(self):
        clock = StageClock()
        with clock.stage(STAGE_SEARCH):
            pass
        clock.reset()
        assert clock.totals == {}


class TestIterationTiming:
    def test_total(self):
        timing = IterationTiming("x", 1.0, 0.5, 0.25, 0.25, 7)
        assert timing.total_seconds == 2.0
        assert timing.objectrank_iterations == 7
