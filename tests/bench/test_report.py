"""Unit tests for the benchmark report collector."""

from repro.bench import collect_report, write_report


class TestCollectReport:
    def test_known_sections_ordered(self, tmp_path):
        (tmp_path / "fig11_training.txt").write_text("FIG11 BODY")
        (tmp_path / "table1_datasets.txt").write_text("TABLE1 BODY")
        report = collect_report(tmp_path)
        assert report.index("Table 1") < report.index("Figure 11")
        assert "TABLE1 BODY" in report and "FIG11 BODY" in report

    def test_unknown_files_appended(self, tmp_path):
        (tmp_path / "table1_datasets.txt").write_text("known")
        (tmp_path / "zz_custom_bench.txt").write_text("custom body")
        report = collect_report(tmp_path)
        assert "zz custom bench" in report
        assert report.index("known") < report.index("custom body")

    def test_empty_directory(self, tmp_path):
        report = collect_report(tmp_path)
        assert "no result files found" in report

    def test_write_report(self, tmp_path):
        (tmp_path / "table1_datasets.txt").write_text("body")
        output = tmp_path / "report.md"
        write_report(tmp_path, output, title="My run")
        text = output.read_text()
        assert text.startswith("# My run")
        assert "body" in text

    def test_real_results_directory(self):
        """The repository's own results directory produces a full report."""
        from pathlib import Path

        results = Path(__file__).parent.parent.parent / "benchmarks" / "results"
        if not results.exists():
            return  # harness not run yet in this checkout
        report = collect_report(results)
        assert "Figure 11" in report
