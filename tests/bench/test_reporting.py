"""Unit tests for text-table/series reporting."""

from repro.bench import format_series, format_table, percent


class TestFormatTable:
    def test_alignment(self):
        table = format_table(
            ["name", "nodes"], [["dblp_top", 22653], ["ds7", 699199]], title="Table 1"
        )
        lines = table.splitlines()
        assert lines[0] == "Table 1"
        assert "name" in lines[1] and "nodes" in lines[1]
        assert lines[2].startswith("---")
        assert "dblp_top" in lines[3]

    def test_no_title(self):
        table = format_table(["a"], [["x"]])
        assert table.splitlines()[0].startswith("a")

    def test_wide_cells_extend_columns(self):
        table = format_table(["h"], [["a-very-long-cell-value"]])
        header, rule, row = table.splitlines()
        assert len(rule) >= len("a-very-long-cell-value")


class TestFormatSeries:
    def test_pairs(self):
        line = format_series("structure-only", [1, 2], [0.25, 0.5])
        assert line == "structure-only: 1=0.25  2=0.5"


class TestPercent:
    def test_format(self):
        assert percent(0.4567) == "45.67%"
        assert percent(0.0) == "0.00%"
