"""Property-based tests for the slab container and string packing."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.slab import SlabFile, SlabFormatError, write_slab
from repro.store.format import _pack_strings, _unpack_strings

_DTYPES = (np.float64, np.float32, np.int64, np.int32, np.uint8)


@st.composite
def named_arrays(draw):
    """A dict of 1-4 named arrays with assorted dtypes and shapes."""
    names = draw(
        st.lists(
            st.text(
                alphabet=st.characters(min_codepoint=97, max_codepoint=122),
                min_size=1,
                max_size=8,
            ),
            min_size=1,
            max_size=4,
            unique=True,
        )
    )
    arrays = {}
    for name in names:
        dtype = draw(st.sampled_from(_DTYPES))
        shape = draw(
            st.one_of(
                st.integers(0, 40).map(lambda n: (n,)),
                st.tuples(st.integers(1, 8), st.integers(1, 8)),
            )
        )
        seed = draw(st.integers(0, 2**31 - 1))
        rng = np.random.default_rng(seed)
        if np.issubdtype(dtype, np.floating):
            arrays[name] = rng.standard_normal(shape).astype(dtype)
        else:
            arrays[name] = rng.integers(0, 100, size=shape).astype(dtype)
    return arrays


@given(named_arrays())
@settings(max_examples=25, deadline=None)
def test_round_trip_is_bit_identical(tmp_path_factory, arrays):
    path = tmp_path_factory.mktemp("slabs") / "prop.slab"
    write_slab(path, arrays, fsync=False)
    with SlabFile(path) as slab:
        assert sorted(slab.names()) == sorted(arrays)
        for name, original in arrays.items():
            view = slab.array(name)
            assert view.dtype == original.dtype
            assert view.shape == original.shape
            assert view.tobytes() == original.tobytes()


@given(named_arrays(), st.data())
@settings(max_examples=25, deadline=None)
def test_any_payload_byte_flip_is_detected(tmp_path_factory, arrays, data):
    if all(array.nbytes == 0 for array in arrays.values()):
        return  # nothing to corrupt
    path = tmp_path_factory.mktemp("slabs") / "prop.slab"
    write_slab(path, arrays, fsync=False)
    slab = SlabFile(path)
    sections = [s for s in slab._sections.values() if s["nbytes"] > 0]
    slab.close()
    section = data.draw(st.sampled_from(sections))
    offset = section["offset"] + data.draw(
        st.integers(0, section["nbytes"] - 1)
    )
    raw = bytearray(path.read_bytes())
    raw[offset] ^= data.draw(st.integers(1, 255))
    path.write_bytes(raw)
    with pytest.raises(SlabFormatError, match="checksum mismatch"):
        SlabFile(path)


@given(
    st.lists(
        st.text(
            alphabet=st.characters(blacklist_categories=("Cs",)), max_size=20
        ),
        max_size=30,
    )
)
@settings(max_examples=50, deadline=None)
def test_string_packing_round_trips(values):
    blob, offsets = _pack_strings(values)
    assert _unpack_strings(blob, offsets) == values
