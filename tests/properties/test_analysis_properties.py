"""Property-based tests for the interprocedural analysis layer.

Two load-bearing guarantees of ``repro.analysis``'s call graph and summary
engine, exercised over *randomly generated call topologies* (arbitrary
cycles, self-recursion, mutual recursion across SCC boundaries):

* construction terminates and is **total** — every generated ``def`` gets a
  node, every resolvable call site an edge, and the SCC decomposition is a
  permutation of the function set;
* the summary fixpoint **converges** in a small number of rounds and
  computes exactly graph reachability for the may-facts: a function may
  block iff it reaches a sleeper, acquires a lock transitively iff it
  reaches an acquirer — compared against an independent reachability
  computation in the test.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import SourceFile
from repro.analysis.callgraph import Project
from repro.analysis.summaries import MAX_SCC_ROUNDS, compute_summaries


@st.composite
def call_topologies(draw, max_functions: int = 8):
    """Random function set with arbitrary call edges and blocking marks."""
    count = draw(st.integers(2, max_functions))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, count - 1), st.integers(0, count - 1)
            ),
            max_size=2 * count,
        )
    )
    sleepers = draw(st.sets(st.integers(0, count - 1), max_size=count))
    raisers = draw(st.sets(st.integers(0, count - 1), max_size=count))
    return count, sorted(set(edges)), sleepers, raisers


def render_module(count, edges, sleepers, raisers) -> str:
    calls: dict[int, list[int]] = {}
    for caller, callee in edges:
        calls.setdefault(caller, []).append(callee)
    lines = ["import time", ""]
    for index in range(count):
        lines.append(f"def f{index}():")
        body = []
        if index in sleepers:
            body.append("    time.sleep(0.01)")
        if index in raisers:
            body.append(f"    raise ValueError('e{index}')")
        body.extend(f"    f{callee}()" for callee in calls.get(index, []))
        body.append("    return None")
        lines.extend(body)
        lines.append("")
    return "\n".join(lines)


def reachable(start: int, edges, count) -> set:
    adjacency: dict[int, set] = {}
    for caller, callee in edges:
        adjacency.setdefault(caller, set()).add(callee)
    seen = {start}
    stack = [start]
    while stack:
        node = stack.pop()
        for nxt in adjacency.get(node, ()):
            if nxt not in seen:
                seen.add(nxt)
                stack.append(nxt)
    return seen


class TestCallGraphTotality:
    @given(call_topologies())
    @settings(max_examples=60, deadline=None)
    def test_every_def_has_a_node_and_sccs_partition_them(self, topology):
        count, edges, sleepers, raisers = topology
        text = render_module(count, edges, sleepers, raisers)
        project = Project([SourceFile.parse("src/repro/gen.py", text)])
        graph = project.graph

        expected = {f"repro.gen:f{i}" for i in range(count)}
        assert set(graph.functions) == expected

        flattened = [fid for scc in graph.sccs() for fid in scc]
        assert sorted(flattened) == sorted(expected)
        assert len(flattened) == len(set(flattened))

        for caller, callee in edges:
            assert f"repro.gen:f{callee}" in graph.callees_of(
                f"repro.gen:f{caller}"
            )


class TestSummaryFixpoint:
    @given(call_topologies())
    @settings(max_examples=60, deadline=None)
    def test_converges_and_matches_reachability(self, topology):
        count, edges, sleepers, raisers = topology
        text = render_module(count, edges, sleepers, raisers)
        project = Project([SourceFile.parse("src/repro/gen.py", text)])
        index = compute_summaries(project)

        assert index.converged
        assert max(index.scc_rounds, default=0) < MAX_SCC_ROUNDS
        # A monotone union fixpoint stabilizes in at most |SCC| + 1 rounds.
        assert max(index.scc_rounds, default=0) <= count + 1

        for i in range(count):
            summary = index[f"repro.gen:f{i}"]
            reach = reachable(i, edges, count)
            assert summary.may_block == bool(reach & sleepers)
            expected_raises = {
                f"ValueError" for r in raisers if r in reach
            }
            assert (summary.propagates == frozenset(expected_raises)) or (
                not expected_raises and not summary.propagates
            )

    @given(st.integers(2, 6))
    @settings(max_examples=20, deadline=None)
    def test_full_mutual_recursion_ring_converges(self, size):
        """A single SCC containing every function — the worst case."""
        edges = [(i, (i + 1) % size) for i in range(size)]
        text = render_module(size, edges, sleepers={0}, raisers=set())
        project = Project([SourceFile.parse("src/repro/gen.py", text)])
        index = compute_summaries(project)
        assert index.converged
        (component,) = [c for c in project.graph.sccs() if len(c) > 1]
        assert len(component) == size
        for i in range(size):
            assert index[f"repro.gen:f{i}"].may_block
