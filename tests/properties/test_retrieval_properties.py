"""Property tests: two-stage degenerate configs are bit-identical to the
existing paths.

The acceptance criterion of the two-stage engine: the fast paths earn trust
by collapsing *exactly* (same floats, not approximately) onto the code they
shortcut —

* pruned top-N BM25 ≡ exhaustive BM25 top-N (same ids, same scores,
  document-id tiebreak), for every random graph, query and N;
* candidates ⊇ corpus with authority-only fusion ≡ focused ObjectRank2.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir import BM25Scorer, InvertedIndex
from repro.query import QueryVector
from repro.ranking import focused_objectrank2
from repro.retrieval import exhaustive_top_n, pruned_top_n, two_stage_rank

from tests.properties.strategies import dblp_transfer_graphs

_WORDS = (
    "olap", "cube", "xml", "mining", "query", "index", "stream", "rank",
    "graph", "join", "search", "web", "view", "log",
)


@st.composite
def graph_and_query(draw):
    """A random transfer graph plus a query matching at least one document."""
    atdg = draw(dblp_transfer_graphs())
    index = InvertedIndex.from_graph(atdg.data_graph)
    vocabulary = sorted(set(_WORDS) & set(index.vocabulary()))
    terms = draw(
        st.lists(st.sampled_from(vocabulary), min_size=1, max_size=3, unique=True)
    )
    weights = {
        term: draw(st.floats(0.1, 3.0, allow_nan=False, allow_infinity=False))
        for term in terms
    }
    return atdg, BM25Scorer(index), QueryVector(weights)


@given(graph_and_query(), st.integers(1, 12))
@settings(max_examples=40, deadline=None)
def test_pruned_top_n_is_bit_identical_to_exhaustive(case, n):
    _, scorer, vector = case
    exact = exhaustive_top_n(scorer, vector, n)
    pruned = pruned_top_n(scorer, vector, n)
    assert pruned.doc_ids == exact.doc_ids
    assert [c.score for c in pruned.candidates] == [
        c.score for c in exact.candidates
    ]


@given(graph_and_query(), st.integers(0, 3))
@settings(max_examples=30, deadline=None)
def test_degenerate_two_stage_is_bit_identical_to_focused(case, horizon):
    atdg, scorer, vector = case
    two_stage = two_stage_rank(
        atdg,
        scorer,
        vector,
        candidates=10_000,  # always covers the whole corpus
        fusion="weighted",
        fusion_weight=1.0,
        horizon=horizon,
    )
    focused = focused_objectrank2(atdg, scorer, vector, horizon=horizon)
    assert np.array_equal(two_stage.ranked.scores, focused.ranked.scores)
    assert two_stage.ranked.base_weights == focused.ranked.base_weights
    assert two_stage.ranked.iterations == focused.ranked.iterations
    assert two_stage.subgraph_nodes == focused.subgraph_nodes
    assert two_stage.subgraph_edges == focused.subgraph_edges


@given(graph_and_query())
@settings(max_examples=25, deadline=None)
def test_ir_only_fusion_ranks_candidates_by_bm25(case):
    """weighted at weight 0.0 must reproduce the stage-1 BM25 ordering."""
    atdg, scorer, vector = case
    result = two_stage_rank(
        atdg, scorer, vector,
        candidates=10_000, fusion="weighted", fusion_weight=0.0, horizon=1,
    )
    ranking = [
        node_id
        for node_id, score in result.ranked.top_k(len(result.candidate_set))
        if score > 0
    ]
    by_bm25 = [c.doc_id for c in result.candidate_set.candidates if c.score > 0]
    assert ranking == by_bm25
