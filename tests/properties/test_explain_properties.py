"""Property-based tests for explanation invariants (Equations 5-10)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.explain import adjust_flows, build_explaining_subgraph
from repro.ranking import objectrank

from tests.properties.strategies import dblp_transfer_graphs


def _setup(atdg, target_index):
    papers = [n for n in atdg.node_ids if n.startswith("paper:")]
    result = objectrank(atdg, papers, damping=0.85, tolerance=1e-12)
    target = papers[target_index % len(papers)]
    subgraph = build_explaining_subgraph(atdg, papers, target, radius=None)
    explanation = adjust_flows(subgraph, result.scores, 0.85, tolerance=1e-12)
    return explanation, result


@given(dblp_transfer_graphs(), st.integers(0, 100))
@settings(max_examples=25, deadline=None)
def test_equation7_everywhere(atdg, target_index):
    """Flow(e) = h(target(e)) * Flow_0(e) for every subgraph edge."""
    explanation, _ = _setup(atdg, target_index)
    graph = explanation.graph
    for edge_id, flow, flow0 in zip(
        explanation.edge_ids, explanation.flows, explanation.original_flows
    ):
        h = explanation.reduction[int(graph.edge_target[edge_id])]
        assert abs(flow - h * flow0) < 1e-9


@given(dblp_transfer_graphs(), st.integers(0, 100))
@settings(max_examples=25, deadline=None)
def test_target_h_is_one(atdg, target_index):
    explanation, _ = _setup(atdg, target_index)
    assert explanation.reduction[explanation.subgraph.target] == 1.0


@given(dblp_transfer_graphs(), st.integers(0, 100))
@settings(max_examples=25, deadline=None)
def test_fixpoint_residual_small(atdg, target_index):
    """Equation 10 holds at convergence for every non-target node."""
    explanation, _ = _setup(atdg, target_index)
    if explanation.subgraph.is_empty:
        return
    graph = explanation.graph
    out_by_node: dict[int, list[int]] = {}
    for edge_id in explanation.edge_ids:
        out_by_node.setdefault(int(graph.edge_source[edge_id]), []).append(int(edge_id))
    for node in explanation.subgraph.nodes:
        if node == explanation.subgraph.target:
            continue
        expected = sum(
            explanation.reduction[int(graph.edge_target[e])] * graph.edge_rate[e]
            for e in out_by_node.get(node, ())
        )
        assert abs(explanation.reduction[node] - expected) < 1e-6


@given(dblp_transfer_graphs(), st.integers(0, 100))
@settings(max_examples=25, deadline=None)
def test_subgraph_edges_positive_rate_and_inside(atdg, target_index):
    explanation, _ = _setup(atdg, target_index)
    graph = explanation.graph
    nodes = set(explanation.subgraph.nodes)
    for edge_id in explanation.edge_ids:
        assert graph.edge_rate[edge_id] > 0
        assert int(graph.edge_source[edge_id]) in nodes
        assert int(graph.edge_target[edge_id]) in nodes


@given(dblp_transfer_graphs(), st.integers(0, 100))
@settings(max_examples=25, deadline=None)
def test_radius_monotonicity(atdg, target_index):
    """A larger radius never shrinks the explaining subgraph."""
    papers = [n for n in atdg.node_ids if n.startswith("paper:")]
    target = papers[target_index % len(papers)]
    small = build_explaining_subgraph(atdg, papers, target, radius=1)
    large = build_explaining_subgraph(atdg, papers, target, radius=3)
    assert set(small.nodes) <= set(large.nodes)
    assert set(int(e) for e in small.edge_ids) <= set(int(e) for e in large.edge_ids)


@given(dblp_transfer_graphs(), st.integers(0, 100))
@settings(max_examples=25, deadline=None)
def test_target_inflow_at_most_original(atdg, target_index):
    """Adjustment never *increases* the authority reaching the target."""
    explanation, _ = _setup(atdg, target_index)
    graph = explanation.graph
    target = explanation.subgraph.target
    original_into_target = sum(
        f0
        for e, f0 in zip(explanation.edge_ids, explanation.original_flows)
        if int(graph.edge_target[e]) == target
    )
    assert explanation.target_inflow() <= original_into_target + 1e-9
