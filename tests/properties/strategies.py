"""Hypothesis strategies for property-based tests.

The central strategy builds random data graphs conforming to the DBLP schema
(Figure 2), so every property test exercises the same typed-graph machinery
the paper's system runs on.
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.datasets import dblp_transfer_schema
from repro.graph import AuthorityTransferDataGraph, DataGraph

_WORDS = (
    "olap", "cube", "xml", "mining", "query", "index", "stream", "rank",
    "graph", "join", "search", "web", "view", "log",
)


@st.composite
def dblp_graphs(draw, min_papers: int = 2, max_papers: int = 8):
    """A random conforming DBLP data graph with at least one word per paper."""
    num_papers = draw(st.integers(min_papers, max_papers))
    num_authors = draw(st.integers(1, 4))
    graph = DataGraph()
    graph.add_node("conf:0", "Conference", {"name": "icde"})
    graph.add_node("year:0", "Year", {"name": "icde", "year": "1997"})
    graph.add_edge("conf:0", "year:0", "has")
    for a in range(num_authors):
        graph.add_node(f"author:{a}", "Author", {"name": f"author{a}"})
    for p in range(num_papers):
        words = draw(
            st.lists(st.sampled_from(_WORDS), min_size=1, max_size=4)
        )
        graph.add_node(f"paper:{p}", "Paper", {"title": " ".join(words)})
        graph.add_edge("year:0", f"paper:{p}", "contains")
        author = draw(st.integers(0, num_authors - 1))
        graph.add_edge(f"paper:{p}", f"author:{author}", "by")
    # Random citations (no self-loops; duplicates allowed — parallel edges).
    num_citations = draw(st.integers(0, 2 * num_papers))
    for _ in range(num_citations):
        source = draw(st.integers(0, num_papers - 1))
        target = draw(st.integers(0, num_papers - 1))
        if source != target:
            graph.add_edge(f"paper:{source}", f"paper:{target}", "cites")
    return graph


@st.composite
def dblp_transfer_graphs(draw, epsilon: float = 0.0):
    """A materialized transfer graph over a random DBLP data graph."""
    graph = draw(dblp_graphs())
    rates = dblp_transfer_schema(epsilon=epsilon)
    return AuthorityTransferDataGraph(graph, rates)


@st.composite
def rate_vectors(draw, size: int = 8):
    """A random non-negative rate vector with at least one positive entry."""
    vector = draw(
        st.lists(
            st.floats(0.0, 1.0, allow_nan=False), min_size=size, max_size=size
        )
    )
    if all(v == 0.0 for v in vector):
        vector[draw(st.integers(0, size - 1))] = draw(st.floats(0.01, 1.0))
    return vector
