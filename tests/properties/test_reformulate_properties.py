"""Property-based tests for reformulation invariants (Section 5)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import dblp_transfer_schema
from repro.explain import adjust_flows, build_explaining_subgraph
from repro.query import QueryVector
from repro.ranking import objectrank
from repro.reformulate import ContentReformulator, StructureReformulator

from tests.properties.strategies import dblp_transfer_graphs, rate_vectors


def _explanation(atdg, target_index):
    papers = [n for n in atdg.node_ids if n.startswith("paper:")]
    result = objectrank(atdg, papers, damping=0.85, tolerance=1e-12)
    target = papers[target_index % len(papers)]
    subgraph = build_explaining_subgraph(atdg, papers, target, radius=None)
    return adjust_flows(subgraph, result.scores, 0.85, tolerance=1e-12)


@given(dblp_transfer_graphs(), st.integers(0, 50), st.floats(0.05, 1.0))
@settings(max_examples=20, deadline=None)
def test_structure_result_always_convergent(atdg, target_index, cf):
    explanation = _explanation(atdg, target_index)
    after = StructureReformulator(cf).reformulate(
        dblp_transfer_schema(), [explanation]
    )
    assert after.is_convergent()
    assert all(rate >= 0 for rate in after.as_vector())


@given(dblp_transfer_graphs(), st.integers(0, 50))
@settings(max_examples=20, deadline=None)
def test_structure_preserves_zero_rates(atdg, target_index):
    """A zero-rate edge type (DBLP's 'cited') can never gain rate: Equation
    13 multiplies the previous rate."""
    explanation = _explanation(atdg, target_index)
    before = dblp_transfer_schema()
    after = StructureReformulator(0.7).reformulate(before, [explanation])
    for edge_type in before.edge_types():
        if before.rate(edge_type) == 0.0:
            assert after.rate(edge_type) == 0.0


@given(dblp_transfer_graphs(), st.integers(0, 50))
@settings(max_examples=20, deadline=None)
def test_max_flow_type_gets_max_relative_boost(atdg, target_index):
    explanation = _explanation(atdg, target_index)
    factors = explanation.flow_by_edge_type()
    if not factors or max(factors.values()) <= 0:
        return
    before = dblp_transfer_schema()
    after = StructureReformulator(0.5).reformulate(before, [explanation])
    ratios = {
        t: after.rate(t) / before.rate(t)
        for t in before.edge_types()
        if before.rate(t) > 0
    }
    best_type = max(
        (t for t in factors if before.rate(t) > 0),
        key=lambda t: factors[t],
        default=None,
    )
    if best_type is not None:
        assert ratios[best_type] >= max(ratios.values()) - 1e-9


@given(dblp_transfer_graphs(), st.integers(0, 50), st.floats(0.05, 1.0))
@settings(max_examples=20, deadline=None)
def test_content_weights_non_negative_and_no_stopwords(atdg, target_index, decay):
    explanation = _explanation(atdg, target_index)
    reformulator = ContentReformulator(decay=decay, expansion_factor=0.5)
    weights = reformulator.term_weights(explanation)
    assert all(w >= 0 for w in weights.values())
    assert all(not reformulator.analyzer.is_stopword(t) for t in weights)


@given(dblp_transfer_graphs(), st.integers(0, 50))
@settings(max_examples=20, deadline=None)
def test_content_reformulation_never_drops_query_terms(atdg, target_index):
    explanation = _explanation(atdg, target_index)
    reformulator = ContentReformulator()
    vector = QueryVector({"olap": 1.0, "xml": 2.0})
    new_vector = reformulator.reformulate(vector, [explanation])
    for term in vector.terms:
        assert new_vector.weight(term) >= vector.weight(term)


@given(rate_vectors())
@settings(max_examples=40, deadline=None)
def test_rate_vector_round_trip(vector):
    from repro.datasets import dblp_edge_order

    schema = dblp_transfer_schema()
    order = dblp_edge_order(schema.schema)
    rebuilt = schema.with_vector(vector, order)
    assert rebuilt.as_vector(order) == [float(v) for v in vector]
