"""Property-based tests for the graph substrate (Equation 1 invariants)."""

import numpy as np
from hypothesis import given, settings

from repro.datasets import dblp_transfer_schema
from repro.graph import AuthorityTransferDataGraph

from tests.properties.strategies import dblp_graphs, rate_vectors


@given(dblp_graphs())
@settings(max_examples=40, deadline=None)
def test_transfer_edge_count_is_double(graph):
    atdg = AuthorityTransferDataGraph(graph, dblp_transfer_schema())
    assert atdg.num_edges == 2 * graph.num_edges


@given(dblp_graphs())
@settings(max_examples=40, deadline=None)
def test_per_node_per_type_rates_sum_to_alpha(graph):
    """Equation 1: for each node and edge type with outgoing edges, the edge
    rates of that type sum to the schema-level alpha."""
    schema = dblp_transfer_schema()
    atdg = AuthorityTransferDataGraph(graph, schema)
    sums: dict[tuple[int, int], float] = {}
    for edge_id in range(atdg.num_edges):
        key = (int(atdg.edge_source[edge_id]), int(atdg.edge_type_index[edge_id]))
        sums[key] = sums.get(key, 0.0) + float(atdg.edge_rate[edge_id])
    for (node, type_index), total in sums.items():
        alpha = schema.rate(atdg.edge_types[type_index])
        assert abs(total - alpha) < 1e-9


@given(dblp_graphs())
@settings(max_examples=40, deadline=None)
def test_matrix_column_sums_bounded(graph):
    """Column i of the matrix sums each node's outgoing rates: at most 1."""
    atdg = AuthorityTransferDataGraph(graph, dblp_transfer_schema())
    column_sums = np.asarray(atdg.matrix().sum(axis=0)).ravel()
    assert (column_sums <= 1.0 + 1e-9).all()


@given(dblp_graphs(), rate_vectors())
@settings(max_examples=30, deadline=None)
def test_rate_swap_equals_fresh_build(graph, vector):
    """set_transfer_rates must produce exactly the graph a fresh build with
    those rates would."""
    from repro.datasets import dblp_edge_order, dblp_schema

    order = dblp_edge_order(dblp_schema())
    base = dblp_transfer_schema()
    new_rates = base.with_vector(vector, dblp_edge_order(base.schema))

    swapped = AuthorityTransferDataGraph(graph, base)
    swapped.set_transfer_rates(new_rates)
    fresh = AuthorityTransferDataGraph(graph, new_rates, validate=False)
    assert np.allclose(swapped.edge_rate, fresh.edge_rate)
    assert (swapped.matrix() != fresh.matrix()).nnz == 0


@given(dblp_graphs())
@settings(max_examples=40, deadline=None)
def test_incidence_index_bijection(graph):
    """out/in edge-id indexes form a partition of all edge ids."""
    atdg = AuthorityTransferDataGraph(graph, dblp_transfer_schema())
    out_ids = sorted(
        int(e) for i in range(atdg.num_nodes) for e in atdg.out_edge_ids(i)
    )
    in_ids = sorted(
        int(e) for i in range(atdg.num_nodes) for e in atdg.in_edge_ids(i)
    )
    assert out_ids == list(range(atdg.num_edges))
    assert in_ids == list(range(atdg.num_edges))
