"""Property-based tests for the extension modules (focused/topk/click/agg)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.feedback.click import ClickLog, implicit_feedback, position_weight
from repro.ir import BM25Scorer, InvertedIndex
from repro.query import QueryVector
from repro.ranking import focused_objectrank2, objectrank2, objectrank2_topk
from repro.reformulate.aggregation import AGGREGATORS, aggregate_maps

from tests.properties.strategies import dblp_transfer_graphs


def _query_for(atdg):
    index = InvertedIndex.from_graph(atdg.data_graph)
    scorer = BM25Scorer(index)
    # every generated paper title draws from this pool; pick a term that exists
    for term in ("olap", "cube", "xml", "mining", "query"):
        if index.documents_with_term(term):
            return scorer, QueryVector({term: 1.0})
    return scorer, None


@given(dblp_transfer_graphs())
@settings(max_examples=20, deadline=None)
def test_focused_converges_to_exact_with_horizon(atdg):
    """At a horizon covering the whole graph, focused == exact."""
    scorer, vector = _query_for(atdg)
    if vector is None:
        return
    exact = objectrank2(atdg, scorer, vector, tolerance=1e-10)
    focused = focused_objectrank2(
        atdg, scorer, vector, horizon=atdg.num_nodes, tolerance=1e-10
    )
    assert np.allclose(focused.ranked.scores, exact.scores, atol=1e-8)


@given(dblp_transfer_graphs(), st.integers(0, 3))
@settings(max_examples=20, deadline=None)
def test_focused_scores_vanish_outside_subgraph(atdg, horizon):
    scorer, vector = _query_for(atdg)
    if vector is None:
        return
    focused = focused_objectrank2(atdg, scorer, vector, horizon=horizon)
    assert focused.subgraph_nodes <= atdg.num_nodes
    nonzero = int((focused.ranked.scores > 0).sum())
    assert nonzero <= focused.subgraph_nodes


@given(dblp_transfer_graphs(), st.integers(1, 5))
@settings(max_examples=20, deadline=None)
def test_topk_agrees_with_exact_on_top_set(atdg, k):
    scorer, vector = _query_for(atdg)
    if vector is None:
        return
    exact = objectrank2(atdg, scorer, vector, tolerance=1e-10)
    fast = objectrank2_topk(atdg, scorer, vector, k=k, stable_iterations=4)
    exact_ids = {i for i, _ in exact.top_k(k)}
    fast_ids = {i for i, _ in fast.top_k(k)}
    # allow one borderline swap on near-ties
    assert len(exact_ids & fast_ids) >= k - 1


@given(
    st.lists(
        st.dictionaries(
            st.sampled_from(["a", "b", "c", "d"]),
            st.floats(0.0, 100.0, allow_nan=False),
            max_size=4,
        ),
        min_size=1,
        max_size=6,
    )
)
@settings(max_examples=60)
def test_aggregators_bounded_by_min_max(maps):
    summed = aggregate_maps(maps, "sum")
    for how in ("min", "max", "avg"):
        combined = aggregate_maps(maps, how)
        assert set(combined) == set(summed)
        for key, value in combined.items():
            values = [m[key] for m in maps if key in m]
            assert min(values) - 1e-12 <= value <= max(values) + 1e-12
    for key, value in summed.items():
        values = [m[key] for m in maps if key in m]
        assert abs(value - sum(values)) < 1e-9


@given(st.integers(1, 50), st.floats(0.0, 0.99))
@settings(max_examples=60)
def test_position_weight_bounds(rank, bias):
    weight = position_weight(rank, bias)
    assert 0.0 < weight <= 1.0
    assert weight >= 1.0 - bias


@given(
    st.lists(
        st.tuples(st.sampled_from(["x", "y", "z"]), st.integers(1, 10)),
        max_size=20,
    )
)
@settings(max_examples=60)
def test_implicit_feedback_subset_of_clicked(clicks):
    log = ClickLog()
    log.record_presentation(["x", "y", "z"])
    for node_id, rank in clicks:
        log.record_click(node_id, rank)
    selected = implicit_feedback(log, threshold=0.4)
    clicked = {node_id for node_id, _ in clicks}
    assert set(selected) <= clicked
    assert len(selected) == len(set(selected))  # no duplicates


def test_aggregators_registry_consistency():
    for name, fn in AGGREGATORS.items():
        assert fn([1.0, 3.0]) >= 0.0
        assert aggregate_maps([{"k": 2.0}], name) == {"k": 2.0}
