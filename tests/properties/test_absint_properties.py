"""Property-based tests for the abstract-interpretation layer.

Two guarantees the RL014–RL017 checkers lean on, exercised over random
inputs rather than hand-picked fixtures:

* **branch refinement is a narrowing** — for any value state and any
  branch test, every fact that survives ``refine_edge`` is contained in
  the fact it refined (an infeasible refinement must report the *edge*
  dead, never silently widen a fact to ⊤; a premature wide state that
  escapes into a loop can never be narrowed back by joins);
* **the solver terminates** within the ``WIDENING_CAP`` visit bound on
  randomly generated control flow (nested loops, branches, augmented
  assignments over unbounded arithmetic).  The interval domain has
  infinite descending chains (``b -= 1`` in a ``while`` keeps lowering a
  bound forever), so termination is a property of the cap, not of the
  domain; and whenever the solver *does* report ``converged`` its states
  must be a genuine fixpoint of the transfer functions.
"""

from __future__ import annotations

import ast

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.absint import ValueProblem, _refine_test
from repro.analysis.dataflow import WIDENING_CAP, solve
from repro.analysis.cfg import build_cfg
from repro.analysis.domains import TOP, Interval, state_get

NAMES = ("a", "b", "n")


# -- strategies ----------------------------------------------------------------

finite = st.integers(-8, 8).map(float)


@st.composite
def intervals(draw):
    low = draw(st.one_of(st.just(float("-inf")), finite))
    high = draw(st.one_of(st.just(float("inf")), finite))
    if low > high:
        low, high = high, low
    return Interval(low, high)


@st.composite
def value_states(draw):
    """A well-formed value state, honouring the transfer invariants: at
    most one fact per key, ``len:`` facts non-negative, and a name holds
    *either* a numeric interval *or* a ``len:`` fact — binding a number
    kills the length and vice versa, so a state carrying both (a nonzero
    number that is also an empty sequence) is unreachable and would make
    vacuous properties (both branch edges provably dead) pass trivially."""
    facts = []
    for name in draw(st.sets(st.sampled_from(NAMES), max_size=len(NAMES))):
        if draw(st.booleans()):
            facts.append((name, draw(intervals())))
        else:
            bounded = draw(intervals()).meet(Interval(0.0, float("inf")))
            facts.append((f"len:{name}", bounded or Interval(0.0, 0.0)))
    return frozenset(facts)


comparators = st.sampled_from(["<", "<=", ">", ">=", "==", "!="])


@st.composite
def branch_tests(draw):
    """Source text of a branch condition the refiner understands (plus
    shapes it must pass through untouched)."""
    name = draw(st.sampled_from(NAMES))
    other = draw(st.sampled_from(NAMES))
    constant = draw(st.integers(-6, 6))
    upper = constant + draw(st.integers(0, 6))
    kind = draw(
        st.sampled_from(
            [
                "compare",
                "reversed",
                "chained",
                "truthiness",
                "not",
                "len",
                "not-len",
                "name-vs-name",
                "membership",
            ]
        )
    )
    if kind == "compare":
        return f"{name} {draw(comparators)} {constant}"
    if kind == "reversed":
        return f"{constant} {draw(comparators)} {name}"
    if kind == "chained":
        return f"{constant} <= {name} < {upper}"
    if kind == "truthiness":
        return name
    if kind == "not":
        return f"not {name}"
    if kind == "len":
        return f"len({name})"
    if kind == "not-len":
        return f"not len({name})"
    if kind == "name-vs-name":
        return f"{name} {draw(comparators)} {other}"
    return f"{name} in (1, 2, 3)"


class TestRefinementNarrows:
    @given(value_states(), branch_tests(), st.booleans())
    @settings(max_examples=300, deadline=None)
    def test_refined_facts_are_contained_in_their_inputs(
        self, state, test_source, positive
    ):
        test = ast.parse(test_source, mode="eval").body
        refined = _refine_test(ValueProblem(), test, positive, state)
        if refined is None:
            return  # the edge died — strictly stronger than narrowing
        for key, before in state:
            after = state_get(refined, key) or TOP
            assert before.contains_interval(after), (
                f"refining {test_source!r} ({positive=}) widened {key}: "
                f"{before!r} -> {after!r}"
            )

    @given(value_states(), branch_tests())
    @settings(max_examples=300, deadline=None)
    def test_both_edges_never_die_together(self, state, test_source):
        """Refinement may prove one branch edge dead, never both — the
        concrete execution takes one of them."""
        test = ast.parse(test_source, mode="eval").body
        problem = ValueProblem()
        taken = _refine_test(problem, test, True, state)
        fallen = _refine_test(problem, test, False, state)
        assert taken is not None or fallen is not None


# -- random control flow -------------------------------------------------------


@st.composite
def statements(draw, depth: int = 0):
    name = draw(st.sampled_from(NAMES))
    source = draw(st.sampled_from(NAMES))
    constant = draw(st.integers(-4, 4))
    kinds = ["assign", "augadd", "augmul", "call"]
    if depth < 2:
        kinds += ["if", "while", "for"]
    kind = draw(st.sampled_from(kinds))
    indent = "    " * (depth + 1)
    if kind == "assign":
        return [f"{indent}{name} = {source} + {constant}"]
    if kind == "augadd":
        return [f"{indent}{name} += {constant}"]
    if kind == "augmul":
        return [f"{indent}{name} *= 2"]
    if kind == "call":
        return [f"{indent}{name} = len(items)"]
    test = draw(branch_tests())
    body = draw(
        st.lists(statements(depth=depth + 1), min_size=1, max_size=2)
    )
    flat = [line for chunk in body for line in chunk]
    if kind == "if":
        lines = [f"{indent}if {test}:", *flat]
        if draw(st.booleans()):
            lines += [f"{indent}else:", f"{indent}    {name} = {constant}"]
        return lines
    if kind == "while":
        return [f"{indent}while {test}:", *flat]
    return [f"{indent}for {name} in range({source}):", *flat]


@st.composite
def random_functions(draw):
    chunks = draw(st.lists(statements(), min_size=1, max_size=4))
    lines = ["def f(a, b, n, items):"]
    for chunk in chunks:
        lines.extend(chunk)
    lines.append("    return a")
    return "\n".join(lines)


class TestSolverTermination:
    @given(random_functions())
    @settings(max_examples=150, deadline=None)
    def test_value_analysis_terminates_under_the_cap(self, source):
        module = ast.parse(source)
        (func,) = module.body
        cfg = build_cfg(func)
        solution = solve(cfg, ValueProblem())
        # Each block is visited at most WIDENING_CAP + 1 times before the
        # solver gives up, so total iterations are hard-bounded.
        assert solution.iterations <= (WIDENING_CAP + 1) * len(cfg.blocks)
        # Every reachable state stays well-formed: one fact per key.
        for state in solution.outputs.values():
            if state is None:
                continue
            keys = [key for key, _ in state]
            assert len(keys) == len(set(keys))

    @given(random_functions())
    @settings(max_examples=150, deadline=None)
    def test_a_reported_fixpoint_really_is_one(self, source):
        """``converged`` is a promise: transferring any block's input must
        reproduce its recorded output, and every block's input must absorb
        each refined predecessor output (``join`` adds nothing new)."""
        module = ast.parse(source)
        (func,) = module.body
        cfg = build_cfg(func)
        problem = ValueProblem()
        solution = solve(cfg, problem)
        if not solution.converged:
            return  # the cap fired — termination is covered above
        for block in cfg.blocks:
            state = solution.state_into(block)
            assert problem.transfer_block(block, state) == solution.state_out_of(
                block
            )
            for edge in cfg.predecessors(block):
                incoming = problem.refine_edge(
                    cfg.blocks[edge.source],
                    edge.label,
                    solution.state_out_of(edge.source),
                )
                assert problem.join(state, incoming) == state
