"""Property-based tests for incremental ingest refresh correctness.

The load-bearing invariant of ``repro.ingest``: an incremental refresh in
``"exact"`` mode is *bit-identical* to a from-scratch full precompute over
the same mutated graph, while re-converging strictly fewer columns than the
vocabulary on localized (content-only) mutations.  Also covers the live
engine's warm-start soundness: warm and cold searches run to the attractor
reach bit-identical fixpoints.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import dblp_transfer_schema
from repro.ingest import IngestEngine
from repro.query.live import LiveSearchEngine
from repro.ranking.pagerank import DEFAULT_DAMPING, DEFAULT_TOLERANCE
from repro.ranking.precompute import PrecomputedRanker

from .strategies import _WORDS, dblp_graphs

# Both the warm and the cold run stop inside the convergence ball, whose
# radius is amplified by the geometric tail: ||x_k - x*|| <= tol / (1 - d).
_WARM_ATOL = 4 * DEFAULT_TOLERANCE / (1 - DEFAULT_DAMPING)


@st.composite
def graphs_with_mutations(draw, topology: bool):
    """A random DBLP graph plus a random mutation batch to apply to it."""
    graph = draw(dblp_graphs(min_papers=3, max_papers=6))
    papers = [n.node_id for n in graph.nodes() if n.label == "Paper"]
    mutations = []
    for _ in range(draw(st.integers(1, 3))):
        paper = draw(st.sampled_from(papers))
        words = draw(st.lists(st.sampled_from(_WORDS), min_size=1, max_size=4))
        mutations.append(("update", paper, " ".join(words)))
    if topology:
        kind = draw(st.sampled_from(["add_node", "add_edge", "remove_node"]))
        if kind == "add_node":
            words = draw(st.lists(st.sampled_from(_WORDS), min_size=1, max_size=3))
            mutations.append(("add_node", "paper:new", " ".join(words)))
        elif kind == "add_edge":
            source = draw(st.sampled_from(papers))
            target = draw(st.sampled_from([p for p in papers if p != source]))
            mutations.append(("add_edge", source, target))
        else:
            mutations.append(("remove_node", draw(st.sampled_from(papers)), None))
    return graph, mutations


def _apply(ingest: IngestEngine, mutations) -> None:
    for kind, a, b in mutations:
        if kind == "update":
            ingest.update_node(a, {"title": b})
        elif kind == "add_node":
            ingest.add_node(a, "Paper", {"title": b})
            ingest.add_edge("year:0", a, "contains")
            ingest.add_edge(a, "author:0", "by")
        elif kind == "add_edge":
            ingest.add_edge(a, b, "cites")
        elif kind == "remove_node":
            ingest.remove_node(a)


def _assert_matches_full_rebuild(result) -> None:
    """The incremental ranker must be indistinguishable from a cold one."""
    full = PrecomputedRanker(
        result.graph, result.index, min_document_frequency=1
    )
    assert result.ranker.keywords == full.keywords
    for keyword in full.keywords:
        assert np.array_equal(
            result.ranker.vector(keyword), full.vector(keyword)
        ), f"column {keyword!r} differs from the full rebuild"


class TestExactRefreshBitIdentity:
    @given(graphs_with_mutations(topology=False))
    @settings(max_examples=15, deadline=None)
    def test_content_mutations_bit_identical_and_localized(self, case):
        graph, mutations = case
        rates = dblp_transfer_schema()
        ingest = IngestEngine(graph, rates, min_document_frequency=1)
        first = ingest.refresh()
        _apply(ingest, mutations)
        second = ingest.refresh(previous=first.ranker)
        assert not second.full_rebuild
        # Localized: strictly fewer columns re-converged than the vocabulary.
        assert len(second.recomputed) < len(second.ranker.keywords)
        _assert_matches_full_rebuild(second)

    @given(graphs_with_mutations(topology=True))
    @settings(max_examples=10, deadline=None)
    def test_topology_mutations_still_bit_identical(self, case):
        graph, mutations = case
        rates = dblp_transfer_schema()
        ingest = IngestEngine(graph, rates, min_document_frequency=1)
        first = ingest.refresh()
        _apply(ingest, mutations)
        second = ingest.refresh(previous=first.ranker)
        assert second.carried == ()
        _assert_matches_full_rebuild(second)

    @given(graphs_with_mutations(topology=False))
    @settings(max_examples=10, deadline=None)
    def test_chained_refreshes_stay_bit_identical(self, case):
        graph, mutations = case
        rates = dblp_transfer_schema()
        ingest = IngestEngine(graph, rates, min_document_frequency=1)
        result = ingest.refresh()
        for mutation in mutations:
            _apply(ingest, [mutation])
            result = ingest.refresh(previous=result.ranker)
            _assert_matches_full_rebuild(result)


class TestWarmRefreshConvergence:
    @given(graphs_with_mutations(topology=True))
    @settings(max_examples=10, deadline=None)
    def test_warm_mode_tolerance_equal_to_full_rebuild(self, case):
        graph, mutations = case
        rates = dblp_transfer_schema()
        ingest = IngestEngine(graph, rates, min_document_frequency=1)
        first = ingest.refresh()
        _apply(ingest, mutations)
        second = ingest.refresh(previous=first.ranker, mode="warm")
        full = PrecomputedRanker(
            second.graph, second.index, min_document_frequency=1
        )
        assert second.ranker.keywords == full.keywords
        for keyword in full.keywords:
            assert np.allclose(
                second.ranker.vector(keyword), full.vector(keyword),
                atol=_WARM_ATOL,
            )


class TestLiveWarmStartFixpoint:
    @given(
        dblp_graphs(min_papers=3, max_papers=6),
        st.lists(st.sampled_from(_WORDS), min_size=1, max_size=3),
    )
    @settings(max_examples=10, deadline=None)
    def test_warm_and_cold_fixpoints_agree_to_machine_precision(self, graph, words):
        # Run to the attractor (tolerance 0): the fixpoint is a property of
        # the matrix and restart vector alone, so the renormalized carried
        # seed must land on the same attractor as the cold start.  Exact
        # bitwise equality is not attainable — at the attractor the float
        # iteration settles into an ulp-level limit cycle (f flips the last
        # bit back and forth), and warm and cold runs may stop on adjacent
        # floats of that cycle — so the assertion is agreement to a few ulps,
        # far below any tolerance-driven deviation warm-starting could cause.
        engine = LiveSearchEngine(
            graph,
            dblp_transfer_schema(),
            tolerance=0.0,
            max_iterations=2000,
        )
        query = graph.node("paper:0").attributes["title"].split()[0]
        first = engine.search(query)
        engine.add_node("paper:new", "Paper", {"title": " ".join(words)})
        engine.add_edge("year:0", "paper:new", "contains")
        engine.add_edge("paper:new", "author:0", "by")
        cold = engine.search(query)
        warm = engine.search(query, previous=first)
        np.testing.assert_allclose(
            np.asarray(cold.ranked.scores),
            np.asarray(warm.ranked.scores),
            rtol=1e-13,
            atol=0.0,
        )
