"""Property-based tests for authority-flow ranking (Equation 4 invariants)."""

import numpy as np
from hypothesis import given, settings

from repro.ir import BM25Scorer, InvertedIndex
from repro.query import QueryVector
from repro.ranking import objectrank, objectrank2

from tests.properties.strategies import dblp_transfer_graphs


def _paper_ids(atdg):
    return [n for n in atdg.node_ids if n.startswith("paper:")]


@given(dblp_transfer_graphs())
@settings(max_examples=30, deadline=None)
def test_scores_non_negative_and_substochastic(atdg):
    result = objectrank(atdg, _paper_ids(atdg), tolerance=1e-10)
    assert (result.scores >= -1e-12).all()
    assert result.scores.sum() <= 1.0 + 1e-6


@given(dblp_transfer_graphs())
@settings(max_examples=30, deadline=None)
def test_fixpoint_residual(atdg):
    """Converged scores satisfy r = d A r + (1-d) s to within tolerance."""
    base = _paper_ids(atdg)
    result = objectrank(atdg, base, damping=0.85, tolerance=1e-12)
    restart = np.zeros(atdg.num_nodes)
    for node_id, weight in result.base_weights.items():
        restart[atdg.index_of(node_id)] = weight
    reconstructed = 0.85 * (atdg.matrix() @ result.scores) + 0.15 * restart
    assert np.abs(reconstructed - result.scores).max() < 1e-9


@given(dblp_transfer_graphs())
@settings(max_examples=25, deadline=None)
def test_warm_start_reaches_same_fixpoint(atdg):
    base = _paper_ids(atdg)
    cold = objectrank(atdg, base, tolerance=1e-12)
    warm = objectrank(atdg, base, tolerance=1e-12, init=cold.scores)
    assert np.allclose(cold.scores, warm.scores, atol=1e-8)
    assert warm.iterations <= cold.iterations


@given(dblp_transfer_graphs())
@settings(max_examples=25, deadline=None)
def test_base_nodes_hold_positive_score(atdg):
    """Every base-set node receives restart mass, hence a positive score."""
    base = _paper_ids(atdg)
    result = objectrank(atdg, base, tolerance=1e-10)
    for node_id in base:
        assert result.scores[atdg.index_of(node_id)] > 0


@given(dblp_transfer_graphs())
@settings(max_examples=20, deadline=None)
def test_objectrank2_base_weights_normalized(atdg):
    index = InvertedIndex.from_graph(atdg.data_graph)
    scorer = BM25Scorer(index)
    vector = QueryVector({"olap": 1.0, "xml": 1.0, "cube": 1.0})
    try:
        result = objectrank2(atdg, scorer, vector, tolerance=1e-10)
    except Exception as error:  # no paper contains these words
        from repro.errors import EmptyBaseSetError

        assert isinstance(error, EmptyBaseSetError)
        return
    assert abs(sum(result.base_weights.values()) - 1.0) < 1e-9
    assert all(w > 0 for w in result.base_weights.values())


@given(dblp_transfer_graphs())
@settings(max_examples=20, deadline=None)
def test_damping_extremes_interpolate(atdg):
    """Low damping pins scores to the base set; high damping spreads them."""
    base = _paper_ids(atdg)
    low = objectrank(atdg, base, damping=0.05, tolerance=1e-12)
    base_mass_low = sum(low.scores[atdg.index_of(n)] for n in base)
    high = objectrank(atdg, base, damping=0.95, tolerance=1e-12)
    base_mass_high = sum(high.scores[atdg.index_of(n)] for n in base)
    assert base_mass_low / low.scores.sum() >= base_mass_high / high.scores.sum() - 1e-6
