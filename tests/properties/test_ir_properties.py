"""Property-based tests for the IR substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.feedback import cosine_similarity, precision_at_k
from repro.ir import Analyzer, BM25Scorer, InvertedIndex, tokenize

texts = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd", "Zs", "Po")),
    max_size=80,
)
documents = st.lists(
    st.tuples(st.uuids().map(str), texts), min_size=1, max_size=10, unique_by=lambda d: d[0]
)


@given(texts)
@settings(max_examples=60)
def test_tokenize_idempotent(text):
    tokens = tokenize(text)
    assert tokenize(" ".join(tokens)) == tokens


@given(texts)
@settings(max_examples=60)
def test_tokens_are_lowercase_alnum(text):
    for token in tokenize(text):
        assert token == token.lower()
        assert token.isalnum()


@given(documents)
@settings(max_examples=40)
def test_df_equals_postings_length(docs):
    index = InvertedIndex.from_documents(docs)
    for term in index.vocabulary():
        assert index.document_frequency(term) == len(index.postings(term))


@given(documents)
@settings(max_examples=40)
def test_doc_terms_consistent_with_postings(docs):
    index = InvertedIndex.from_documents(docs)
    for doc_id, _ in docs:
        for term, tf in index.terms_of_document(doc_id).items():
            assert index.term_frequency(term, doc_id) == tf


@given(documents)
@settings(max_examples=40)
def test_remove_all_leaves_empty_index(docs):
    index = InvertedIndex.from_documents(docs)
    for doc_id, _ in docs:
        index.remove_document(doc_id)
    assert index.num_documents == 0
    assert index.vocabulary() == []
    assert index.average_document_length == 0.0


@given(documents)
@settings(max_examples=40)
def test_bm25_weight_positive_iff_tf_positive_and_idf_positive(docs):
    index = InvertedIndex.from_documents(docs)
    scorer = BM25Scorer(index)
    for doc_id, _ in docs:
        for term in index.vocabulary():
            weight = scorer.weight(doc_id, term)
            if index.term_frequency(term, doc_id) == 0 or scorer.idf(term) == 0.0:
                assert weight == 0.0
            else:
                assert weight > 0.0


@given(st.lists(st.floats(0, 10), min_size=1, max_size=12))
@settings(max_examples=60)
def test_cosine_bounds_and_self_similarity(vector):
    # Guard on the squared norm: entries like 5e-324 underflow to norm 0,
    # where the function's zero-vector convention (similarity 0) applies.
    if sum(v * v for v in vector) > 0:
        assert cosine_similarity(vector, vector) == __import__("pytest").approx(1.0)
    value = cosine_similarity(vector, list(reversed(vector)))
    assert -1e-9 <= value <= 1.0 + 1e-9


@given(
    st.lists(st.uuids().map(str), min_size=1, max_size=20, unique=True),
    st.data(),
)
@settings(max_examples=40)
def test_precision_bounds(ranking, data):
    relevant = set(
        data.draw(st.lists(st.sampled_from(ranking), max_size=len(ranking)))
    )
    k = data.draw(st.integers(1, len(ranking)))
    value = precision_at_k(ranking, relevant, k)
    assert 0.0 <= value <= 1.0
