"""Property tests: the blocked engine is the serial engine, column for column.

The tentpole claim of ``repro.ranking.batch`` is that blocking is a pure
performance change — per column, scores (≤1e-12), iteration counts and
convergence flags all match a serial
:func:`~repro.ranking.pagerank.power_iteration` run, and residual traces
match to a few ulps (they are recorded in a vectorized summation order).
These properties check that over random conforming DBLP graphs and random
restart blocks, in both compaction modes.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ranking import (
    batched_objectrank,
    batched_power_iteration,
    objectrank,
    power_iteration,
)

from tests.properties.strategies import dblp_transfer_graphs


@st.composite
def graphs_with_restart_blocks(draw):
    """A random transfer graph plus a random (n, k) restart block."""
    atdg = draw(dblp_transfer_graphs())
    k = draw(st.integers(1, 5))
    n = atdg.num_nodes
    columns = []
    for _ in range(k):
        weights = draw(
            st.lists(
                st.floats(0.0, 1.0, allow_nan=False), min_size=n, max_size=n
            )
        )
        column = np.asarray(weights)
        if column.sum() == 0:
            column[draw(st.integers(0, n - 1))] = 1.0
        columns.append(column / column.sum())
    return atdg, np.stack(columns, axis=1)


@given(graphs_with_restart_blocks(), st.booleans())
@settings(max_examples=25, deadline=None)
def test_blocked_matches_serial_column_by_column(graph_and_block, compact):
    atdg, restarts = graph_and_block
    matrix = atdg.matrix()
    batch = batched_power_iteration(
        matrix, restarts, tolerance=1e-8, compact=compact
    )
    for j in range(restarts.shape[1]):
        serial = power_iteration(matrix, restarts[:, j], tolerance=1e-8)
        column = batch.column(j)
        assert column.iterations == serial.iterations
        assert column.converged == serial.converged
        assert np.abs(column.scores - serial.scores).max() <= 1e-12
        assert len(column.residuals) == len(serial.residuals)
        assert np.allclose(column.residuals, serial.residuals, rtol=1e-9)


@given(dblp_transfer_graphs(), st.data())
@settings(max_examples=20, deadline=None)
def test_batched_objectrank_matches_serial(atdg, data):
    papers = [n for n in atdg.node_ids if n.startswith("paper:")]
    k = data.draw(st.integers(1, 3))
    base_sets = [
        data.draw(
            st.lists(st.sampled_from(papers), min_size=1, unique=True)
        )
        for _ in range(k)
    ]
    batched = batched_objectrank(atdg, base_sets, tolerance=1e-9)
    for base, result in zip(base_sets, batched):
        serial = objectrank(atdg, base, tolerance=1e-9)
        assert result.iterations == serial.iterations
        assert result.converged == serial.converged
        assert np.abs(result.scores - serial.scores).max() <= 1e-12
        assert result.base_weights == serial.base_weights
