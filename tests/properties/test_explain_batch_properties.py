"""Property tests: batched explanations are bit-identical to serial.

Every draw exercises the full pipeline — subgraph extraction and the
flow-adjustment fixpoint — and asserts exact (not approximate) equality
between ``repro.explain.batch`` and the serial ``build_explaining_subgraph``
+ ``adjust_flows`` path.  The default strategy uses ``epsilon=0.0``, so the
transfer graphs contain zero-rate (backward) edges; degenerate draws cover
empty base sets and targets with no positive-rate path from the base set.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.explain import (
    adjust_flows,
    batched_adjust_flows,
    batched_build_explaining_subgraphs,
    build_explaining_subgraph,
)
from repro.ranking import objectrank

from tests.properties.strategies import dblp_transfer_graphs

_RADII = st.one_of(st.none(), st.integers(1, 4))


def _targets(atdg, seed):
    """A mixed-type target list: papers, an author, and the conference.

    The conference node often has no positive-rate path from the base set
    under ``epsilon=0.0`` — the unreachable-target degenerate case.
    """
    node_ids = list(atdg.node_ids)
    papers = [n for n in node_ids if n.startswith("paper:")]
    rotated = papers[seed % len(papers) :] + papers[: seed % len(papers)]
    return rotated[:5] + ["author:0", "conf:0"]


def assert_bit_identical(serial, batched):
    sg, bg = serial.subgraph, batched.subgraph
    assert sg.target == bg.target
    assert sg.nodes == bg.nodes
    assert np.array_equal(sg.edge_ids, bg.edge_ids)
    assert sg.base_nodes == bg.base_nodes
    assert sg.depth_to_target == bg.depth_to_target
    assert np.array_equal(serial.original_flows, batched.original_flows)
    assert np.array_equal(serial.flows, batched.flows)
    assert serial.reduction == batched.reduction
    assert serial.iterations == batched.iterations
    assert serial.converged == batched.converged
    assert serial.residuals == batched.residuals


@given(dblp_transfer_graphs(), _RADII, st.integers(0, 100))
@settings(max_examples=25, deadline=None)
def test_batched_equals_serial(atdg, radius, seed):
    papers = [n for n in atdg.node_ids if n.startswith("paper:")]
    result = objectrank(atdg, papers, damping=0.85, tolerance=1e-10)
    targets = _targets(atdg, seed)
    subgraphs = batched_build_explaining_subgraphs(atdg, papers, targets, radius)
    explanations = batched_adjust_flows(subgraphs, result.scores, 0.85, 1e-10)
    for target, batched in zip(targets, explanations):
        serial = adjust_flows(
            build_explaining_subgraph(atdg, papers, target, radius),
            result.scores,
            0.85,
            1e-10,
        )
        assert_bit_identical(serial, batched)


@given(dblp_transfer_graphs(), _RADII, st.integers(0, 100))
@settings(max_examples=15, deadline=None)
def test_batched_equals_serial_empty_base(atdg, radius, seed):
    """Empty base set: every subgraph degenerates to the lone target."""
    papers = [n for n in atdg.node_ids if n.startswith("paper:")]
    result = objectrank(atdg, papers, damping=0.85, tolerance=1e-10)
    targets = _targets(atdg, seed)
    subgraphs = batched_build_explaining_subgraphs(atdg, [], targets, radius)
    explanations = batched_adjust_flows(subgraphs, result.scores, 0.85, 1e-10)
    for target, batched in zip(targets, explanations):
        serial = adjust_flows(
            build_explaining_subgraph(atdg, [], target, radius),
            result.scores,
            0.85,
            1e-10,
        )
        assert_bit_identical(serial, batched)
        assert batched.subgraph.is_empty


@given(dblp_transfer_graphs(), st.integers(0, 100), st.integers(1, 4))
@settings(max_examples=15, deadline=None)
def test_batched_equals_serial_with_workers(atdg, seed, workers):
    """Thread-pooled extraction changes nothing about the output."""
    papers = [n for n in atdg.node_ids if n.startswith("paper:")]
    result = objectrank(atdg, papers, damping=0.85, tolerance=1e-10)
    targets = _targets(atdg, seed)
    subgraphs = batched_build_explaining_subgraphs(
        atdg, papers, targets, workers=workers
    )
    explanations = batched_adjust_flows(subgraphs, result.scores, 0.85, 1e-10)
    for target, batched in zip(targets, explanations):
        serial = adjust_flows(
            build_explaining_subgraph(atdg, papers, target),
            result.scores,
            0.85,
            1e-10,
        )
        assert_bit_identical(serial, batched)
