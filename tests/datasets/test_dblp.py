"""Unit tests for the synthetic DBLP generator."""

import pytest

from repro.datasets import DblpConfig, generate_dblp
from repro.errors import DatasetError
from repro.graph import check_conformance


@pytest.fixture(scope="module")
def dataset():
    return generate_dblp(DblpConfig(num_papers=200, num_authors=60, seed=3))


class TestGeneration:
    def test_conforms_to_schema(self, dataset):
        check_conformance(dataset.data_graph, dataset.schema)

    def test_label_population(self, dataset):
        counts = dataset.data_graph.label_counts()
        assert counts["Paper"] == 200
        # Only authors with at least one paper are materialized.
        assert 0 < counts["Author"] <= 60
        assert counts["Conference"] == 12
        assert counts["Year"] == 12 * 18  # conferences x years

    def test_every_author_has_a_paper(self, dataset):
        graph = dataset.data_graph
        for author in graph.nodes_with_label("Author"):
            assert graph.in_degree(author.node_id) > 0

    def test_every_paper_has_year_and_author(self, dataset):
        graph = dataset.data_graph
        for paper in graph.nodes_with_label("Paper"):
            roles = [e.role for e in graph.in_edges(paper.node_id)]
            assert "contains" in roles
            assert any(e.role == "by" for e in graph.out_edges(paper.node_id))

    def test_citations_point_to_older_papers(self, dataset):
        """Generation order is chronological: citing id > cited id."""
        for edge in dataset.data_graph.edges():
            if edge.role == "cites":
                citing = int(edge.source.split(":")[1])
                cited = int(edge.target.split(":")[1])
                assert citing > cited

    def test_no_self_citations(self, dataset):
        for edge in dataset.data_graph.edges():
            if edge.role == "cites":
                assert edge.source != edge.target

    def test_titles_are_topical(self, dataset):
        topics = dataset.extras["paper_topics"]
        assert set(topics) == {
            n.node_id for n in dataset.data_graph.nodes_with_label("Paper")
        }

    def test_citation_skew(self, dataset):
        """Preferential attachment: the most-cited paper collects far more
        citations than the median paper."""
        in_cites = {}
        for edge in dataset.data_graph.edges():
            if edge.role == "cites":
                in_cites[edge.target] = in_cites.get(edge.target, 0) + 1
        counts = sorted(in_cites.values(), reverse=True)
        assert counts[0] >= 5

    def test_deterministic(self):
        config = DblpConfig(num_papers=50, num_authors=20, seed=42)
        first = generate_dblp(config)
        second = generate_dblp(config)
        assert first.data_graph.node_ids() == second.data_graph.node_ids()
        assert first.data_graph.edges() == second.data_graph.edges()

    def test_seed_changes_output(self):
        base = DblpConfig(num_papers=50, num_authors=20, seed=1)
        other = DblpConfig(num_papers=50, num_authors=20, seed=2)
        assert generate_dblp(base).data_graph.edges() != generate_dblp(other).data_graph.edges()


class TestValidation:
    def test_positive_sizes_required(self):
        with pytest.raises(DatasetError):
            DblpConfig(num_papers=0)

    def test_year_range_checked(self):
        with pytest.raises(DatasetError):
            DblpConfig(first_year=2000, last_year=1999)

    def test_topic_coherence_bounds(self):
        with pytest.raises(DatasetError):
            DblpConfig(topic_coherence=1.5)
