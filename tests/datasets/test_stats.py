"""Unit tests for Table-1-style dataset statistics."""

import pytest

from repro.datasets import dataset_statistics
from repro.datasets.figure1 import figure1_dataset


class TestStatistics:
    def test_counts(self):
        stats = dataset_statistics(figure1_dataset())
        assert stats.name == "figure1"
        assert stats.num_nodes == 7
        assert stats.num_edges == 9

    def test_size_positive(self):
        stats = dataset_statistics(figure1_dataset())
        assert stats.size_bytes > 0
        assert stats.size_megabytes == pytest.approx(stats.size_bytes / 1048576)

    def test_label_counts(self):
        stats = dataset_statistics(figure1_dataset())
        assert stats.label_counts == {
            "Paper": 4, "Conference": 1, "Year": 1, "Author": 1,
        }

    def test_row_format(self):
        row = dataset_statistics(figure1_dataset()).row()
        assert row[0] == "figure1"
        assert row[1] == 7 and row[2] == 9
        assert row[3].replace(".", "").isdigit()
