"""Unit tests for structural dataset analysis."""

import pytest

from repro.datasets import (
    citation_topic_purity,
    gini_coefficient,
    in_degree_distribution,
    structural_summary,
)
from repro.graph import DataGraph


class TestGini:
    def test_equal_distribution_is_zero(self):
        assert gini_coefficient([5, 5, 5, 5]) == pytest.approx(0.0, abs=1e-9)

    def test_total_concentration_near_one(self):
        value = gini_coefficient([0] * 99 + [100])
        assert value > 0.95

    def test_empty_and_zero(self):
        assert gini_coefficient([]) == 0.0
        assert gini_coefficient([0, 0]) == 0.0

    def test_monotone_in_skew(self):
        mild = gini_coefficient([1, 2, 3, 4])
        wild = gini_coefficient([0, 0, 1, 9])
        assert wild > mild


class TestDegrees:
    def test_in_degree_by_role(self):
        graph = DataGraph()
        graph.add_node("a", "Paper")
        graph.add_node("b", "Paper")
        graph.add_node("x", "Author")
        graph.add_edge("a", "b", "cites")
        graph.add_edge("a", "x", "by")
        degrees = in_degree_distribution(graph, role="cites")
        assert degrees == {"a": 0, "b": 1, "x": 0}
        all_roles = in_degree_distribution(graph)
        assert all_roles["x"] == 1


class TestDatasetSummaries:
    def test_dblp_generator_has_required_structure(self, dblp_tiny):
        summary = structural_summary(dblp_tiny)
        # Skewed citations + topical clustering: the substitution argument.
        assert summary.citation_gini >= 0.3
        assert summary.topic_purity >= 0.5
        assert summary.is_plausible_bibliographic_graph()

    def test_topic_purity_tracks_generator_coherence(self):
        from repro.datasets import DblpConfig, generate_dblp

        coherent = generate_dblp(
            DblpConfig(num_papers=300, num_authors=60, topic_coherence=0.95, seed=1)
        )
        scattered = generate_dblp(
            DblpConfig(num_papers=300, num_authors=60, topic_coherence=0.05, seed=1)
        )
        assert citation_topic_purity(coherent) > citation_topic_purity(scattered)

    def test_purity_zero_without_labels(self, dblp_tiny):
        import dataclasses

        stripped = dataclasses.replace(dblp_tiny, extras={})
        assert citation_topic_purity(stripped) == 0.0

    def test_no_isolated_nodes_in_dblp(self, dblp_tiny):
        assert structural_summary(dblp_tiny).isolated_nodes == 0
