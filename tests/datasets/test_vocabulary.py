"""Unit tests for the topic vocabularies and synthetic text helpers."""

import random

from repro.datasets import BIOLOGY_TOPICS, DATABASE_TOPICS
from repro.datasets.vocabulary import (
    make_gene_symbol,
    make_person_name,
    make_title,
    topic_by_name,
)


class TestTopics:
    def test_topics_have_distinct_names(self):
        names = [t.name for t in DATABASE_TOPICS]
        assert len(names) == len(set(names))

    def test_topic_by_name(self):
        assert topic_by_name(DATABASE_TOPICS, "olap").name == "olap"

    def test_topic_by_name_unknown(self):
        import pytest

        with pytest.raises(KeyError):
            topic_by_name(DATABASE_TOPICS, "nope")

    def test_bio_topics_include_cancer(self):
        assert any(t.name == "cancer" for t in BIOLOGY_TOPICS)


class TestTextHelpers:
    def test_title_contains_topic_word(self):
        rng = random.Random(0)
        topic = topic_by_name(DATABASE_TOPICS, "olap")
        for _ in range(20):
            title = make_title(rng, topic)
            assert any(word in title.split() for word in topic.words)

    def test_title_length_bounds(self):
        rng = random.Random(1)
        topic = DATABASE_TOPICS[0]
        for _ in range(20):
            words = make_title(rng, topic, min_words=4, max_words=6).split()
            assert 4 <= len(words) <= 6

    def test_person_name_format(self):
        rng = random.Random(2)
        name = make_person_name(rng)
        initial, surname = name.split(" ")
        assert initial.endswith(".")
        assert surname[0].isupper()

    def test_gene_symbol_format(self):
        rng = random.Random(3)
        symbol = make_gene_symbol(rng)
        assert symbol[:-1].rstrip("0123456789").isupper()

    def test_determinism(self):
        topic = DATABASE_TOPICS[0]
        assert make_title(random.Random(7), topic) == make_title(random.Random(7), topic)
