"""Unit tests for keyword-focused dataset subsets (the DS7cancer derivation)."""

import pytest

from repro.datasets import keyword_subset
from repro.errors import DatasetError
from repro.graph import check_conformance


class TestKeywordSubset:
    def test_seeds_contain_keyword(self, bio_tiny):
        subset = keyword_subset(bio_tiny, "cancer", hops=0, seed_labels=("PubMed",))
        for node in subset.data_graph.nodes():
            assert "cancer" in node.text().lower()

    def test_hop_expansion_adds_neighbors(self, bio_tiny):
        zero = keyword_subset(bio_tiny, "cancer", hops=0, seed_labels=("PubMed",))
        one = keyword_subset(bio_tiny, "cancer", hops=1, seed_labels=("PubMed",))
        assert one.num_nodes > zero.num_nodes

    def test_subset_conforms_to_schema(self, bio_tiny):
        subset = keyword_subset(bio_tiny, "cancer", hops=1, seed_labels=("PubMed",))
        check_conformance(subset.data_graph, subset.schema)

    def test_edges_are_induced(self, bio_tiny):
        subset = keyword_subset(bio_tiny, "cancer", hops=1, seed_labels=("PubMed",))
        ids = set(subset.data_graph.node_ids())
        for edge in subset.data_graph.edges():
            assert edge.source in ids and edge.target in ids

    def test_seed_label_filter(self, bio_tiny):
        pubs_only = keyword_subset(bio_tiny, "cancer", hops=0, seed_labels=("PubMed",))
        assert {n.label for n in pubs_only.data_graph.nodes()} == {"PubMed"}

    def test_default_name(self, bio_tiny):
        subset = keyword_subset(bio_tiny, "cancer", hops=1)
        assert subset.name == "bio_tiny_cancer"
        assert subset.extras["subset_keyword"] == "cancer"

    def test_unknown_keyword_rejected(self, bio_tiny):
        with pytest.raises(DatasetError):
            keyword_subset(bio_tiny, "zzzznotaword")

    def test_negative_hops_rejected(self, bio_tiny):
        with pytest.raises(DatasetError):
            keyword_subset(bio_tiny, "cancer", hops=-1)

    def test_transfer_schema_preserved(self, bio_tiny):
        subset = keyword_subset(bio_tiny, "cancer", hops=1)
        assert subset.transfer_schema == bio_tiny.transfer_schema
