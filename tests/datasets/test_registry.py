"""Unit tests for the dataset registry (Table 1 at laptop scale)."""

import pytest

from repro.datasets import TABLE1_DATASETS, dataset_names, load_dataset
from repro.errors import DatasetError


class TestRegistry:
    def test_known_names(self):
        names = dataset_names()
        for expected in TABLE1_DATASETS:
            assert expected in names
        assert "dblp_tiny" in names
        assert "bio_tiny" in names

    def test_unknown_name_rejected(self):
        with pytest.raises(DatasetError):
            load_dataset("nope")

    def test_invalid_scale_rejected(self):
        with pytest.raises(DatasetError):
            load_dataset("dblp_tiny", scale=0)

    def test_scale_changes_size(self):
        small = load_dataset("dblp_tiny", scale=0.5)
        large = load_dataset("dblp_tiny", scale=2.0)
        assert large.num_nodes > small.num_nodes

    def test_relative_sizes_match_table1(self):
        """complete >> top and ds7 >> ds7cancer, as in the paper."""
        top = load_dataset("dblp_tiny", scale=1.0)
        tiny_bio = load_dataset("bio_tiny", scale=1.0)
        assert top.num_nodes > 0 and tiny_bio.num_nodes > 0
        # Full-size ratio checks run in the Table 1 benchmark; here we only
        # verify the tiny datasets exist and are distinct.
        assert top.name == "dblp_tiny"
        assert tiny_bio.name == "bio_tiny"

    def test_determinism_per_seed(self):
        first = load_dataset("dblp_tiny", seed=3)
        second = load_dataset("dblp_tiny", seed=3)
        assert first.data_graph.edges() == second.data_graph.edges()

    def test_ds7_cancer_is_subset_of_ds7(self):
        ds7 = load_dataset("ds7", scale=0.05)
        cancer = load_dataset("ds7_cancer", scale=0.05)
        assert cancer.num_nodes < ds7.num_nodes
        ds7_ids = set(ds7.data_graph.node_ids())
        assert set(cancer.data_graph.node_ids()) <= ds7_ids
