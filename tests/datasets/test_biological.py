"""Unit tests for the synthetic biological generator."""

import pytest

from repro.datasets import BiologicalConfig, generate_biological
from repro.errors import DatasetError
from repro.graph import check_conformance


@pytest.fixture(scope="module")
def dataset():
    return generate_biological(
        BiologicalConfig(num_genes=80, num_publications=300, num_omim=25, seed=5)
    )


class TestGeneration:
    def test_conforms_to_figure4_schema(self, dataset):
        check_conformance(dataset.data_graph, dataset.schema)

    def test_population(self, dataset):
        counts = dataset.data_graph.label_counts()
        assert counts["EntrezGene"] == 80
        assert counts["PubMed"] == 300
        assert counts["OMIM"] == 25
        assert counts.get("EntrezProtein", 0) > 0
        assert counts.get("EntrezNucleotide", 0) > 0

    def test_gene_satellites_linked(self, dataset):
        """Every protein/nucleotide hangs off exactly one gene."""
        graph = dataset.data_graph
        for label, role in (
            ("EntrezProtein", "geneProteinAssociates"),
            ("EntrezNucleotide", "geneNucleotideAssociates"),
        ):
            for node in graph.nodes_with_label(label):
                in_roles = [e.role for e in graph.in_edges(node.node_id)]
                assert in_roles.count(role) == 1

    def test_publication_topics_recorded(self, dataset):
        topics = dataset.extras["publication_topics"]
        assert len(topics) == 300
        assert set(topics.values()) <= {
            "cancer", "immunology", "neuroscience", "cardiovascular",
            "metabolism", "genetics",
        }

    def test_cancer_publications_exist(self, dataset):
        """DS7cancer derivation needs a topical 'cancer' community."""
        from repro.ir import InvertedIndex

        index = InvertedIndex.from_graph(dataset.data_graph)
        cancer_docs = index.documents_with_term("cancer")
        assert len(cancer_docs) >= 10

    def test_deterministic(self):
        config = BiologicalConfig(num_genes=30, num_publications=100, num_omim=10, seed=9)
        first = generate_biological(config)
        second = generate_biological(config)
        assert first.data_graph.edges() == second.data_graph.edges()

    def test_ground_truth_rates_convergent(self, dataset):
        assert dataset.ground_truth_rates.is_convergent()


class TestValidation:
    def test_positive_sizes(self):
        with pytest.raises(DatasetError):
            BiologicalConfig(num_genes=0)
