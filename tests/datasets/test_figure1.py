"""Unit tests for the Figure 1 running-example dataset."""

import pytest

from repro.datasets.figure1 import figure1_dataset
from repro.graph import check_conformance


@pytest.fixture(scope="module")
def dataset():
    return figure1_dataset()


class TestFigure1:
    def test_size(self, dataset):
        assert dataset.num_nodes == 7
        assert dataset.num_edges == 9

    def test_conforms_to_dblp_schema(self, dataset):
        check_conformance(dataset.data_graph, dataset.schema)

    def test_node_labels(self, dataset):
        assert dataset.data_graph.label_counts() == {
            "Paper": 4, "Conference": 1, "Year": 1, "Author": 1,
        }

    def test_titles_match_paper(self, dataset):
        assert "Data Cube" in dataset.data_graph.node("v7").attributes["title"]
        assert "Range Queries" in dataset.data_graph.node("v4").attributes["title"]

    def test_citation_structure(self, dataset):
        cites = {
            (e.source, e.target)
            for e in dataset.data_graph.edges()
            if e.role == "cites"
        }
        assert cites == {("v1", "v7"), ("v5", "v7"), ("v5", "v1"), ("v4", "v7")}

    def test_agrawal_authors_two_papers(self, dataset):
        authored = [
            e.source for e in dataset.data_graph.in_edges("v6") if e.role == "by"
        ]
        assert sorted(authored) == ["v4", "v5"]

    def test_rates_are_figure3(self, dataset):
        from repro.datasets import DBLP_GROUND_TRUTH_VECTOR, dblp_edge_order

        order = dblp_edge_order(dataset.schema)
        assert dataset.transfer_schema.as_vector(order) == pytest.approx(
            DBLP_GROUND_TRUTH_VECTOR
        )

    def test_fresh_instance_each_call(self):
        first = figure1_dataset()
        second = figure1_dataset()
        assert first.data_graph is not second.data_graph
