"""Unit tests for the live (evolving-database) search engine."""

import pytest

from repro.datasets.figure1 import figure1_dataset
from repro.errors import ConformanceError, UnknownNodeError
from repro.query.live import LiveSearchEngine


@pytest.fixture
def engine():
    dataset = figure1_dataset()
    return LiveSearchEngine(
        dataset.data_graph, dataset.transfer_schema, tolerance=1e-8
    )


class TestMutation:
    def test_new_node_searchable_immediately(self, engine):
        engine.add_node("p_new", "Paper", {"title": "Adaptive OLAP dashboards"})
        result = engine.search("dashboards")
        assert result.top[0][0] == "p_new"

    def test_new_edge_changes_ranking(self, engine):
        before = engine.search("OLAP", top_k=8)
        engine.add_node("p_new", "Paper", {"title": "A survey citing Data Cube"})
        engine.add_edge("p_new", "v7", "cites")
        after = engine.search("OLAP", top_k=8)
        v7_before = before.ranked.score_of("v7")
        v7_after = after.ranked.score_of("v7")
        # v7 gains another citation; its relative mass cannot collapse.
        assert v7_after > 0
        assert after.ranked.ranking()[0] == "v7"
        assert v7_before > 0

    def test_pending_counter_and_lazy_rebuild(self, engine):
        assert engine.pending_updates == 0
        engine.add_node("x1", "Author", {"name": "New Author"})
        engine.add_node("x2", "Author", {"name": "Other Author"})
        assert engine.pending_updates == 2
        _ = engine.graph  # forces rebuild
        assert engine.pending_updates == 0

    def test_edge_requires_existing_nodes(self, engine):
        with pytest.raises(UnknownNodeError):
            engine.add_edge("nope", "v7", "cites")

    def test_nonconforming_insert_fails_on_next_search(self, engine):
        engine.add_node("weird", "Venue", {"name": "not in schema"})
        with pytest.raises(ConformanceError):
            engine.search("OLAP")

    def test_update_node_reindexes_document(self, engine):
        from repro.errors import EmptyBaseSetError

        engine.update_node("v7", {"title": "Incremental Sketches"})
        assert engine.search("sketches").top[0][0] == "v7"
        # v7 was the only object containing "cube"; after the rewrite the
        # term matches nothing — the old posting must be gone, not stale.
        with pytest.raises(EmptyBaseSetError):
            engine.search("cube")

    def test_remove_node_forgets_object_and_edges(self, engine):
        before = engine.search("OLAP", top_k=8)
        assert "v7" in [node_id for node_id, _ in before.top]
        engine.remove_node("v7")
        after = engine.search("OLAP", top_k=8)
        assert "v7" not in [node_id for node_id, _ in after.top]
        assert after.ranked.node_ids == [
            node_id for node_id in before.ranked.node_ids if node_id != "v7"
        ]

    def test_remove_edge_changes_ranking_inputs(self, engine):
        data_edges = engine.data_graph.num_edges
        transfer_before = engine.graph.num_edges
        engine.remove_edge("v1", "v7", "cites")
        assert engine.data_graph.num_edges == data_edges - 1
        # One data edge materializes a forward and a backward transfer edge.
        assert engine.graph.num_edges == transfer_before - 2


class TestPendingUpdateAccounting:
    def test_every_successful_mutation_counts_once(self, engine):
        engine.add_node("p_new", "Paper", {"title": "OLAP once more"})
        engine.add_edge("p_new", "v7", "cites")
        engine.update_node("p_new", {"title": "OLAP twice more"})
        engine.remove_edge("p_new", "v7", "cites")
        engine.remove_node("p_new")
        assert engine.pending_updates == 5

    def test_failed_add_edge_does_not_drift_counter(self, engine):
        with pytest.raises(UnknownNodeError):
            engine.add_edge("ghost", "v7", "cites")
        assert engine.pending_updates == 0

    def test_failed_remove_node_does_not_drift_counter(self, engine):
        with pytest.raises(UnknownNodeError):
            engine.remove_node("ghost")
        assert engine.pending_updates == 0
        # The index must still know every original document.
        assert engine.search("OLAP").top

    def test_failed_remove_edge_does_not_drift_counter(self, engine):
        from repro.errors import GraphError

        with pytest.raises(GraphError):
            engine.remove_edge("v1", "v7", "no-such-role")
        assert engine.pending_updates == 0

    def test_failed_update_does_not_touch_index(self, engine):
        from repro.errors import EmptyBaseSetError

        with pytest.raises(UnknownNodeError):
            engine.update_node("ghost", {"title": "phantom sketches"})
        assert engine.pending_updates == 0
        with pytest.raises(EmptyBaseSetError):
            engine.search("phantom")

    def test_counter_resets_only_on_rebuild(self, engine):
        engine.add_node("p_new", "Paper", {"title": "OLAP anew"})
        engine.remove_node("p_new")
        assert engine.pending_updates == 2
        _ = engine.graph
        assert engine.pending_updates == 0


class TestWarmStartAcrossUpdates:
    def test_carry_over_preserves_surviving_scores(self, engine):
        first = engine.search("OLAP")
        engine.add_node("p_new", "Paper", {"title": "Fresh OLAP work"})
        carried = engine.carry_over_scores(first)
        graph = engine.graph
        # Carried mass is renormalized to a distribution; surviving nodes
        # keep their score up to the common scale, new nodes get the
        # uniform prior up to the same scale.
        assert carried.sum() == pytest.approx(1.0)
        v7 = graph.index_of("v7")
        fresh = graph.index_of("p_new")
        expected_ratio = first.ranked.score_of("v7") / (1.0 / graph.num_nodes)
        assert carried[v7] / carried[fresh] == pytest.approx(expected_ratio)

    def test_carry_over_none_without_previous(self, engine):
        assert engine.carry_over_scores(None) is None

    def test_warm_search_converges_faster_after_insert(self, engine):
        first = engine.search("OLAP")
        engine.add_node("p_new", "Paper", {"title": "More OLAP cubes"})
        engine.add_edge("p_new", "v7", "cites")
        cold = engine.search("OLAP")
        warm = engine.search("OLAP", previous=first)
        assert warm.ranked.ranking() == cold.ranked.ranking()
        assert warm.iterations <= cold.iterations

    def test_same_fixpoint_with_and_without_carry(self, engine):
        first = engine.search("OLAP")
        engine.add_node("p_new", "Paper", {"title": "OLAP again"})
        cold = engine.search("OLAP")
        warm = engine.search("OLAP", previous=first)
        assert warm.ranked.scores == pytest.approx(cold.ranked.scores, abs=1e-5)
