"""Unit tests for the live (evolving-database) search engine."""

import pytest

from repro.datasets.figure1 import figure1_dataset
from repro.errors import ConformanceError, UnknownNodeError
from repro.query.live import LiveSearchEngine


@pytest.fixture
def engine():
    dataset = figure1_dataset()
    return LiveSearchEngine(
        dataset.data_graph, dataset.transfer_schema, tolerance=1e-8
    )


class TestMutation:
    def test_new_node_searchable_immediately(self, engine):
        engine.add_node("p_new", "Paper", {"title": "Adaptive OLAP dashboards"})
        result = engine.search("dashboards")
        assert result.top[0][0] == "p_new"

    def test_new_edge_changes_ranking(self, engine):
        before = engine.search("OLAP", top_k=8)
        engine.add_node("p_new", "Paper", {"title": "A survey citing Data Cube"})
        engine.add_edge("p_new", "v7", "cites")
        after = engine.search("OLAP", top_k=8)
        v7_before = before.ranked.score_of("v7")
        v7_after = after.ranked.score_of("v7")
        # v7 gains another citation; its relative mass cannot collapse.
        assert v7_after > 0
        assert after.ranked.ranking()[0] == "v7"
        assert v7_before > 0

    def test_pending_counter_and_lazy_rebuild(self, engine):
        assert engine.pending_updates == 0
        engine.add_node("x1", "Author", {"name": "New Author"})
        engine.add_node("x2", "Author", {"name": "Other Author"})
        assert engine.pending_updates == 2
        _ = engine.graph  # forces rebuild
        assert engine.pending_updates == 0

    def test_edge_requires_existing_nodes(self, engine):
        with pytest.raises(UnknownNodeError):
            engine.add_edge("nope", "v7", "cites")

    def test_nonconforming_insert_fails_on_next_search(self, engine):
        engine.add_node("weird", "Venue", {"name": "not in schema"})
        with pytest.raises(ConformanceError):
            engine.search("OLAP")


class TestWarmStartAcrossUpdates:
    def test_carry_over_preserves_surviving_scores(self, engine):
        first = engine.search("OLAP")
        engine.add_node("p_new", "Paper", {"title": "Fresh OLAP work"})
        carried = engine.carry_over_scores(first)
        graph = engine.graph
        v7 = graph.index_of("v7")
        assert carried[v7] == pytest.approx(first.ranked.score_of("v7"))
        fresh = graph.index_of("p_new")
        assert carried[fresh] == pytest.approx(1.0 / graph.num_nodes)

    def test_carry_over_none_without_previous(self, engine):
        assert engine.carry_over_scores(None) is None

    def test_warm_search_converges_faster_after_insert(self, engine):
        first = engine.search("OLAP")
        engine.add_node("p_new", "Paper", {"title": "More OLAP cubes"})
        engine.add_edge("p_new", "v7", "cites")
        cold = engine.search("OLAP")
        warm = engine.search("OLAP", previous=first)
        assert warm.ranked.ranking() == cold.ranked.ranking()
        assert warm.iterations <= cold.iterations

    def test_same_fixpoint_with_and_without_carry(self, engine):
        first = engine.search("OLAP")
        engine.add_node("p_new", "Paper", {"title": "OLAP again"})
        cold = engine.search("OLAP")
        warm = engine.search("OLAP", previous=first)
        assert warm.ranked.scores == pytest.approx(cold.ranked.scores, abs=1e-5)
