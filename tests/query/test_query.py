"""Unit tests for keyword queries and query vectors (Section 3)."""

import pytest

from repro.query import KeywordQuery, QueryVector


class TestKeywordQuery:
    def test_keywords_normalized(self):
        query = KeywordQuery(["OLAP", "Query-Optimization"])
        assert query.keywords == ("olap", "query", "optimization")

    def test_parse_free_text(self):
        assert KeywordQuery.parse("ranked search").keywords == ("ranked", "search")

    def test_order_preserved(self):
        # Q is a tuple, not a set (footnote 1 of the paper).
        assert KeywordQuery(["b", "a"]).keywords == ("b", "a")

    def test_initial_vector_all_ones(self):
        vector = KeywordQuery(["olap", "cube"]).vector()
        assert vector.weights == {"olap": 1.0, "cube": 1.0}

    def test_equality_and_hash(self):
        assert KeywordQuery(["olap"]) == KeywordQuery(["OLAP"])
        assert hash(KeywordQuery(["olap"])) == hash(KeywordQuery(["OLAP"]))
        assert KeywordQuery(["olap"]) != KeywordQuery(["xml"])

    def test_len_and_iter(self):
        query = KeywordQuery(["a1", "b2"])
        assert len(query) == 2
        assert list(query) == ["a1", "b2"]


class TestQueryVector:
    def test_set_and_get(self):
        vector = QueryVector()
        vector.set_weight("olap", 2.0)
        assert vector.weight("olap") == 2.0
        assert vector.weight("other") == 0.0

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            QueryVector({"olap": -1.0})

    def test_add_weight_inserts_and_accumulates(self):
        vector = QueryVector({"olap": 1.0})
        vector.add_weight("olap", 0.5)
        vector.add_weight("cube", 0.25)
        assert vector.weight("olap") == 1.5
        assert vector.weight("cube") == 0.25

    def test_term_order_is_insertion_order(self):
        vector = QueryVector({"olap": 1.0})
        vector.add_weight("cube", 0.5)
        vector.add_weight("range", 0.5)
        assert vector.terms == ["olap", "cube", "range"]

    def test_average_weight(self):
        vector = QueryVector({"a": 1.0, "b": 3.0})
        assert vector.average_weight() == 2.0
        assert QueryVector().average_weight() == 0.0

    def test_copy_is_independent(self):
        vector = QueryVector({"olap": 1.0})
        clone = vector.copy()
        clone.set_weight("olap", 9.0)
        assert vector.weight("olap") == 1.0

    def test_weights_returns_copy(self):
        vector = QueryVector({"olap": 1.0})
        weights = vector.weights
        weights["olap"] = 99.0
        assert vector.weight("olap") == 1.0

    def test_contains_len_iter(self):
        vector = QueryVector({"a": 1.0, "b": 2.0})
        assert "a" in vector and "c" not in vector
        assert len(vector) == 2
        assert list(vector) == ["a", "b"]

    def test_equality(self):
        assert QueryVector({"a": 1.0}) == QueryVector({"a": 1.0})
        assert QueryVector({"a": 1.0}) != QueryVector({"a": 2.0})
