"""Unit tests for the search engine."""

import numpy as np
import pytest

from repro.datasets import dblp_transfer_schema
from repro.datasets.figure1 import figure1_dataset  # noqa: F401 (fixture + tests)
from repro.errors import EmptyBaseSetError
from repro.query import KeywordQuery, QueryVector, SearchEngine


@pytest.fixture
def engine():
    dataset = figure1_dataset()
    return SearchEngine(dataset.data_graph, dataset.transfer_schema, tolerance=1e-8)


class TestQueryVectorNormalization:
    def test_accepts_string(self, engine):
        vector = engine.query_vector("OLAP cubes")
        assert vector.weights == {"olap": 1.0, "cubes": 1.0}

    def test_accepts_keyword_query(self, engine):
        vector = engine.query_vector(KeywordQuery(["olap"]))
        assert vector.weights == {"olap": 1.0}

    def test_passes_through_query_vector(self, engine):
        vector = QueryVector({"olap": 2.0})
        assert engine.query_vector(vector) is vector


class TestSearch:
    def test_data_cube_tops_olap_query(self, engine):
        """The paper's headline example: 'Data Cube' (v7) ranks first for
        'OLAP' despite not containing the keyword."""
        result = engine.search("OLAP", top_k=7)
        assert result.top[0][0] == "v7"

    def test_top_k_limits_results(self, engine):
        result = engine.search("OLAP", top_k=3)
        assert len(result.top) == 3
        assert len(result.hit_ids()) == 3

    def test_base_set_is_olap_papers(self, engine):
        result = engine.search("OLAP")
        assert set(result.ranked.base_weights) == {"v1", "v4"}

    def test_empty_base_set_raises(self, engine):
        with pytest.raises(EmptyBaseSetError):
            engine.search("nonexistentterm")

    def test_scores_bounded_like_probabilities(self, engine):
        """Scores are non-negative and sum to at most 1.  The sum is *below*
        1 because the transfer matrix is substochastic: a node missing some
        edge types lets part of its authority evaporate (Section 2)."""
        result = engine.search("OLAP")
        assert (result.scores >= 0).all()
        assert 0.0 < result.scores.sum() <= 1.0 + 1e-9

    def test_warm_start_converges_to_same_ranking(self, engine):
        cold = engine.search("OLAP")
        warm = engine.search("OLAP", init=cold.scores)
        assert warm.ranked.ranking() == cold.ranked.ranking()
        assert warm.iterations <= cold.iterations

    def test_rates_override(self, engine):
        default = engine.search("OLAP")
        # Kill citation authority: v7 can no longer dominate.
        no_cites = dblp_transfer_schema([0.0, 0.0, 0.2, 0.2, 0.3, 0.3, 0.3, 0.1])
        overridden = engine.search("OLAP", rates=no_cites)
        assert overridden.ranked.ranking() != default.ranked.ranking()
        assert overridden.top[0][0] in {"v1", "v4"}

    def test_elapsed_recorded(self, engine):
        result = engine.search("OLAP")
        assert result.elapsed_seconds > 0


class TestRatesIsolation:
    """A per-call ``rates`` override must never leak into shared state."""

    NO_CITES = [0.0, 0.0, 0.2, 0.2, 0.3, 0.3, 0.3, 0.1]
    NO_AUTHORS = [0.7, 0.0, 0.0, 0.0, 0.3, 0.3, 0.3, 0.1]

    def test_rates_override_does_not_mutate_shared_graph(self, engine):
        initial = engine.graph.transfer_schema
        engine.search("OLAP", rates=dblp_transfer_schema(self.NO_CITES))
        assert engine.graph.transfer_schema is initial
        assert initial.as_vector() == dblp_transfer_schema().as_vector()

    def test_default_search_unaffected_by_prior_override(self, engine):
        before = engine.search("OLAP")
        engine.search("OLAP", rates=dblp_transfer_schema(self.NO_CITES))
        after = engine.search("OLAP")
        assert after.ranked.ranking() == before.ranked.ranking()
        assert np.allclose(after.scores, before.scores)

    def test_interleaved_sessions_do_not_contaminate(self, engine):
        """Two sessions with different learned rates, interleaved on one
        shared engine, see exactly what dedicated engines would compute."""
        rates_a = dblp_transfer_schema(self.NO_CITES)
        rates_b = dblp_transfer_schema(self.NO_AUTHORS)
        dataset = figure1_dataset()
        dedicated_a = SearchEngine(
            dataset.data_graph, rates_a, tolerance=1e-8
        ).search("OLAP")
        dedicated_b = SearchEngine(
            dataset.data_graph, rates_b, tolerance=1e-8
        ).search("OLAP")

        a1 = engine.search("OLAP", rates=rates_a)
        b1 = engine.search("OLAP", rates=rates_b)
        a2 = engine.search("OLAP", rates=rates_a)
        b2 = engine.search("OLAP", rates=rates_b)

        for run in (a1, a2):
            assert run.ranked.ranking() == dedicated_a.ranked.ranking()
            assert np.allclose(run.scores, dedicated_a.scores)
        for run in (b1, b2):
            assert run.ranked.ranking() == dedicated_b.ranked.ranking()
            assert np.allclose(run.scores, dedicated_b.scores)

    def test_concurrent_sessions_match_sequential(self, engine):
        """The serving scenario: threads hammer one engine with different
        learned rates; every result must equal its sequential baseline."""
        from concurrent.futures import ThreadPoolExecutor

        sessions = {
            "default": None,
            "no_cites": dblp_transfer_schema(self.NO_CITES),
            "no_authors": dblp_transfer_schema(self.NO_AUTHORS),
        }
        expected = {
            name: engine.search("OLAP", rates=rates).scores
            for name, rates in sessions.items()
        }

        def run(name):
            return name, engine.search("OLAP", rates=sessions[name]).scores

        jobs = [name for name in sessions for _ in range(8)]
        with ThreadPoolExecutor(max_workers=6) as pool:
            for name, scores in pool.map(run, jobs):
                assert np.allclose(scores, expected[name]), name

    def test_transfer_view_is_cached_and_shares_topology(self, engine):
        rates = dblp_transfer_schema(self.NO_CITES)
        view1 = engine.transfer_view(rates)
        view2 = engine.transfer_view(dblp_transfer_schema(self.NO_CITES))
        assert view1 is view2
        assert view1 is not engine.graph
        assert view1.edge_source is engine.graph.edge_source
        assert view1.edge_rate is not engine.graph.edge_rate
        assert engine.transfer_view(None) is engine.graph
        assert engine.transfer_view(dblp_transfer_schema()) is engine.graph

    def test_concurrent_misses_build_one_view(self, engine):
        """Regression: two threads missing on the same rate key used to both
        materialize ``with_rates`` views (an O(edges) build and a CSR matrix
        each), with the second insert clobbering the first.  The per-key
        build latch must deduplicate them to exactly one build."""
        import threading
        from concurrent.futures import ThreadPoolExecutor

        num_threads = 6
        build_calls = []
        entered = threading.Barrier(num_threads + 1, timeout=10)
        release = threading.Event()
        real_with_rates = engine.graph.with_rates

        def slow_with_rates(rates):
            build_calls.append(rates)
            release.wait(timeout=10)
            return real_with_rates(rates)

        engine.graph.with_rates = slow_with_rates
        try:
            rates = dblp_transfer_schema(self.NO_CITES)

            def request():
                entered.wait()
                return engine.transfer_view(dblp_transfer_schema(self.NO_CITES))

            with ThreadPoolExecutor(max_workers=num_threads) as pool:
                futures = [pool.submit(request) for _ in range(num_threads)]
                entered.wait()  # all threads in flight before the build ends
                release.set()
                views = [future.result(timeout=10) for future in futures]
        finally:
            engine.graph.with_rates = real_with_rates

        assert len(build_calls) == 1
        assert all(view is views[0] for view in views)
        assert engine.transfer_view(rates) is views[0]

    def test_builder_failure_releases_waiters(self, engine):
        """A failed build must not deadlock waiters on the latch."""
        from concurrent.futures import ThreadPoolExecutor

        real_with_rates = engine.graph.with_rates
        calls = []

        def failing_with_rates(rates):
            calls.append(rates)
            if len(calls) == 1:
                raise RuntimeError("simulated build failure")
            return real_with_rates(rates)

        engine.graph.with_rates = failing_with_rates
        try:
            rates = dblp_transfer_schema(self.NO_CITES)
            with ThreadPoolExecutor(max_workers=3) as pool:
                futures = [
                    pool.submit(engine.transfer_view, rates) for _ in range(3)
                ]
                outcomes = []
                for future in futures:
                    try:
                        outcomes.append(future.result(timeout=10))
                    except RuntimeError:
                        outcomes.append(None)
            views = [view for view in outcomes if view is not None]
            # The failing builder raised; every other thread either retried
            # into a successful build or waited for one.
            assert views
            assert all(view is views[0] for view in views)
        finally:
            engine.graph.with_rates = real_with_rates


class TestLabelFilter:
    def test_only_requested_labels_returned(self, engine):
        result = engine.search("OLAP", top_k=5, labels=("Paper",))
        dataset_graph = engine.data_graph
        assert result.top
        assert all(
            dataset_graph.node(node_id).label == "Paper"
            for node_id, _ in result.top
        )

    def test_filtered_order_matches_global_ranking(self, engine):
        unfiltered = engine.search("OLAP", top_k=7)
        filtered = engine.search("OLAP", top_k=7, labels=("Paper",))
        paper_order = [
            nid for nid in unfiltered.ranked.ranking()
            if engine.data_graph.node(nid).label == "Paper"
        ]
        assert filtered.hit_ids() == paper_order[:7]

    def test_unknown_label_yields_empty(self, engine):
        result = engine.search("OLAP", labels=("Venue",))
        assert result.top == []
