"""Unit tests for the search engine."""

import numpy as np
import pytest

from repro.datasets import dblp_transfer_schema
from repro.datasets.figure1 import figure1_dataset
from repro.errors import EmptyBaseSetError
from repro.query import KeywordQuery, QueryVector, SearchEngine


@pytest.fixture
def engine():
    dataset = figure1_dataset()
    return SearchEngine(dataset.data_graph, dataset.transfer_schema, tolerance=1e-8)


class TestQueryVectorNormalization:
    def test_accepts_string(self, engine):
        vector = engine.query_vector("OLAP cubes")
        assert vector.weights == {"olap": 1.0, "cubes": 1.0}

    def test_accepts_keyword_query(self, engine):
        vector = engine.query_vector(KeywordQuery(["olap"]))
        assert vector.weights == {"olap": 1.0}

    def test_passes_through_query_vector(self, engine):
        vector = QueryVector({"olap": 2.0})
        assert engine.query_vector(vector) is vector


class TestSearch:
    def test_data_cube_tops_olap_query(self, engine):
        """The paper's headline example: 'Data Cube' (v7) ranks first for
        'OLAP' despite not containing the keyword."""
        result = engine.search("OLAP", top_k=7)
        assert result.top[0][0] == "v7"

    def test_top_k_limits_results(self, engine):
        result = engine.search("OLAP", top_k=3)
        assert len(result.top) == 3
        assert len(result.hit_ids()) == 3

    def test_base_set_is_olap_papers(self, engine):
        result = engine.search("OLAP")
        assert set(result.ranked.base_weights) == {"v1", "v4"}

    def test_empty_base_set_raises(self, engine):
        with pytest.raises(EmptyBaseSetError):
            engine.search("nonexistentterm")

    def test_scores_bounded_like_probabilities(self, engine):
        """Scores are non-negative and sum to at most 1.  The sum is *below*
        1 because the transfer matrix is substochastic: a node missing some
        edge types lets part of its authority evaporate (Section 2)."""
        result = engine.search("OLAP")
        assert (result.scores >= 0).all()
        assert 0.0 < result.scores.sum() <= 1.0 + 1e-9

    def test_warm_start_converges_to_same_ranking(self, engine):
        cold = engine.search("OLAP")
        warm = engine.search("OLAP", init=cold.scores)
        assert warm.ranked.ranking() == cold.ranked.ranking()
        assert warm.iterations <= cold.iterations

    def test_rates_override(self, engine):
        default = engine.search("OLAP")
        # Kill citation authority: v7 can no longer dominate.
        no_cites = dblp_transfer_schema([0.0, 0.0, 0.2, 0.2, 0.3, 0.3, 0.3, 0.1])
        overridden = engine.search("OLAP", rates=no_cites)
        assert overridden.ranked.ranking() != default.ranked.ranking()
        assert overridden.top[0][0] in {"v1", "v4"}

    def test_elapsed_recorded(self, engine):
        result = engine.search("OLAP")
        assert result.elapsed_seconds > 0


class TestLabelFilter:
    def test_only_requested_labels_returned(self, engine):
        result = engine.search("OLAP", top_k=5, labels=("Paper",))
        dataset_graph = engine.data_graph
        assert result.top
        assert all(
            dataset_graph.node(node_id).label == "Paper"
            for node_id, _ in result.top
        )

    def test_filtered_order_matches_global_ranking(self, engine):
        unfiltered = engine.search("OLAP", top_k=7)
        filtered = engine.search("OLAP", top_k=7, labels=("Paper",))
        paper_order = [
            nid for nid in unfiltered.ranked.ranking()
            if engine.data_graph.node(nid).label == "Paper"
        ]
        assert filtered.hit_ids() == paper_order[:7]

    def test_unknown_label_yields_empty(self, engine):
        result = engine.search("OLAP", labels=("Venue",))
        assert result.top == []
