"""Unit tests for the interactive shell."""

import pytest

from repro.core import SystemConfig
from repro.repl import ReplSession, run_repl


@pytest.fixture
def session(figure1):
    return ReplSession(figure1, SystemConfig(top_k=7, radius=None))


class TestCommands:
    def test_query_lists_results(self, session):
        output = session.handle("query olap")
        assert any("Data Cube" in line for line in output)
        assert output[-1].endswith("ObjectRank2 iterations)")

    def test_blank_line_ignored(self, session):
        assert session.handle("   ") == []

    def test_unknown_command(self, session):
        assert "unknown command" in session.handle("frobnicate")[0]

    def test_explain_requires_query_first(self, session):
        output = session.handle("explain 1")
        assert output[0].startswith("error:")

    def test_explain_by_rank(self, session):
        session.handle("query olap")
        output = session.handle("explain 1")
        assert any("Explanation for" in line for line in output)

    def test_explain_bad_rank(self, session):
        session.handle("query olap")
        assert session.handle("explain 99")[0].startswith("error:")

    def test_explain_usage(self, session):
        assert session.handle("explain")[0].startswith("usage:")

    def test_mark_reformulates(self, session):
        session.handle("query olap")
        output = session.handle("mark 1 2")
        assert output[0].startswith("marked:")
        assert any("ObjectRank2 iterations" in line for line in output)

    def test_rates_and_vector(self, session):
        session.handle("query olap")
        rates = session.handle("rates")
        assert len(rates) == 8  # DBLP edge types
        vector = session.handle("vector")
        assert vector == ["olap: 1.000"]

    def test_vector_before_query(self, session):
        assert session.handle("vector") == ["(no query yet)"]

    def test_help(self, session):
        assert any("query" in line for line in session.handle("help"))

    def test_query_usage(self, session):
        assert session.handle("query")[0].startswith("usage:")

    def test_mark_usage(self, session):
        assert session.handle("mark abc")[0].startswith("usage:")


class TestRunRepl:
    def test_scripted_session(self, figure1):
        written = []
        code = run_repl(
            figure1,
            ["query olap", "explain 1", "mark 1", "quit", "query never-reached"],
            write=written.append,
            config=SystemConfig(top_k=7, radius=None),
        )
        assert code == 0
        text = "\n".join(written)
        assert "dataset figure1" in text
        assert "Explanation for" in text
        assert "never-reached" not in text
