"""Unit tests for active feedback selection [SZ05]."""

import pytest

from repro.feedback import ActiveFeedbackSelector


class _FakeExplanation:
    """Stands in for a FlowExplanation: only flow_by_edge_type is used."""

    def __init__(self, profile):
        self._profile = profile

    def flow_by_edge_type(self):
        return dict(self._profile)


@pytest.fixture
def candidates():
    # Edge types represented as strings for brevity; the selector is generic.
    return [
        ("cites-heavy", _FakeExplanation({"PP": 0.9, "PA": 0.1})),
        ("cites-heavy-2", _FakeExplanation({"PP": 0.8, "PA": 0.2})),
        ("author-heavy", _FakeExplanation({"PA": 0.7, "AP": 0.3})),
        ("venue-heavy", _FakeExplanation({"YP": 0.6, "CY": 0.4})),
    ]


class TestNovelty:
    def test_fresh_selector_scores_profile_mass(self, candidates):
        selector = ActiveFeedbackSelector()
        # with no evidence all normalized profiles score 1.0
        for _name, explanation in candidates:
            assert selector.novelty(explanation) == pytest.approx(1.0)

    def test_observed_types_become_less_novel(self, candidates):
        selector = ActiveFeedbackSelector()
        selector.observe(candidates[0][1])  # mostly PP
        assert selector.novelty(candidates[1][1]) < selector.novelty(
            candidates[3][1]
        )

    def test_empty_profile_scores_zero(self):
        selector = ActiveFeedbackSelector()
        assert selector.novelty(_FakeExplanation({})) == 0.0
        assert selector.novelty(_FakeExplanation({"PP": 0.0})) == 0.0


class TestSelection:
    def test_greedy_selection_is_diverse(self, candidates):
        """After picking a cites-heavy object, the next pick must avoid the
        redundant cites-heavy-2 in favour of a different profile."""
        selector = ActiveFeedbackSelector()
        chosen = selector.select(candidates, 2)
        assert chosen[0] == "cites-heavy"  # ties broken by order
        assert chosen[1] in {"author-heavy", "venue-heavy"}

    def test_selects_all_when_count_exceeds(self, candidates):
        selector = ActiveFeedbackSelector()
        assert len(selector.select(candidates, 10)) == len(candidates)

    def test_zero_count(self, candidates):
        assert ActiveFeedbackSelector().select(candidates, 0) == []

    def test_negative_count_rejected(self, candidates):
        with pytest.raises(ValueError):
            ActiveFeedbackSelector().select(candidates, -1)

    def test_evidence_persists_across_selections(self, candidates):
        selector = ActiveFeedbackSelector()
        selector.select(candidates[:2], 1)  # consumes cites evidence
        second = selector.select(candidates[2:], 1)
        assert second  # still picks from the rest
        assert "PP" in selector.evidence


class TestWithRealExplanations:
    def test_end_to_end_with_system(self, figure1, olap_result, figure1_graph):
        from repro.explain import adjust_flows, build_explaining_subgraph

        base = list(olap_result.base_weights)
        explanations = []
        for target in ("v4", "v7", "v1"):
            subgraph = build_explaining_subgraph(
                figure1_graph, base, target, radius=None
            )
            explanations.append(
                (target, adjust_flows(subgraph, olap_result.scores, 0.85))
            )
        selector = ActiveFeedbackSelector()
        chosen = selector.select(explanations, 2)
        assert len(chosen) == 2
        assert len(set(chosen)) == 2
