"""Unit tests for the survey session driver (Section 6.1 protocol)."""

import pytest

from repro.core import ObjectRankSystem, SystemConfig
from repro.feedback import (
    SimulatedUser,
    average_precision_curve,
    run_feedback_session,
)
from repro.graph import AuthorityTransferSchemaGraph
from repro.query import SearchEngine


@pytest.fixture(scope="module")
def setup(request):
    dblp_tiny = request.getfixturevalue("dblp_tiny")
    flat = AuthorityTransferSchemaGraph(dblp_tiny.schema, default_rate=0.3)
    engine = SearchEngine(dblp_tiny.data_graph, flat)
    user = SimulatedUser(engine, dblp_tiny.ground_truth_rates, relevance_depth=40)
    return dblp_tiny, flat, engine, user


class TestSession:
    def test_trace_shape(self, setup):
        dataset, flat, engine, user = setup
        system = ObjectRankSystem(
            dataset.data_graph, flat, SystemConfig.structure_only(top_k=10), engine=engine
        )
        trace = run_feedback_session(system, user, "olap", feedback_iterations=3)
        assert len(trace.precisions) == 4  # initial + 3 reformulated
        assert len(trace.marked_counts) == 4
        assert len(trace.rate_vectors) == 4
        assert all(0.0 <= p <= 1.0 for p in trace.precisions)

    def test_structure_only_changes_rates(self, setup):
        dataset, flat, engine, user = setup
        system = ObjectRankSystem(
            dataset.data_graph, flat, SystemConfig.structure_only(top_k=10), engine=engine
        )
        trace = run_feedback_session(system, user, "olap", feedback_iterations=2)
        assert trace.rate_vectors[0] != trace.rate_vectors[-1]

    def test_content_only_keeps_rates(self, setup):
        dataset, flat, engine, user = setup
        system = ObjectRankSystem(
            dataset.data_graph, flat, SystemConfig.content_only(top_k=10), engine=engine
        )
        trace = run_feedback_session(system, user, "olap", feedback_iterations=2)
        assert trace.rate_vectors[0] == trace.rate_vectors[-1]

    def test_explaining_iterations_recorded(self, setup):
        dataset, flat, engine, user = setup
        system = ObjectRankSystem(
            dataset.data_graph, flat, SystemConfig.structure_only(top_k=10), engine=engine
        )
        trace = run_feedback_session(system, user, "olap", feedback_iterations=2)
        assert trace.explaining_iterations
        assert all(i >= 1 for i in trace.explaining_iterations)

    def test_query_text_recorded(self, setup):
        dataset, flat, engine, user = setup
        system = ObjectRankSystem(
            dataset.data_graph, flat, SystemConfig.structure_only(top_k=5), engine=engine
        )
        trace = run_feedback_session(system, user, "olap", feedback_iterations=1)
        assert trace.query == "olap"


class TestAveraging:
    def test_average_curve(self, setup):
        dataset, flat, engine, user = setup
        config = SystemConfig.structure_only(top_k=10)
        traces = []
        for query in ("olap", "xml"):
            system = ObjectRankSystem(dataset.data_graph, flat, config, engine=engine)
            traces.append(run_feedback_session(system, user, query, feedback_iterations=2))
        curve = average_precision_curve(traces)
        assert len(curve) == 3
        for i, value in enumerate(curve):
            expected = (traces[0].precisions[i] + traces[1].precisions[i]) / 2
            assert value == pytest.approx(expected)

    def test_empty_input(self):
        assert average_precision_curve([]) == []
