"""Unit tests for evaluation metrics."""

import pytest

from repro.feedback import (
    average_precision,
    cosine_similarity,
    precision_at_k,
    recall_at_k,
    reciprocal_rank,
)


class TestPrecisionAtK:
    def test_perfect(self):
        assert precision_at_k(["a", "b"], {"a", "b"}, 2) == 1.0

    def test_half(self):
        assert precision_at_k(["a", "x"], {"a"}, 2) == 0.5

    def test_short_retrieved_list_penalized(self):
        # only one retrieved but k=4: precision counts against k
        assert precision_at_k(["a"], {"a"}, 4) == 0.25

    def test_empty_retrieved(self):
        assert precision_at_k([], {"a"}, 5) == 0.0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            precision_at_k(["a"], {"a"}, 0)


class TestRecallAtK:
    def test_full_recall(self):
        assert recall_at_k(["a", "b", "c"], {"a", "b"}, 3) == 1.0

    def test_partial(self):
        assert recall_at_k(["a", "x"], {"a", "b"}, 2) == 0.5

    def test_no_relevant(self):
        assert recall_at_k(["a"], set(), 1) == 0.0


class TestAveragePrecision:
    def test_all_relevant_up_front(self):
        assert average_precision(["a", "b", "x"], {"a", "b"}) == 1.0

    def test_interleaved(self):
        # hits at ranks 1 and 3: (1/1 + 2/3)/2
        assert average_precision(["a", "x", "b"], {"a", "b"}) == pytest.approx(
            (1.0 + 2 / 3) / 2
        )

    def test_missing_relevant_penalized(self):
        assert average_precision(["a"], {"a", "b"}) == pytest.approx(0.5)

    def test_empty_relevant(self):
        assert average_precision(["a"], set()) == 0.0


class TestReciprocalRank:
    def test_first_hit(self):
        assert reciprocal_rank(["a", "b"], {"a"}) == 1.0

    def test_third_hit(self):
        assert reciprocal_rank(["x", "y", "a"], {"a"}) == pytest.approx(1 / 3)

    def test_no_hit(self):
        assert reciprocal_rank(["x"], {"a"}) == 0.0


class TestCosineSimilarity:
    def test_identical(self):
        assert cosine_similarity([1, 2, 3], [1, 2, 3]) == pytest.approx(1.0)

    def test_scale_invariant(self):
        assert cosine_similarity([1, 2], [10, 20]) == pytest.approx(1.0)

    def test_orthogonal(self):
        assert cosine_similarity([1, 0], [0, 1]) == 0.0

    def test_zero_vector_convention(self):
        assert cosine_similarity([0, 0], [1, 2]) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            cosine_similarity([1], [1, 2])

    def test_paper_vectors(self):
        """Initial 0.3-vector vs DBLP ground truth starts around 0.8."""
        truth = [0.7, 0.0, 0.2, 0.2, 0.3, 0.3, 0.3, 0.1]
        initial = [0.3] * 8
        value = cosine_similarity(initial, truth)
        assert 0.75 < value < 0.85
