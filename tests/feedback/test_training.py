"""Unit tests for authority-transfer-rate training (Section 6.1.1, Fig. 11)."""

import pytest

from repro.datasets import dblp_edge_order
from repro.feedback import train_transfer_rates


@pytest.fixture(scope="module")
def curve(request):
    dblp_tiny = request.getfixturevalue("dblp_tiny")
    return train_transfer_rates(
        dblp_tiny,
        ["olap", "mining"],
        adjustment_factor=0.5,
        iterations=4,
        edge_order=dblp_edge_order(dblp_tiny.schema),
    )


class TestTrainingCurve:
    def test_curve_length(self, curve):
        assert len(curve.similarities) == 5  # initial + 4 iterations
        assert len(curve.rate_vectors) == 5

    def test_initial_similarity_is_uniform_vector(self, curve):
        # cosine([0.3]*8, ground truth) ~ 0.805
        assert curve.similarities[0] == pytest.approx(0.805, abs=0.01)

    def test_training_improves_similarity(self, curve):
        """The learned rates move toward the ground truth (Figure 11's
        rising phase)."""
        assert max(curve.similarities[1:]) > curve.similarities[0] + 0.02

    def test_learned_vector_boosts_citations(self, curve):
        """PP (citations) is the dominant ground-truth rate; training must
        discover that it carries the most authority."""
        final = curve.rate_vectors[curve.peak_iteration]
        assert final[0] == max(final)

    def test_similarities_bounded(self, curve):
        assert all(0.0 <= s <= 1.0 + 1e-9 for s in curve.similarities)

    def test_peak_iteration(self, curve):
        peak = curve.peak_iteration
        assert curve.similarities[peak] == max(curve.similarities)


class TestConfigurationEffects:
    def test_larger_cf_moves_faster(self, dblp_tiny):
        """Larger C_f adjusts rates more aggressively per iteration: after
        one iteration its vector is farther from the initial one."""
        order = dblp_edge_order(dblp_tiny.schema)
        slow = train_transfer_rates(
            dblp_tiny, ["olap"], adjustment_factor=0.1, iterations=1, edge_order=order
        )
        fast = train_transfer_rates(
            dblp_tiny, ["olap"], adjustment_factor=0.9, iterations=1, edge_order=order
        )

        def distance(curve):
            a, b = curve.rate_vectors[0], curve.rate_vectors[1]
            return sum((x - y) ** 2 for x, y in zip(a, b))

        assert distance(fast) > distance(slow)

    def test_missing_ground_truth_rejected(self, dblp_tiny):
        import dataclasses

        stripped = dataclasses.replace(dblp_tiny, ground_truth_rates=None)
        with pytest.raises(ValueError):
            train_transfer_rates(stripped, ["olap"], 0.5, iterations=1)

    def test_no_queries_rejected(self, dblp_tiny):
        """Zero sessions used to divide by zero when averaging the curve;
        now it fails fast with a clear message."""
        with pytest.raises(ValueError, match="at least one query session"):
            train_transfer_rates(dblp_tiny, [], 0.5, iterations=1)
