"""Unit tests for the Rocchio baseline."""

import pytest

from repro.feedback import RocchioReformulator
from repro.ir import InvertedIndex
from repro.query import QueryVector


@pytest.fixture
def index():
    return InvertedIndex.from_documents(
        [
            ("r1", "olap cube warehouse aggregation"),
            ("r2", "olap multidimensional warehouse"),
            ("n1", "xml twig query"),
            ("d1", "unrelated streaming windows"),
            ("d2", "another unrelated transaction"),
        ]
    )


class TestDocumentVector:
    def test_covers_document_terms_only(self, index):
        rocchio = RocchioReformulator()
        vector = rocchio.document_vector(index, "r1")
        assert set(vector) == {"olap", "cube", "warehouse", "aggregation"}
        assert all(weight > 0 for weight in vector.values())

    def test_unknown_document_is_empty(self, index):
        assert RocchioReformulator().document_vector(index, "zz") == {}


class TestReformulate:
    def test_relevant_terms_added(self, index):
        rocchio = RocchioReformulator(num_terms=10)
        new = rocchio.reformulate(QueryVector({"olap": 1.0}), index, ["r1", "r2"])
        assert "warehouse" in new
        assert new.weight("warehouse") > 0

    def test_original_terms_boosted(self, index):
        rocchio = RocchioReformulator()
        new = rocchio.reformulate(QueryVector({"olap": 1.0}), index, ["r1"])
        assert new.weight("olap") > 1.0  # alpha * 1 + beta * tfidf

    def test_nonrelevant_terms_suppressed(self, index):
        rocchio = RocchioReformulator(num_terms=10)
        with_neg = rocchio.reformulate(
            QueryVector({"olap": 1.0}), index, ["r1"], nonrelevant_ids=["n1"]
        )
        assert "twig" not in with_neg  # negative weight clamped out

    def test_negative_query_weight_clamped(self, index):
        rocchio = RocchioReformulator(alpha=0.0, gamma=1.0)
        new = rocchio.reformulate(
            QueryVector({"twig": 1.0}), index, [], nonrelevant_ids=["n1"]
        )
        assert new.weight("twig") == 0.0

    def test_num_terms_truncates(self, index):
        rocchio = RocchioReformulator(num_terms=2)
        new = rocchio.reformulate(QueryVector({"olap": 1.0}), index, ["r1", "r2"])
        # original term + at most 2 expansion terms
        assert len(new) <= 3

    def test_no_feedback_keeps_query(self, index):
        rocchio = RocchioReformulator()
        original = QueryVector({"olap": 1.0})
        new = rocchio.reformulate(original, index, [])
        assert new.weights == {"olap": 1.0}
