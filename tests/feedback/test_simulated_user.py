"""Unit tests for the simulated survey user."""

import pytest

from repro.feedback import SimulatedUser
from repro.graph import AuthorityTransferSchemaGraph
from repro.query import SearchEngine


@pytest.fixture
def engine(dblp_tiny):
    flat = AuthorityTransferSchemaGraph(dblp_tiny.schema, default_rate=0.3)
    return SearchEngine(dblp_tiny.data_graph, flat)


@pytest.fixture
def user(engine, dblp_tiny):
    return SimulatedUser(engine, dblp_tiny.ground_truth_rates, relevance_depth=15)


class TestRelevantSet:
    def test_size_matches_depth(self, user):
        assert len(user.relevant_set("olap")) == 15

    def test_cached_per_query(self, user):
        first = user.relevant_set("olap")
        assert user.relevant_set("olap") is first

    def test_different_queries_differ(self, user):
        assert user.relevant_set("olap") != user.relevant_set("xml")

    def test_stable_under_reformulated_vectors(self, user, engine):
        """Judgments key on the term set: reweighting alone (a reformulated
        vector over the same terms) does not change the relevant set."""
        from repro.query import QueryVector

        plain = user.relevant_set(QueryVector({"olap": 1.0}))
        reweighted = user.relevant_set(QueryVector({"olap": 3.0}))
        assert plain == reweighted


class TestJudging:
    def test_marks_only_relevant(self, user):
        relevant = user.relevant_set("olap")
        sample = list(relevant)[:3] + ["paper:0_bogus_id"[:0] or "year:0"]
        marked = user.judge(sample, "olap")
        assert set(marked) <= relevant
        assert len(marked) == 3

    def test_preserves_presentation_order(self, user):
        relevant = sorted(user.relevant_set("olap"))
        marked = user.judge(relevant, "olap")
        assert marked == relevant

    def test_noise_flips_judgments(self, engine, dblp_tiny):
        noisy = SimulatedUser(
            engine, dblp_tiny.ground_truth_rates, relevance_depth=15, noise=0.99, seed=1
        )
        relevant = list(noisy.relevant_set("olap"))
        marked = noisy.judge(relevant, "olap")
        assert len(marked) < len(relevant)  # most judgments flipped to no

    def test_validation(self, engine, dblp_tiny):
        with pytest.raises(ValueError):
            SimulatedUser(engine, dblp_tiny.ground_truth_rates, relevance_depth=0)
        with pytest.raises(ValueError):
            SimulatedUser(engine, dblp_tiny.ground_truth_rates, noise=1.0)
