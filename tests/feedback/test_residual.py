"""Unit tests for residual-collection evaluation [RL03, SB90]."""

from repro.feedback import ResidualCollection


class TestResidualCollection:
    def test_initial_state_passes_everything(self):
        residual = ResidualCollection()
        assert residual.residual_ranking(["a", "b"]) == ["a", "b"]
        assert residual.residual_relevant({"a"}) == {"a"}

    def test_seen_items_removed_from_ranking(self):
        residual = ResidualCollection()
        residual.mark_seen(["a", "c"])
        assert residual.residual_ranking(["a", "b", "c", "d"]) == ["b", "d"]

    def test_seen_items_removed_from_relevant(self):
        residual = ResidualCollection()
        residual.mark_seen(["a"])
        assert residual.residual_relevant({"a", "b"}) == {"b"}

    def test_precision_over_residual(self):
        residual = ResidualCollection()
        residual.mark_seen(["r1"])
        # ranking: r1 (seen), r2 (relevant), x (not)
        assert residual.precision(["r1", "r2", "x"], {"r1", "r2"}, 2) == 0.5

    def test_present_returns_top_k_unseen(self):
        residual = ResidualCollection()
        residual.mark_seen(["a"])
        assert residual.present(["a", "b", "c", "d"], 2) == ["b", "c"]

    def test_marking_accumulates(self):
        residual = ResidualCollection()
        residual.mark_seen(["a"])
        residual.mark_seen(["b"])
        assert residual.seen == {"a", "b"}

    def test_feedback_cannot_inflate_precision(self):
        """The point of the method: re-retrieving marked objects scores 0."""
        residual = ResidualCollection()
        relevant = {"a", "b"}
        first = residual.present(["a", "b", "x", "y"], 2)
        assert residual.precision(["a", "b", "x", "y"], relevant, 2) == 1.0
        residual.mark_seen(first)
        # "reformulated" ranking returns the same two relevant docs on top
        assert residual.precision(["a", "b", "x", "y"], relevant, 2) == 0.0
