"""Unit tests for implicit click-through feedback (Section 5's note)."""

import pytest

from repro.feedback import (
    ClickLog,
    SimulatedClicker,
    implicit_feedback,
    position_weight,
)


class TestPositionWeight:
    def test_top_rank_discounted(self):
        assert position_weight(1, bias=0.7) == pytest.approx(0.3)

    def test_deep_rank_near_full(self):
        assert position_weight(100, bias=0.7) > 0.99

    def test_monotone_in_rank(self):
        weights = [position_weight(r) for r in range(1, 10)]
        assert weights == sorted(weights)

    def test_validation(self):
        with pytest.raises(ValueError):
            position_weight(0)
        with pytest.raises(ValueError):
            position_weight(1, bias=1.0)


class TestClickLog:
    def test_presentation_counting(self):
        log = ClickLog()
        log.record_presentation(["a", "b"])
        log.record_presentation(["a"])
        assert log.presentations == {"a": 2, "b": 1}

    def test_click_counting(self):
        log = ClickLog()
        log.record_click("a", 1)
        log.record_click("a", 3)
        log.record_click("b", 2)
        assert log.click_counts() == {"a": 2, "b": 1}

    def test_rank_validated(self):
        with pytest.raises(ValueError):
            ClickLog().record_click("a", 0)


class TestImplicitFeedback:
    def test_repeated_deep_clicks_become_feedback(self):
        log = ClickLog()
        log.record_presentation(["x", "y", "z"])
        log.record_click("z", 3)
        assert implicit_feedback(log, threshold=0.5) == ["z"]

    def test_single_top_click_below_threshold(self):
        """One click at rank 1 is weak evidence (position bias)."""
        log = ClickLog()
        log.record_presentation(["x", "y"])
        log.record_click("x", 1)
        assert implicit_feedback(log, threshold=0.5) == []

    def test_accumulated_top_clicks_cross_threshold(self):
        log = ClickLog()
        log.record_presentation(["x", "y"])
        log.record_click("x", 1)
        log.record_click("x", 1)
        # two clicks, one presentation batch: 2 * 0.3 / 1 = 0.6 >= 0.5
        assert implicit_feedback(log, threshold=0.5) == ["x"]

    def test_strongest_first_and_limit(self):
        log = ClickLog()
        log.record_presentation(["a", "b"])
        log.record_click("a", 2)
        log.record_click("a", 2)
        log.record_click("b", 2)
        ordered = implicit_feedback(log, threshold=0.1)
        assert ordered == ["a", "b"]
        assert implicit_feedback(log, threshold=0.1, limit=1) == ["a"]

    def test_empty_log(self):
        assert implicit_feedback(ClickLog()) == []


class TestSimulatedClicker:
    def test_clicks_mostly_on_relevant(self):
        clicker = SimulatedClicker({"r1", "r2"}, seed=3, random_click_rate=0.0)
        log = ClickLog()
        clicks = clicker.browse(["r1", "x", "r2", "y"], log)
        assert {c.node_id for c in clicks} <= {"r1", "r2"}
        assert any(c.node_id == "r1" for c in clicks)

    def test_cascade_examination_decays(self):
        """With low examination probability, deep results are rarely seen."""
        clicker = SimulatedClicker(
            {f"r{i}" for i in range(50)}, examination=0.3, seed=1,
            random_click_rate=0.0,
        )
        log = ClickLog()
        ranking = [f"r{i}" for i in range(50)]
        for _ in range(50):
            clicker.browse(ranking, log)
        counts = log.click_counts()
        assert counts.get("r0", 0) > counts.get("r10", 0)

    def test_end_to_end_with_feedback_loop(self, dblp_tiny):
        """Click-through drives the same reformulation path as explicit marks."""
        from repro.core import ObjectRankSystem, SystemConfig

        system = ObjectRankSystem(
            dblp_tiny.data_graph, dblp_tiny.transfer_schema,
            SystemConfig(top_k=10),
        )
        result = system.query("olap")
        relevant = set(result.hit_ids()[:3])
        clicker = SimulatedClicker(relevant, seed=0)
        log = ClickLog()
        for _ in range(3):
            clicker.browse(result.hit_ids(), log)
        marks = implicit_feedback(log, threshold=0.2, limit=3)
        assert marks
        outcome = system.feedback(marks)
        assert outcome.result is system.last_result

    def test_validation(self):
        with pytest.raises(ValueError):
            SimulatedClicker(set(), examination=0.0)
