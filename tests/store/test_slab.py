"""Unit tests for the slab container: round trips, corruption, truncation."""

from __future__ import annotations

import struct

import numpy as np
import pytest

from repro.storage.slab import (
    MAGIC,
    SECTION_ALIGNMENT,
    SlabFile,
    SlabFormatError,
    write_slab,
)


@pytest.fixture
def arrays():
    rng = np.random.default_rng(11)
    return {
        "scores": rng.random((5, 17)),
        "idf": rng.random(5),
        "offsets": np.arange(6, dtype=np.int64),
        "blob": np.frombuffer(b"alpha beta gamma", dtype=np.uint8),
    }


class TestRoundTrip:
    def test_arrays_come_back_bit_identical(self, tmp_path, arrays):
        path = tmp_path / "test.slab"
        size = write_slab(path, arrays, meta={"kind": "t"})
        assert path.stat().st_size == size
        with SlabFile(path) as slab:
            for name, original in arrays.items():
                view = slab.array(name)
                assert view.dtype == original.dtype
                assert view.shape == original.shape
                assert view.tobytes() == original.tobytes()

    def test_meta_round_trips(self, tmp_path, arrays):
        meta = {"kind": "t", "generation": 3, "rates": [0.1, 0.2], "name": "x"}
        path = tmp_path / "test.slab"
        write_slab(path, arrays, meta=meta)
        assert SlabFile(path).meta == meta

    def test_views_are_zero_copy_and_read_only(self, tmp_path, arrays):
        path = tmp_path / "test.slab"
        write_slab(path, arrays)
        slab = SlabFile(path)
        view = slab.array("scores")
        assert not view.flags.writeable
        assert not view.flags.owndata
        with pytest.raises(ValueError):
            view[0, 0] = 1.0

    def test_sections_are_cache_line_aligned(self, tmp_path, arrays):
        path = tmp_path / "test.slab"
        write_slab(path, arrays)
        slab = SlabFile(path)
        for name in arrays:
            assert slab._sections[name]["offset"] % SECTION_ALIGNMENT == 0

    def test_empty_arrays_dict(self, tmp_path):
        path = tmp_path / "empty.slab"
        write_slab(path, {})
        slab = SlabFile(path)
        assert slab.names() == []
        assert "anything" not in slab

    def test_zero_length_section(self, tmp_path):
        path = tmp_path / "zero.slab"
        write_slab(path, {"nothing": np.zeros(0)})
        assert SlabFile(path).array("nothing").shape == (0,)

    def test_missing_section_raises(self, tmp_path, arrays):
        path = tmp_path / "test.slab"
        write_slab(path, arrays)
        with pytest.raises(SlabFormatError, match="no section"):
            SlabFile(path).array("nope")

    def test_non_contiguous_input_is_stored_contiguous(self, tmp_path):
        strided = np.arange(40, dtype=np.float64).reshape(8, 5)[::2]
        path = tmp_path / "strided.slab"
        write_slab(path, {"x": strided})
        assert np.array_equal(SlabFile(path).array("x"), strided)


class TestRejection:
    def _write(self, tmp_path, arrays):
        path = tmp_path / "victim.slab"
        write_slab(path, arrays)
        return path

    def test_flipped_payload_byte_fails_checksum(self, tmp_path, arrays):
        path = self._write(tmp_path, arrays)
        slab = SlabFile(path)
        offset = slab._sections["scores"]["offset"] + 3
        slab.close()
        raw = bytearray(path.read_bytes())
        raw[offset] ^= 0xFF
        path.write_bytes(raw)
        with pytest.raises(SlabFormatError, match="checksum mismatch"):
            SlabFile(path)

    def test_flipped_header_byte_fails_header_crc(self, tmp_path, arrays):
        path = self._write(tmp_path, arrays)
        raw = bytearray(path.read_bytes())
        raw[24] ^= 0xFF  # first byte of the header JSON
        path.write_bytes(raw)
        with pytest.raises(SlabFormatError, match="header checksum"):
            SlabFile(path)

    def test_truncated_file_rejected(self, tmp_path, arrays):
        path = self._write(tmp_path, arrays)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(SlabFormatError):
            SlabFile(path)

    def test_truncated_to_fixed_header_rejected(self, tmp_path, arrays):
        path = self._write(tmp_path, arrays)
        path.write_bytes(path.read_bytes()[:10])
        with pytest.raises(SlabFormatError, match="truncated"):
            SlabFile(path)

    def test_bad_magic_rejected(self, tmp_path, arrays):
        path = self._write(tmp_path, arrays)
        raw = bytearray(path.read_bytes())
        raw[:8] = b"NOTASLAB"
        path.write_bytes(raw)
        with pytest.raises(SlabFormatError, match="bad magic"):
            SlabFile(path)

    def test_future_version_rejected(self, tmp_path, arrays):
        path = self._write(tmp_path, arrays)
        raw = bytearray(path.read_bytes())
        raw[8:12] = struct.pack("<I", 99)
        path.write_bytes(raw)
        with pytest.raises(SlabFormatError, match="version"):
            SlabFile(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(SlabFormatError, match="cannot map"):
            SlabFile(tmp_path / "missing.slab")

    def test_verify_false_skips_payload_check(self, tmp_path, arrays):
        path = self._write(tmp_path, arrays)
        slab = SlabFile(path)
        offset = slab._sections["idf"]["offset"]
        slab.close()
        raw = bytearray(path.read_bytes())
        raw[offset] ^= 0x01
        path.write_bytes(raw)
        lax = SlabFile(path, verify=False)  # opens: header still intact
        with pytest.raises(SlabFormatError, match="checksum mismatch"):
            lax.verify()


class TestCrashSafety:
    def test_no_temp_litter_after_write(self, tmp_path, arrays):
        write_slab(tmp_path / "a.slab", arrays)
        leftovers = [p.name for p in tmp_path.iterdir() if p.name != "a.slab"]
        assert leftovers == []

    def test_rewrite_is_atomic_replacement(self, tmp_path, arrays):
        path = tmp_path / "a.slab"
        write_slab(path, arrays, meta={"generation": 1})
        old = SlabFile(path)  # holds the *old* mapping across the rewrite
        write_slab(path, {"other": np.ones(3)}, meta={"generation": 2})
        # The pinned mapping still reads the old content, bit for bit.
        assert old.meta == {"generation": 1}
        assert old.array("scores").tobytes() == arrays["scores"].tobytes()
        assert SlabFile(path).meta == {"generation": 2}

    def test_magic_is_the_documented_constant(self):
        assert MAGIC == b"REPROSLB"
