"""MmapScoreRanker tests: bit-identity with the in-memory PrecomputedRanker."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import EmptyBaseSetError, PrecomputedCoverageError
from repro.query import KeywordQuery
from repro.ranking.precompute import PrecomputedRanker
from repro.store import ScoreStore, write_score_store
from repro.store.ranker import MmapScoreRanker


@pytest.fixture(scope="module")
def ranker(figure1_graph, figure1_index):
    return PrecomputedRanker(
        figure1_graph, figure1_index, min_document_frequency=1
    )


@pytest.fixture(scope="module")
def mmap_ranker(tmp_path_factory, ranker):
    path = tmp_path_factory.mktemp("store") / "store.gen-1.slab"
    write_score_store(path, ranker, dataset="fig1", generation=1)
    return MmapScoreRanker(ScoreStore(path))


def _vector(*terms: str):
    return KeywordQuery(list(terms)).vector()


class TestBitIdentity:
    @pytest.mark.parametrize(
        "terms",
        [("OLAP",), ("cube",), ("OLAP", "data"), ("index", "queries", "OLAP")],
    )
    def test_rank_is_bit_identical(self, ranker, mmap_ranker, terms):
        expected = ranker.rank(_vector(*terms))
        actual = mmap_ranker.rank(_vector(*terms))
        assert actual.node_ids == expected.node_ids
        assert actual.scores.tobytes() == expected.scores.tobytes()
        assert actual.base_weights == expected.base_weights
        assert actual.coverage == expected.coverage
        assert actual.iterations == 0 and actual.converged

    def test_top_k_order_matches(self, ranker, mmap_ranker):
        expected = ranker.rank(_vector("OLAP")).top_k(5)
        actual = mmap_ranker.rank(_vector("OLAP")).top_k(5)
        assert actual == expected

    def test_keywords_and_metadata_mirror_the_store(self, ranker, mmap_ranker):
        assert mmap_ranker.keywords == ranker.keywords
        assert mmap_ranker.generation == 1
        assert mmap_ranker.build_iterations == ranker.build_iterations
        for keyword in ranker.keywords:
            assert mmap_ranker.has_keyword(keyword)


class TestRouting:
    def test_staleness_matches_in_memory_discriminator(
        self, ranker, mmap_ranker, figure1
    ):
        same = figure1.transfer_schema
        assert mmap_ranker.is_stale(same) == ranker.is_stale(same)
        assert not mmap_ranker.is_stale(same)
        changed = same.copy()
        edge_type = changed.edge_types()[0]
        changed.set_rate(edge_type, changed.rate(edge_type) / 2 + 0.05)
        assert mmap_ranker.is_stale(changed)
        assert ranker.is_stale(changed)

    def test_unknown_terms_raise_empty_base_set(self, mmap_ranker):
        with pytest.raises(EmptyBaseSetError):
            mmap_ranker.rank(_vector("zzznotaterm"))

    def test_partial_coverage_raises_under_full_threshold(
        self, ranker, mmap_ranker
    ):
        vector = _vector("OLAP", "zzznotaterm")
        with pytest.raises(PrecomputedCoverageError):
            mmap_ranker.rank(vector)
        with pytest.raises(PrecomputedCoverageError):
            ranker.rank(vector)

    def test_partial_coverage_admitted_under_loose_threshold(
        self, ranker, mmap_ranker
    ):
        vector = _vector("OLAP", "zzznotaterm")
        loose_mmap = MmapScoreRanker(mmap_ranker.store, min_coverage=0.4)
        loose_mem = PrecomputedRanker(
            ranker.graph,
            ranker.index,
            min_document_frequency=1,
            min_coverage=0.4,
        )
        expected = loose_mem.rank(vector)
        actual = loose_mmap.rank(vector)
        assert actual.scores.tobytes() == expected.scores.tobytes()
        assert actual.coverage == expected.coverage

    def test_coverage_fraction_matches(self, ranker, mmap_ranker):
        vector = _vector("OLAP", "data")
        assert mmap_ranker.coverage(vector) == ranker.coverage(vector)
