"""Score-store format tests: export fidelity and validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import StoreError
from repro.ranking.precompute import PrecomputedRanker
from repro.storage.slab import write_slab
from repro.store import ScoreStore, write_score_store


@pytest.fixture(scope="module")
def ranker(figure1_graph, figure1_index):
    return PrecomputedRanker(
        figure1_graph, figure1_index, min_document_frequency=1
    )


@pytest.fixture
def store_file(tmp_path, ranker):
    path = tmp_path / "store.gen-1.slab"
    write_score_store(path, ranker, dataset="fig1", generation=1)
    return path


class TestExport:
    def test_vectors_bit_identical(self, store_file, ranker):
        store = ScoreStore(store_file)
        assert store.keywords == ranker.keywords
        for keyword in ranker.keywords:
            assert store.vector(keyword).tobytes() == ranker.vector(keyword).tobytes()
            assert store.idf_of(keyword) == ranker.keyword_idf(keyword)

    def test_node_table_matches_graph(self, store_file, ranker):
        store = ScoreStore(store_file)
        assert store.node_ids == list(ranker.graph.node_ids)
        assert store.num_nodes == ranker.graph.num_nodes

    def test_meta_fields(self, store_file, ranker):
        store = ScoreStore(store_file)
        assert store.dataset == "fig1"
        assert store.generation == 1
        assert store.damping == ranker.damping
        assert store.build_iterations == ranker.build_iterations

    def test_rates_fingerprint_matches_build_snapshot(self, store_file, ranker):
        store = ScoreStore(store_file)
        assert store.matches_rates(ranker.rates_snapshot)

    def test_changed_rates_do_not_match(self, store_file, figure1):
        store = ScoreStore(store_file)
        changed = figure1.transfer_schema.copy()
        edge_type = changed.edge_types()[0]
        changed.set_rate(edge_type, changed.rate(edge_type) / 2 + 0.01)
        assert not store.matches_rates(changed)

    def test_unknown_keyword_raises(self, store_file):
        store = ScoreStore(store_file)
        with pytest.raises(StoreError, match="no vector"):
            store.vector("definitely-not-indexed")
        with pytest.raises(StoreError, match="no idf"):
            store.idf_of("definitely-not-indexed")

    def test_context_manager_and_verify(self, store_file):
        with ScoreStore(store_file) as store:
            store.verify()


class TestValidation:
    def test_wrong_kind_rejected(self, tmp_path):
        path = tmp_path / "other.slab"
        write_slab(path, {"x": np.ones(2)}, meta={"kind": "something-else"})
        with pytest.raises(StoreError, match="not a score store"):
            ScoreStore(path)

    def test_missing_section_rejected(self, tmp_path, store_file):
        from repro.storage.slab import SlabFile

        slab = SlabFile(store_file)
        arrays = {
            name: np.array(slab.array(name))
            for name in slab.names()
            if name != "idf"
        }
        broken = tmp_path / "broken.slab"
        write_slab(broken, arrays, meta=slab.meta)
        with pytest.raises(StoreError, match="missing section 'idf'"):
            ScoreStore(broken)

    def test_corrupt_payload_rejected(self, store_file):
        store = ScoreStore(store_file)
        offset = store._slab._sections["scores"]["offset"] + 1
        store.close()
        raw = bytearray(store_file.read_bytes())
        raw[offset] ^= 0x10
        store_file.write_bytes(raw)
        with pytest.raises(StoreError, match="checksum"):
            ScoreStore(store_file)

    def test_shape_mismatch_rejected(self, tmp_path, store_file):
        from repro.storage.slab import SlabFile

        slab = SlabFile(store_file)
        arrays = {name: np.array(slab.array(name)) for name in slab.names()}
        arrays["scores"] = arrays["scores"][:-1]  # drop one keyword row
        broken = tmp_path / "broken.slab"
        write_slab(broken, arrays, meta=slab.meta)
        with pytest.raises(StoreError, match="shape"):
            ScoreStore(broken)
