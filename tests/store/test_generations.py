"""Generation-swap protocol tests, including concurrent reader processes."""

from __future__ import annotations

import json
import multiprocessing
import time

import pytest

from repro.errors import StoreError
from repro.query import KeywordQuery
from repro.ranking.precompute import PrecomputedRanker
from repro.store import (
    MANIFEST_NAME,
    StoreManager,
    build_and_publish,
    list_generations,
    next_generation,
    prune_generations,
    publish_manifest,
    read_manifest,
    store_path,
    write_score_store,
)


@pytest.fixture(scope="module")
def ranker(figure1_graph, figure1_index):
    return PrecomputedRanker(
        figure1_graph, figure1_index, min_document_frequency=1
    )


@pytest.fixture(scope="module")
def ranker_b(figure1_graph, figure1_index):
    """Same rates, different damping: same freshness, different scores."""
    return PrecomputedRanker(
        figure1_graph, figure1_index, min_document_frequency=1, damping=0.7
    )


class TestManifest:
    def test_empty_directory(self, tmp_path):
        assert read_manifest(tmp_path) is None
        assert list_generations(tmp_path) == []
        assert next_generation(tmp_path) == 1
        assert read_manifest(tmp_path / "missing-subdir") is None

    def test_publish_and_read_back(self, tmp_path, ranker):
        path = store_path(tmp_path, 1)
        write_score_store(path, ranker, dataset="fig1", generation=1)
        manifest = publish_manifest(tmp_path, 1, path.name)
        assert read_manifest(tmp_path) == manifest
        assert next_generation(tmp_path) == 2

    def test_publishing_a_missing_file_refuses(self, tmp_path):
        with pytest.raises(StoreError, match="missing store file"):
            publish_manifest(tmp_path, 1, "store.gen-1.slab")

    def test_corrupt_manifest_raises(self, tmp_path):
        (tmp_path / MANIFEST_NAME).write_text("{not json", encoding="utf-8")
        with pytest.raises(StoreError, match="corrupt manifest"):
            read_manifest(tmp_path)

    def test_build_and_publish_increments_generations(self, tmp_path, ranker):
        first = build_and_publish(tmp_path, ranker, "fig1")
        second = build_and_publish(tmp_path, ranker, "fig1")
        assert (first.generation, second.generation) == (1, 2)
        assert read_manifest(tmp_path).generation == 2

    def test_prune_keeps_newest_and_current(self, tmp_path, ranker):
        for _ in range(4):
            build_and_publish(tmp_path, ranker, "fig1", keep=10)
        # Point CURRENT at an *old* generation, then prune hard.
        publish_manifest(tmp_path, 1, store_path(tmp_path, 1).name)
        pruned = prune_generations(tmp_path, keep=1)
        assert 1 not in pruned  # never the published one
        assert list_generations(tmp_path) == [1, 4]

    def test_prune_requires_positive_keep(self, tmp_path):
        with pytest.raises(ValueError):
            prune_generations(tmp_path, keep=0)


class TestStoreManager:
    def test_empty_store_serves_nothing(self, tmp_path):
        manager = StoreManager(tmp_path)
        assert manager.ranker() is None
        assert manager.generation is None

    def test_pickup_and_swap(self, tmp_path, ranker):
        manager = StoreManager(tmp_path)
        build_and_publish(tmp_path, ranker, "fig1")
        first = manager.ranker()
        assert first is not None and first.generation == 1
        assert manager.swaps == 0  # initial load is not a swap
        build_and_publish(tmp_path, ranker, "fig1")
        second = manager.ranker()
        assert second.generation == 2
        assert manager.swaps == 1

    def test_corrupt_new_generation_keeps_serving_old(self, tmp_path, ranker):
        manager = StoreManager(tmp_path)
        build_and_publish(tmp_path, ranker, "fig1")
        assert manager.ranker().generation == 1
        # Publish a garbage generation file by hand.
        bad = store_path(tmp_path, 2)
        bad.write_bytes(b"REPROSLB" + b"\x00" * 64)
        (tmp_path / MANIFEST_NAME).write_text(
            json.dumps({"generation": 2, "filename": bad.name}) + "\n",
            encoding="utf-8",
        )
        assert manager.ranker().generation == 1  # old one still serves
        assert manager.load_errors == 1

    def test_refresh_is_throttled(self, tmp_path, ranker):
        clock = [0.0]
        manager = StoreManager(
            tmp_path, refresh_seconds=5.0, clock=lambda: clock[0]
        )
        build_and_publish(tmp_path, ranker, "fig1")
        assert manager.ranker().generation == 1
        build_and_publish(tmp_path, ranker, "fig1")
        assert manager.ranker().generation == 1  # inside the throttle window
        clock[0] += 6.0
        assert manager.ranker().generation == 2
        assert manager.refresh(force=True) is False  # already current

    def test_publish_helper_swaps_local_view(self, tmp_path, ranker):
        manager = StoreManager(tmp_path)
        manifest = manager.publish(ranker, "fig1")
        assert manifest.generation == 1
        assert manager.generation == 1


def _reader(root, expected_by_bytes, terms, queue):
    """Hammer ranks across a swap; every answer must be exactly one gen."""
    vector = KeywordQuery(list(terms)).vector()
    manager = StoreManager(root)
    seen = set()
    deadline = time.monotonic() + 20.0
    while time.monotonic() < deadline:
        ranker = manager.ranker()
        if ranker is None:
            continue
        result = ranker.rank(vector)
        generation = expected_by_bytes.get(result.scores.tobytes())
        if generation is None:
            queue.put(("torn", sorted(seen)))
            return
        if ranker.generation != generation:
            queue.put(("mislabelled", sorted(seen)))
            return
        seen.add(generation)
        if len(seen) == 2:
            queue.put(("ok", sorted(seen)))
            return
    queue.put(("timeout", sorted(seen)))


class TestConcurrentSwap:
    def test_swap_under_concurrent_reader_processes(
        self, tmp_path, ranker, ranker_b
    ):
        """Readers in other processes never see a torn or mixed generation.

        Generation 1 and 2 hold *different* scores (different damping) for
        the same query, so any page-level tearing or half-applied swap would
        produce a byte pattern matching neither expectation.
        """
        terms = ("OLAP",)
        vector = KeywordQuery(list(terms)).vector()
        expected = {
            ranker.rank(vector).scores.tobytes(): 1,
            ranker_b.rank(vector).scores.tobytes(): 2,
        }
        assert len(expected) == 2  # the generations genuinely differ
        build_and_publish(tmp_path, ranker, "fig1")

        context = multiprocessing.get_context("fork")
        queue = context.Queue()
        readers = [
            context.Process(
                target=_reader, args=(tmp_path, expected, terms, queue)
            )
            for _ in range(2)
        ]
        for reader in readers:
            reader.start()
        time.sleep(0.3)  # let readers settle on generation 1
        build_and_publish(tmp_path, ranker_b, "fig1")

        outcomes = [queue.get(timeout=30.0) for _ in readers]
        for reader in readers:
            reader.join(timeout=10.0)
        assert outcomes == [("ok", [1, 2]), ("ok", [1, 2])]

    def test_reader_survives_pruning_of_its_generation(self, tmp_path, ranker, ranker_b):
        """A pinned ScoreStore outlives the unlink of its file (mmap pin)."""
        vector = KeywordQuery(["OLAP"]).vector()
        manager = StoreManager(tmp_path)
        build_and_publish(tmp_path, ranker, "fig1")
        pinned = manager.ranker()
        before = pinned.rank(vector).scores.tobytes()
        # keep=1 prunes generation 1 the moment generation 2 is published.
        build_and_publish(tmp_path, ranker_b, "fig1", keep=1)
        assert list_generations(tmp_path) == [2]
        assert pinned.rank(vector).scores.tobytes() == before
