"""Unit tests for query-focused subgraph execution."""

import numpy as np
import pytest

from repro.errors import EmptyBaseSetError
from repro.query import KeywordQuery, QueryVector
from repro.ranking import focused_neighborhood, focused_objectrank2, objectrank2


class TestNeighborhood:
    def test_horizon_zero_is_seeds(self, figure1_graph):
        seeds = [figure1_graph.index_of("v1")]
        assert list(focused_neighborhood(figure1_graph, seeds, 0)) == seeds

    def test_expansion_is_monotone(self, figure1_graph):
        seeds = [figure1_graph.index_of("v1")]
        previous: set[int] = set()
        for horizon in range(4):
            nodes = set(focused_neighborhood(figure1_graph, seeds, horizon))
            assert previous <= nodes
            previous = nodes

    def test_covers_whole_component_at_large_horizon(self, figure1_graph):
        seeds = [figure1_graph.index_of("v1")]
        nodes = focused_neighborhood(figure1_graph, seeds, 10)
        # everything is connected through positive-rate edges except none
        assert len(nodes) == figure1_graph.num_nodes

    def test_expand_cap_includes_but_does_not_expand_hubs(self, figure1_graph):
        seeds = [figure1_graph.index_of("v1")]
        uncapped = set(focused_neighborhood(figure1_graph, seeds, 10))
        capped = set(
            focused_neighborhood(figure1_graph, seeds, 10, expand_cap=1)
        )
        # Capped expansion is a subset; a cap at the maximum degree is a
        # no-op because every frontier node may still expand.
        assert capped <= uncapped
        max_degree = int(figure1_graph.node_degrees().max())
        assert set(
            focused_neighborhood(figure1_graph, seeds, 10, expand_cap=max_degree)
        ) == uncapped
        # Even the tightest cap keeps the seeds themselves.
        assert set(seeds) <= capped
        # A cap at the seed's own degree lets hop 1 run in full: hub
        # neighbors are *included*, the cap only stops expanding through them.
        seed_degree = int(figure1_graph.node_degrees()[seeds[0]])
        hop1 = set(focused_neighborhood(figure1_graph, seeds, 1))
        assert hop1 <= set(
            focused_neighborhood(figure1_graph, seeds, 10, expand_cap=seed_degree)
        )

    def test_node_budget_deepens_until_budget_or_max_horizon(self, figure1_graph):
        seeds = [figure1_graph.index_of("v1")]
        # A budget the graph never reaches: deepening runs to max_horizon.
        deep = focused_neighborhood(
            figure1_graph, seeds, 1, node_budget=10_000, max_horizon=10
        )
        assert list(deep) == list(focused_neighborhood(figure1_graph, seeds, 10))
        # A budget already met by the seeds: only the guaranteed hops run.
        shallow = focused_neighborhood(
            figure1_graph, seeds, 1, node_budget=1, max_horizon=10
        )
        assert list(shallow) == list(focused_neighborhood(figure1_graph, seeds, 1))

    def test_node_budget_without_max_horizon_is_fixed_horizon(self, figure1_graph):
        seeds = [figure1_graph.index_of("v1")]
        fixed = focused_neighborhood(figure1_graph, seeds, 2)
        assert list(
            focused_neighborhood(figure1_graph, seeds, 2, node_budget=10_000)
        ) == list(fixed)
        assert list(
            focused_neighborhood(figure1_graph, seeds, 2, max_horizon=10)
        ) == list(fixed)


class TestFocusedObjectRank2:
    def test_large_horizon_matches_exact(self, figure1_graph, figure1_scorer):
        vector = KeywordQuery(["olap"]).vector()
        exact = objectrank2(figure1_graph, figure1_scorer, vector, tolerance=1e-10)
        focused = focused_objectrank2(
            figure1_graph, figure1_scorer, vector, horizon=10, tolerance=1e-10
        )
        assert focused.ranked.scores == pytest.approx(exact.scores, abs=1e-8)
        assert focused.coverage == 1.0

    def test_small_horizon_zeroes_outside(self, figure1_graph, figure1_scorer):
        vector = KeywordQuery(["multidimensional"]).vector()  # base = v5 only
        focused = focused_objectrank2(
            figure1_graph, figure1_scorer, vector, horizon=1
        )
        inside = set(
            focused_neighborhood(
                figure1_graph, [figure1_graph.index_of("v5")], 1
            )
        )
        for index in range(figure1_graph.num_nodes):
            if index not in inside:
                assert focused.ranked.scores[index] == 0.0

    def test_top_result_stable_at_moderate_horizon(
        self, figure1_graph, figure1_scorer
    ):
        vector = KeywordQuery(["olap"]).vector()
        exact = objectrank2(figure1_graph, figure1_scorer, vector, tolerance=1e-10)
        focused = focused_objectrank2(
            figure1_graph, figure1_scorer, vector, horizon=2, tolerance=1e-10
        )
        assert focused.ranked.top_k(1)[0][0] == exact.top_k(1)[0][0]

    def test_subgraph_accounting(self, figure1_graph, figure1_scorer):
        focused = focused_objectrank2(
            figure1_graph, figure1_scorer, KeywordQuery(["olap"]).vector(), horizon=1
        )
        assert 0 < focused.subgraph_nodes <= figure1_graph.num_nodes
        assert focused.subgraph_edges > 0
        assert 0 < focused.coverage <= 1.0

    def test_empty_base_set_raises(self, figure1_graph, figure1_scorer):
        with pytest.raises(EmptyBaseSetError):
            focused_objectrank2(
                figure1_graph, figure1_scorer, QueryVector({"zzz": 1.0})
            )

    def test_negative_horizon_rejected(self, figure1_graph, figure1_scorer):
        with pytest.raises(ValueError):
            focused_objectrank2(
                figure1_graph, figure1_scorer, KeywordQuery(["olap"]).vector(),
                horizon=-1,
            )

    def test_quality_on_synthetic_dblp(self, dblp_tiny, dblp_tiny_engine):
        """Focused execution approximates the exact top-10 well at L=3."""
        vector = KeywordQuery(["olap"]).vector()
        engine = dblp_tiny_engine
        exact = objectrank2(engine.graph, engine.scorer, vector)
        focused = focused_objectrank2(engine.graph, engine.scorer, vector, horizon=3)
        exact_top = {nid for nid, _ in exact.top_k(10)}
        focused_top = {nid for nid, _ in focused.ranked.top_k(10)}
        assert len(exact_top & focused_top) >= 7
