"""Unit tests for the blocked multi-restart power-iteration engine."""

import numpy as np
import pytest
from scipy import sparse

from repro.errors import EmptyBaseSetError
from repro.query import QueryVector
from repro.ranking import (
    batched_keyword_vectors,
    batched_objectrank,
    batched_objectrank2,
    batched_power_iteration,
    keyword_objectrank,
    multi_keyword_objectrank,
    objectrank,
    objectrank2,
    power_iteration,
)


def random_substochastic(n: int, seed: int, density: float = 0.25) -> sparse.csr_matrix:
    matrix = sparse.random(n, n, density=density, random_state=seed, format="csr")
    column_sums = np.asarray(matrix.sum(axis=0)).ravel()
    column_sums[column_sums == 0] = 1.0
    return (matrix @ sparse.diags(1.0 / column_sums)).tocsr()


def random_restarts(n: int, k: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    restarts = rng.random((n, k))
    return restarts / restarts.sum(axis=0)


def assert_matches_serial(matrix, restarts, batch, **kwargs):
    """Column-by-column comparison against the serial engine.

    Scores and iteration counts are exact; the residual trace is recorded
    in a different (vectorized) summation order and matches to a few ulps.
    """
    for j in range(restarts.shape[1]):
        serial = power_iteration(matrix, restarts[:, j], **kwargs)
        column = batch.column(j)
        assert column.iterations == serial.iterations
        assert column.converged == serial.converged
        assert np.abs(column.scores - serial.scores).max() <= 1e-12
        assert len(column.residuals) == len(serial.residuals)
        assert column.residuals == pytest.approx(serial.residuals, rel=1e-9)


class TestBlockedEngine:
    def test_matches_serial_column_by_column(self):
        matrix = random_substochastic(50, seed=3)
        restarts = random_restarts(50, 6, seed=4)
        batch = batched_power_iteration(matrix, restarts, tolerance=1e-10)
        assert_matches_serial(matrix, restarts, batch, tolerance=1e-10)

    def test_frozen_without_compaction_matches_serial(self):
        matrix = random_substochastic(40, seed=5)
        restarts = random_restarts(40, 5, seed=6)
        batch = batched_power_iteration(
            matrix, restarts, tolerance=1e-9, compact=False
        )
        assert_matches_serial(matrix, restarts, batch, tolerance=1e-9)

    def test_columns_converge_independently(self):
        """A one-hot restart takes more iterations than a near-uniform one."""
        matrix = random_substochastic(60, seed=7)
        uniform = np.full(60, 1.0 / 60)
        one_hot = np.zeros(60)
        one_hot[0] = 1.0
        restarts = np.stack([uniform, one_hot], axis=1)
        batch = batched_power_iteration(matrix, restarts, tolerance=1e-10)
        assert batch.iterations[0] != batch.iterations[1]
        assert batch.converged.all()

    def test_max_iterations_cap_per_column(self):
        matrix = random_substochastic(30, seed=8)
        restarts = random_restarts(30, 3, seed=9)
        batch = batched_power_iteration(
            matrix, restarts, tolerance=0.0, max_iterations=4
        )
        assert (batch.iterations == 4).all()
        assert not batch.converged.any()
        assert_matches_serial(
            matrix, restarts, batch, tolerance=0.0, max_iterations=4
        )

    def test_shared_init_matches_serial(self):
        matrix = random_substochastic(30, seed=10)
        restarts = random_restarts(30, 4, seed=11)
        init = np.linspace(0.0, 1.0, 30)
        batch = batched_power_iteration(matrix, restarts, tolerance=1e-9, init=init)
        for j in range(4):
            serial = power_iteration(matrix, restarts[:, j], tolerance=1e-9, init=init)
            assert batch.column(j).iterations == serial.iterations
            assert np.abs(batch.column(j).scores - serial.scores).max() <= 1e-12

    def test_per_column_init(self):
        matrix = random_substochastic(20, seed=12)
        restarts = random_restarts(20, 2, seed=13)
        init = random_restarts(20, 2, seed=14)
        batch = batched_power_iteration(matrix, restarts, tolerance=1e-9, init=init)
        for j in range(2):
            serial = power_iteration(
                matrix, restarts[:, j], tolerance=1e-9, init=init[:, j]
            )
            assert batch.column(j).iterations == serial.iterations
            assert np.abs(batch.column(j).scores - serial.scores).max() <= 1e-12

    @pytest.mark.parametrize("pool", ["thread", "process"])
    def test_worker_pool_matches_serial(self, pool):
        matrix = random_substochastic(40, seed=15)
        restarts = random_restarts(40, 5, seed=16)
        batch = batched_power_iteration(
            matrix, restarts, tolerance=1e-9, workers=3, pool=pool
        )
        assert_matches_serial(matrix, restarts, batch, tolerance=1e-9)

    def test_empty_block(self):
        matrix = random_substochastic(10, seed=17)
        batch = batched_power_iteration(matrix, np.empty((10, 0)))
        assert batch.num_columns == 0
        assert batch.scores.shape == (10, 0)

    def test_validation_errors(self):
        matrix = random_substochastic(10, seed=18)
        with pytest.raises(ValueError):
            batched_power_iteration(matrix, np.zeros(10))  # 1-D block
        with pytest.raises(ValueError):
            batched_power_iteration(matrix, np.zeros((4, 2)))  # wrong n
        with pytest.raises(ValueError):
            batched_power_iteration(matrix, np.zeros((10, 2)), damping=1.5)
        with pytest.raises(ValueError):
            batched_power_iteration(matrix, np.zeros((10, 2)), pool="fiber")
        with pytest.raises(ValueError):
            batched_power_iteration(matrix, np.zeros((10, 2)), init=np.zeros(3))


class TestGraphLevelBatching:
    def test_batched_objectrank_matches_serial(self, figure1_graph):
        base_sets = [["v1", "v4"], ["v5"], ["v1", "v2", "v3"]]
        batched = batched_objectrank(figure1_graph, base_sets, tolerance=1e-10)
        for base, result in zip(base_sets, batched):
            serial = objectrank(figure1_graph, base, tolerance=1e-10)
            assert result.iterations == serial.iterations
            assert result.converged == serial.converged
            assert np.abs(result.scores - serial.scores).max() <= 1e-12
            assert result.base_weights == serial.base_weights

    def test_batched_objectrank_empty_base_set_raises(self, figure1_graph):
        with pytest.raises(EmptyBaseSetError):
            batched_objectrank(figure1_graph, [["v1"], []])

    def test_batched_keyword_vectors_matches_serial(
        self, figure1_graph, figure1_index
    ):
        keywords = list(figure1_index.vocabulary())
        batched = batched_keyword_vectors(
            figure1_graph, figure1_index, keywords, tolerance=1e-10
        )
        assert set(batched) == set(keywords)
        for keyword, result in batched.items():
            serial = keyword_objectrank(
                figure1_graph, figure1_index, keyword, tolerance=1e-10
            )
            assert result.iterations == serial.iterations
            assert np.abs(result.scores - serial.scores).max() <= 1e-12

    def test_batched_keyword_vectors_skips_unmatched(
        self, figure1_graph, figure1_index
    ):
        batched = batched_keyword_vectors(
            figure1_graph, figure1_index, ["olap", "notaword"]
        )
        assert list(batched) == ["olap"]

    def test_multi_keyword_objectrank_unchanged(
        self, figure1_graph, figure1_index
    ):
        """Equation 16 over the blocked engine equals the old serial loop."""
        result = multi_keyword_objectrank(
            figure1_graph, figure1_index, ("olap", "multidimensional"),
            tolerance=1e-10,
        )
        serial_parts = [
            keyword_objectrank(figure1_graph, figure1_index, kw, tolerance=1e-10)
            for kw in ("olap", "multidimensional")
        ]
        assert result.iterations == sum(p.iterations for p in serial_parts)
        assert result.converged

    def test_batched_objectrank2_matches_serial(
        self, figure1_graph, figure1_scorer
    ):
        vectors = [
            QueryVector({"olap": 1.0}),
            QueryVector({"olap": 1.0, "multidimensional": 2.0}),
            QueryVector({"cube": 1.0}),
        ]
        init = np.full(figure1_graph.num_nodes, 1.0 / figure1_graph.num_nodes)
        batched = batched_objectrank2(
            figure1_graph, figure1_scorer, vectors, tolerance=1e-10, init=init
        )
        for vector, result in zip(vectors, batched):
            serial = objectrank2(
                figure1_graph, figure1_scorer, vector, tolerance=1e-10, init=init
            )
            assert result.iterations == serial.iterations
            assert np.abs(result.scores - serial.scores).max() <= 1e-12
            assert result.base_weights == serial.base_weights
