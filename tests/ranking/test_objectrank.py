"""Unit tests for ObjectRank [BHP04] and the Equation 16 multi-keyword variant."""

import math

import pytest

from repro.errors import EmptyBaseSetError
from repro.ranking import (
    base_set,
    global_objectrank,
    keyword_objectrank,
    multi_keyword_objectrank,
    normalizing_exponent,
    objectrank,
)


class TestBaseSet:
    def test_base_set_contains_keyword_nodes(self, figure1_index):
        assert set(base_set(figure1_index, ("olap",))) == {"v1", "v4"}

    def test_base_set_union_over_keywords(self, figure1_index):
        nodes = set(base_set(figure1_index, ("olap", "multidimensional")))
        assert nodes == {"v1", "v4", "v5"}


class TestObjectRank:
    def test_uniform_base_weights(self, figure1_graph):
        result = objectrank(figure1_graph, ["v1", "v4"], tolerance=1e-10)
        assert result.base_weights == {"v1": 0.5, "v4": 0.5}

    def test_empty_base_set_raises(self, figure1_graph):
        with pytest.raises(EmptyBaseSetError):
            objectrank(figure1_graph, [])

    def test_data_cube_wins_olap(self, figure1_graph, figure1_index):
        result = keyword_objectrank(figure1_graph, figure1_index, "olap", tolerance=1e-10)
        assert result.top_k(1)[0][0] == "v7"

    def test_unknown_keyword_raises(self, figure1_graph, figure1_index):
        with pytest.raises(EmptyBaseSetError):
            keyword_objectrank(figure1_graph, figure1_index, "zzz")

    def test_top_k_sorted_descending(self, figure1_graph):
        result = objectrank(figure1_graph, ["v1"], tolerance=1e-10)
        scores = [s for _, s in result.top_k(7)]
        assert scores == sorted(scores, reverse=True)

    def test_top_k_caps_at_n(self, figure1_graph):
        result = objectrank(figure1_graph, ["v1"], tolerance=1e-10)
        assert len(result.top_k(100)) == figure1_graph.num_nodes
        assert result.top_k(0) == []

    def test_ranking_is_permutation(self, figure1_graph):
        result = objectrank(figure1_graph, ["v1"], tolerance=1e-10)
        assert sorted(result.ranking()) == sorted(figure1_graph.node_ids)

    def test_score_of(self, figure1_graph):
        result = objectrank(figure1_graph, ["v1"], tolerance=1e-10)
        top_id, top_score = result.top_k(1)[0]
        assert result.score_of(top_id) == pytest.approx(top_score)


class TestGlobalObjectRank:
    def test_runs_and_converges(self, figure1_graph):
        result = global_objectrank(figure1_graph, tolerance=1e-10)
        assert result.converged
        assert (result.scores > 0).all()

    def test_cited_paper_has_high_global_rank(self, figure1_graph):
        result = global_objectrank(figure1_graph, tolerance=1e-10)
        ranking = result.ranking()
        assert ranking.index("v7") < ranking.index("v5")


class TestNormalizingExponent:
    def test_formula(self):
        assert normalizing_exponent(100) == pytest.approx(1 / math.log(100))

    def test_clamped_for_small_sets(self):
        assert normalizing_exponent(1) == 1.0
        assert normalizing_exponent(2) == 1.0

    def test_decreases_with_popularity(self):
        assert normalizing_exponent(1000) < normalizing_exponent(10)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            normalizing_exponent(0)


class TestMultiKeyword:
    def test_combines_keywords(self, figure1_graph, figure1_index):
        result = multi_keyword_objectrank(
            figure1_graph, figure1_index, ("olap", "multidimensional"), tolerance=1e-10
        )
        assert result.converged
        assert len(result.base_weights) == 3

    def test_unmatched_keywords_skipped(self, figure1_graph, figure1_index):
        result = multi_keyword_objectrank(
            figure1_graph, figure1_index, ("olap", "zzz"), tolerance=1e-10
        )
        assert set(result.base_weights) == {"v1", "v4"}

    def test_all_unmatched_raises(self, figure1_graph, figure1_index):
        with pytest.raises(EmptyBaseSetError):
            multi_keyword_objectrank(figure1_graph, figure1_index, ("zz", "yy"))

    def test_duplicate_keywords_counted_once(self, figure1_graph, figure1_index):
        once = multi_keyword_objectrank(
            figure1_graph, figure1_index, ("olap",), tolerance=1e-10
        )
        twice = multi_keyword_objectrank(
            figure1_graph, figure1_index, ("olap", "olap"), tolerance=1e-10
        )
        assert twice.scores == pytest.approx(once.scores)

    def test_scores_normalized(self, figure1_graph, figure1_index):
        result = multi_keyword_objectrank(
            figure1_graph, figure1_index, ("olap", "databases"), tolerance=1e-10
        )
        assert result.scores.sum() == pytest.approx(1.0)
