"""Unit tests for early-terminating top-k ObjectRank2."""

import pytest

from repro.query import KeywordQuery
from repro.ranking import objectrank2, objectrank2_topk


class TestTopK:
    def test_same_topk_as_exact(self, figure1_graph, figure1_scorer):
        vector = KeywordQuery(["olap"]).vector()
        exact = objectrank2(figure1_graph, figure1_scorer, vector, tolerance=1e-10)
        fast = objectrank2_topk(figure1_graph, figure1_scorer, vector, k=3)
        assert [i for i, _ in fast.top_k(3)] == [i for i, _ in exact.top_k(3)]

    def test_terminates_early(self, dblp_tiny_engine):
        engine = dblp_tiny_engine
        vector = KeywordQuery(["olap"]).vector()
        exact = objectrank2(engine.graph, engine.scorer, vector, tolerance=1e-8)
        fast = objectrank2_topk(engine.graph, engine.scorer, vector, k=10)
        assert fast.iterations < exact.iterations

    def test_topk_matches_on_synthetic_dblp(self, dblp_tiny_engine):
        engine = dblp_tiny_engine
        vector = KeywordQuery(["mining"]).vector()
        exact = objectrank2(engine.graph, engine.scorer, vector, tolerance=1e-8)
        fast = objectrank2_topk(engine.graph, engine.scorer, vector, k=10)
        exact_ids = [i for i, _ in exact.top_k(10)]
        fast_ids = [i for i, _ in fast.top_k(10)]
        # identical sets; order may swap between near-tied neighbors
        assert set(fast_ids) == set(exact_ids)

    def test_warm_start_supported(self, figure1_graph, figure1_scorer):
        vector = KeywordQuery(["olap"]).vector()
        cold = objectrank2_topk(figure1_graph, figure1_scorer, vector, k=3)
        warm = objectrank2_topk(
            figure1_graph, figure1_scorer, vector, k=3, init=cold.scores
        )
        assert warm.iterations <= cold.iterations

    def test_stability_window_lengthens_run(self, figure1_graph, figure1_scorer):
        vector = KeywordQuery(["olap"]).vector()
        short = objectrank2_topk(
            figure1_graph, figure1_scorer, vector, k=3, stable_iterations=1
        )
        long = objectrank2_topk(
            figure1_graph, figure1_scorer, vector, k=3, stable_iterations=6
        )
        assert long.iterations >= short.iterations

    def test_validation(self, figure1_graph, figure1_scorer):
        vector = KeywordQuery(["olap"]).vector()
        with pytest.raises(ValueError):
            objectrank2_topk(figure1_graph, figure1_scorer, vector, k=0)
        with pytest.raises(ValueError):
            objectrank2_topk(
                figure1_graph, figure1_scorer, vector, k=3, stable_iterations=0
            )
