"""Unit tests for the pure-IR baseline (the paper's motivating contrast)."""

import pytest

from repro.errors import EmptyBaseSetError
from repro.query import KeywordQuery, QueryVector
from repro.ranking import ir_only_rank, objectrank2


class TestIrOnly:
    def test_nodes_without_keyword_score_zero(self, figure1_graph, figure1_scorer):
        result = ir_only_rank(
            figure1_graph, figure1_scorer, KeywordQuery(["olap"]).vector()
        )
        v7 = figure1_graph.index_of("v7")
        assert result.scores[v7] == 0.0

    def test_motivating_contrast_with_objectrank2(
        self, figure1_graph, figure1_scorer
    ):
        """Traditional IR misses 'Data Cube' for 'OLAP'; ObjectRank2 crowns it."""
        vector = KeywordQuery(["olap"]).vector()
        ir = ir_only_rank(figure1_graph, figure1_scorer, vector)
        flow = objectrank2(figure1_graph, figure1_scorer, vector, tolerance=1e-8)
        assert "v7" not in {nid for nid, s in ir.top_k(7) if s > 0}
        assert flow.top_k(1)[0][0] == "v7"

    def test_ranking_follows_ir_scores(self, figure1_graph, figure1_scorer):
        vector = KeywordQuery(["olap", "cubes"]).vector()
        result = ir_only_rank(figure1_graph, figure1_scorer, vector)
        # v4 mentions both query terms; v1 only one.
        assert result.score_of("v4") > result.score_of("v1")

    def test_no_iterations(self, figure1_graph, figure1_scorer):
        result = ir_only_rank(
            figure1_graph, figure1_scorer, KeywordQuery(["olap"]).vector()
        )
        assert result.iterations == 0
        assert result.converged

    def test_empty_base_set_raises(self, figure1_graph, figure1_scorer):
        with pytest.raises(EmptyBaseSetError):
            ir_only_rank(figure1_graph, figure1_scorer, QueryVector({"zzz": 1.0}))
