"""Unit tests for the HITS baseline."""

import numpy as np
import pytest
from scipy import sparse

from repro.ranking import hits


def adjacency(edges, n):
    rows = [u for u, _ in edges]
    cols = [v for _, v in edges]
    return sparse.csr_matrix(
        (np.ones(len(edges)), (rows, cols)), shape=(n, n)
    ).T.T  # keep csr


class TestHits:
    def test_authority_goes_to_pointed_node(self):
        # 1, 2, 3 all point to 0.
        matrix = adjacency([(1, 0), (2, 0), (3, 0)], 4)
        result = hits(matrix, tolerance=1e-12)
        assert result.converged
        assert result.authorities[0] == result.authorities.max()
        assert result.hubs[0] == pytest.approx(0.0, abs=1e-9)

    def test_hub_is_the_pointer(self):
        # 0 points to 1, 2, 3.
        matrix = adjacency([(0, 1), (0, 2), (0, 3)], 4)
        result = hits(matrix, tolerance=1e-12)
        assert result.hubs[0] == result.hubs.max()

    def test_vectors_l1_normalized(self):
        matrix = adjacency([(0, 1), (1, 2), (2, 0)], 3)
        result = hits(matrix, tolerance=1e-12)
        assert result.authorities.sum() == pytest.approx(1.0)
        assert result.hubs.sum() == pytest.approx(1.0)

    def test_iteration_cap(self):
        matrix = adjacency([(0, 1), (1, 0)], 2)
        result = hits(matrix, tolerance=0.0, max_iterations=4)
        assert result.iterations == 4
        assert not result.converged

    def test_symmetric_cycle_uniform(self):
        matrix = adjacency([(0, 1), (1, 2), (2, 0)], 3)
        result = hits(matrix, tolerance=1e-12)
        assert result.authorities == pytest.approx(np.full(3, 1 / 3), abs=1e-8)
