"""Unit tests for the topic-sensitive PageRank baseline [Hav02]."""

import pytest

from repro.ranking import TopicSensitiveRanker


@pytest.fixture
def ranker(figure1_graph):
    ranker = TopicSensitiveRanker(figure1_graph, tolerance=1e-10)
    ranker.add_topic("olap", ["v1", "v4"])
    ranker.add_topic("modeling", ["v5"])
    return ranker


class TestTopicSensitive:
    def test_topics_registered(self, ranker):
        assert ranker.topics == ["olap", "modeling"]

    def test_empty_seed_rejected(self, figure1_graph):
        ranker = TopicSensitiveRanker(figure1_graph)
        with pytest.raises(ValueError):
            ranker.add_topic("empty", [])

    def test_single_topic_matches_objectrank_shape(self, ranker):
        """The olap topic vector should crown v7, like query-time ObjectRank."""
        top = ranker.top_k({"olap": 1.0}, 1)
        assert top[0][0] == "v7"

    def test_blending_is_convex(self, ranker):
        olap = ranker.rank({"olap": 1.0})
        modeling = ranker.rank({"modeling": 1.0})
        blended = ranker.rank({"olap": 1.0, "modeling": 1.0})
        assert blended == pytest.approx(0.5 * olap + 0.5 * modeling)

    def test_unknown_topic_ignored_if_others_known(self, ranker):
        known_only = ranker.rank({"olap": 1.0, "nope": 3.0})
        assert known_only == pytest.approx(ranker.rank({"olap": 1.0}))

    def test_all_unknown_raises(self, ranker):
        with pytest.raises(ValueError):
            ranker.rank({"nope": 1.0})

    def test_zero_weights_raise(self, ranker):
        with pytest.raises(ValueError):
            ranker.rank({"olap": 0.0})
