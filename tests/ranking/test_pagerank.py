"""Unit tests for the power-iteration core and PageRank variants."""

import numpy as np
import pytest
from scipy import sparse

from repro.ranking import (
    pagerank,
    personalized_pagerank,
    power_iteration,
    restart_distribution,
)


def cycle_matrix(n: int) -> sparse.csr_matrix:
    """A directed n-cycle, column-stochastic (each node sends all to next)."""
    rows = [(i + 1) % n for i in range(n)]
    cols = list(range(n))
    return sparse.csr_matrix((np.ones(n), (rows, cols)), shape=(n, n))


class TestPowerIteration:
    def test_uniform_on_symmetric_cycle(self):
        matrix = cycle_matrix(4)
        restart = np.full(4, 0.25)
        result = power_iteration(matrix, restart, tolerance=1e-12)
        assert result.converged
        assert result.scores == pytest.approx(np.full(4, 0.25), abs=1e-6)

    def test_fixpoint_property(self):
        """Converged scores satisfy r = d A r + (1-d) s."""
        matrix = cycle_matrix(5)
        restart = np.zeros(5)
        restart[0] = 1.0
        result = power_iteration(matrix, restart, damping=0.85, tolerance=1e-12)
        reconstructed = 0.85 * (matrix @ result.scores) + 0.15 * restart
        assert result.scores == pytest.approx(reconstructed, abs=1e-9)

    def test_iteration_count_and_residuals(self):
        matrix = cycle_matrix(5)
        restart = np.full(5, 0.2)
        result = power_iteration(matrix, restart, tolerance=1e-10)
        assert result.iterations == len(result.residuals)
        assert result.residuals[-1] < 1e-10
        # residuals shrink overall
        assert result.residuals[-1] <= result.residuals[0]

    def test_max_iterations_cap(self):
        matrix = cycle_matrix(50)
        restart = np.zeros(50)
        restart[0] = 1.0
        result = power_iteration(matrix, restart, tolerance=0.0, max_iterations=3)
        assert result.iterations == 3
        assert not result.converged

    def test_warm_start_reduces_iterations(self):
        matrix = cycle_matrix(30)
        restart = np.zeros(30)
        restart[0] = 1.0
        cold = power_iteration(matrix, restart, tolerance=1e-10)
        warm = power_iteration(matrix, restart, tolerance=1e-10, init=cold.scores)
        assert warm.iterations < cold.iterations
        assert warm.scores == pytest.approx(cold.scores, abs=1e-8)

    def test_invalid_damping(self):
        matrix = cycle_matrix(3)
        restart = np.full(3, 1 / 3)
        for damping in (0.0, 1.0, -0.2, 1.5):
            with pytest.raises(ValueError):
                power_iteration(matrix, restart, damping=damping)

    def test_restart_shape_checked(self):
        with pytest.raises(ValueError):
            power_iteration(cycle_matrix(3), np.zeros(4))


class TestPageRank:
    def test_sink_free_cycle_is_uniform(self):
        result = pagerank(cycle_matrix(6), tolerance=1e-12)
        assert result.scores == pytest.approx(np.full(6, 1 / 6), abs=1e-8)

    def test_hub_attracts_authority(self):
        """Star graph: all leaves point to node 0, which gets the most."""
        n = 6
        rows = [0] * (n - 1)
        cols = list(range(1, n))
        matrix = sparse.csr_matrix((np.ones(n - 1), (rows, cols)), shape=(n, n))
        result = pagerank(matrix, tolerance=1e-12)
        assert result.scores[0] == result.scores.max()


class TestPersonalized:
    def test_restart_mass_concentrates_near_seeds(self):
        matrix = cycle_matrix(10)
        result = personalized_pagerank(matrix, np.asarray([0]), tolerance=1e-12)
        assert result.scores[0] == result.scores.max()

    def test_weights_normalized(self):
        matrix = cycle_matrix(4)
        uniform = personalized_pagerank(
            matrix, np.asarray([0, 1]), np.asarray([5.0, 5.0]), tolerance=1e-12
        )
        explicit = personalized_pagerank(
            matrix, np.asarray([0, 1]), np.asarray([0.5, 0.5]), tolerance=1e-12
        )
        assert uniform.scores == pytest.approx(explicit.scores)

    def test_empty_restart_rejected(self):
        matrix = cycle_matrix(4)
        with pytest.raises(ValueError):
            personalized_pagerank(matrix, np.asarray([0]), np.asarray([0.0]))

    def test_duplicate_restart_nodes_accumulate(self):
        """Regression: a node listed twice (e.g. a base-set object matched by
        two keywords) must accumulate both weights, not keep only the last
        one (the old fancy-assignment behavior)."""
        matrix = cycle_matrix(6)
        duplicated = personalized_pagerank(
            matrix,
            np.asarray([0, 0, 1]),
            np.asarray([0.3, 0.3, 0.4]),
            tolerance=1e-12,
        )
        merged = personalized_pagerank(
            matrix, np.asarray([0, 1]), np.asarray([0.6, 0.4]), tolerance=1e-12
        )
        assert duplicated.scores == pytest.approx(merged.scores, abs=1e-12)
        # The buggy last-write-wins distribution is measurably different.
        last_write_wins = personalized_pagerank(
            matrix, np.asarray([0, 1]), np.asarray([0.3, 0.4]), tolerance=1e-12
        )
        assert np.abs(duplicated.scores - last_write_wins.scores).max() > 1e-3

    def test_duplicate_uniform_restarts_accumulate(self):
        distribution = restart_distribution(4, np.asarray([0, 0, 1]))
        assert distribution == pytest.approx(np.asarray([2 / 3, 1 / 3, 0.0, 0.0]))
