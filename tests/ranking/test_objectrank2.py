"""Unit tests for ObjectRank2 (Section 3, Equation 4)."""

import pytest

from repro.errors import EmptyBaseSetError
from repro.ir import UniformScorer
from repro.query import KeywordQuery, QueryVector
from repro.ranking import objectrank, objectrank2, weighted_base_set


class TestWeightedBaseSet:
    def test_weights_sum_to_one(self, figure1_scorer):
        base = weighted_base_set(figure1_scorer, KeywordQuery(["olap"]).vector())
        assert sum(base.values()) == pytest.approx(1.0)
        assert set(base) == {"v1", "v4"}

    def test_ir_score_drives_weighting(self, figure1_scorer):
        """v4's title mentions both 'OLAP' and 'cubes': for the query
        [olap, cubes] it must receive more jump probability than v1."""
        base = weighted_base_set(
            figure1_scorer, KeywordQuery(["olap", "cubes"]).vector()
        )
        assert base["v4"] > base["v1"]

    def test_zero_weight_terms_ignored(self, figure1_scorer):
        vector = QueryVector({"olap": 1.0, "multidimensional": 0.0})
        base = weighted_base_set(figure1_scorer, vector)
        assert set(base) == {"v1", "v4"}

    def test_empty_base_set_raises(self, figure1_scorer):
        with pytest.raises(EmptyBaseSetError):
            weighted_base_set(figure1_scorer, QueryVector({"zzz": 1.0}))

    def test_degenerate_scores_fall_back_to_floor(self, figure1_index):
        """A keyword in *every* Paper gets idf 0; such nodes still enter the
        base set with a positive floor weight rather than vanishing."""
        from repro.ir import BM25Scorer

        scorer = BM25Scorer(figure1_index)
        # "1997" appears in v1, v3, v4, v5 (4 of 7 docs) -> idf clamps to 0.
        base = weighted_base_set(scorer, QueryVector({"1997": 1.0}))
        assert len(base) == 4
        assert all(w > 0 for w in base.values())
        assert sum(base.values()) == pytest.approx(1.0)


class TestObjectRank2:
    def test_matches_figure6_convergence(self, olap_result):
        """The paper reports convergence 'after 5 iterations' at a loose
        threshold; at 1e-8 we just require convergence and sane scores."""
        assert olap_result.converged
        assert (olap_result.scores >= 0).all()

    def test_figure6_score_ordering(self, olap_result):
        """Figure 6 scores: r = [.076, .002, .009, .076, .017, .025, .083]
        give the ordering v7 > {v1, v4} > v6 > v3 > v2/v5."""
        ranking = olap_result.ranking()
        assert ranking[0] == "v7"
        assert set(ranking[1:3]) == {"v1", "v4"}

    def test_reduces_to_objectrank_with_uniform_scorer(
        self, figure1_graph, figure1_index
    ):
        """With a 0/1 scorer the weighted base set is uniform, so ObjectRank2
        equals ObjectRank exactly."""
        result2 = objectrank2(
            figure1_graph,
            UniformScorer(figure1_index),
            KeywordQuery(["olap"]).vector(),
            tolerance=1e-12,
        )
        result1 = objectrank(figure1_graph, ["v1", "v4"], tolerance=1e-12)
        assert result2.scores == pytest.approx(result1.scores, abs=1e-9)

    def test_query_weights_shift_ranking(self, figure1_graph, figure1_scorer):
        """Upweighting 'multidimensional' pulls v5's neighborhood up."""
        plain = objectrank2(
            figure1_graph,
            figure1_scorer,
            QueryVector({"olap": 1.0, "multidimensional": 0.01}),
            tolerance=1e-10,
        )
        boosted = objectrank2(
            figure1_graph,
            figure1_scorer,
            QueryVector({"olap": 1.0, "multidimensional": 100.0}),
            tolerance=1e-10,
        )
        v5 = figure1_graph.index_of("v5")
        assert boosted.scores[v5] > plain.scores[v5]

    def test_warm_start_same_fixpoint(self, figure1_graph, figure1_scorer, olap_result):
        warm = objectrank2(
            figure1_graph,
            figure1_scorer,
            KeywordQuery(["olap"]).vector(),
            tolerance=1e-8,
            init=olap_result.scores,
        )
        assert warm.scores == pytest.approx(olap_result.scores, abs=1e-6)
        assert warm.iterations <= olap_result.iterations
