"""Unit tests for precomputed per-keyword rankings (the [BHP04] mode)."""

import pytest

from repro.datasets import dblp_transfer_schema
from repro.errors import EmptyBaseSetError, PrecomputedCoverageError
from repro.query import QueryVector
from repro.ranking import PrecomputedRanker, keyword_objectrank


@pytest.fixture
def ranker(figure1_graph, figure1_index):
    return PrecomputedRanker(
        figure1_graph, figure1_index, min_document_frequency=1, tolerance=1e-10
    )


class TestPrecomputation:
    def test_vocabulary_covered(self, ranker, figure1_index):
        assert set(ranker.keywords) == set(figure1_index.vocabulary())

    def test_min_document_frequency_filter(self, figure1_graph, figure1_index):
        filtered = PrecomputedRanker(
            figure1_graph, figure1_index, min_document_frequency=2
        )
        for keyword in filtered.keywords:
            assert figure1_index.document_frequency(keyword) >= 2

    def test_explicit_keyword_list(self, figure1_graph, figure1_index):
        ranker = PrecomputedRanker(figure1_graph, figure1_index, keywords=["olap"])
        assert ranker.keywords == ["olap"]
        assert not ranker.has_keyword("xml-ish-unknown")

    def test_unmatched_keywords_skipped(self, figure1_graph, figure1_index):
        ranker = PrecomputedRanker(
            figure1_graph, figure1_index, keywords=["olap", "notaword"]
        )
        assert ranker.keywords == ["olap"]


class TestQueryAnswering:
    def test_single_keyword_matches_exact_objectrank(
        self, ranker, figure1_graph, figure1_index
    ):
        """One cached keyword = the exact per-keyword ObjectRank vector."""
        cached = ranker.rank(QueryVector({"olap": 1.0}))
        exact = keyword_objectrank(
            figure1_graph, figure1_index, "olap", tolerance=1e-10
        )
        assert cached.scores == pytest.approx(exact.scores, abs=1e-8)
        assert cached.iterations == 0  # no query-time power iteration

    def test_data_cube_still_wins(self, ranker):
        result = ranker.rank(QueryVector({"olap": 1.0}))
        assert result.top_k(1)[0][0] == "v7"

    def test_blending_weights_respect_query_vector(self, ranker, figure1_graph):
        plain = ranker.rank(QueryVector({"olap": 1.0, "multidimensional": 1.0}))
        boosted = ranker.rank(QueryVector({"olap": 1.0, "multidimensional": 50.0}))
        v5 = figure1_graph.index_of("v5")
        assert boosted.scores[v5] > plain.scores[v5]

    def test_unknown_query_raises(self, ranker):
        with pytest.raises(EmptyBaseSetError):
            ranker.rank(QueryVector({"notaword": 1.0}))

    def test_zero_weight_terms_ignored(self, ranker):
        with pytest.raises(EmptyBaseSetError):
            ranker.rank(QueryVector({"olap": 0.0}))


class TestCoverage:
    """Regression: uncached terms must not be silently dropped (e.g. the
    expansion terms a content-based reformulation adds)."""

    def test_partial_coverage_raises_by_default(self, figure1_graph, figure1_index):
        ranker = PrecomputedRanker(figure1_graph, figure1_index, keywords=["olap"])
        with pytest.raises(PrecomputedCoverageError) as excinfo:
            ranker.rank(QueryVector({"olap": 1.0, "multidimensional": 1.0}))
        assert excinfo.value.keywords == ("multidimensional",)
        assert excinfo.value.coverage == pytest.approx(0.5)

    def test_partial_coverage_error_is_empty_base_set_error(
        self, figure1_graph, figure1_index
    ):
        """Serving layers catching EmptyBaseSetError fall back to live."""
        ranker = PrecomputedRanker(figure1_graph, figure1_index, keywords=["olap"])
        with pytest.raises(EmptyBaseSetError):
            ranker.rank(QueryVector({"olap": 1.0, "multidimensional": 1.0}))

    def test_threshold_admits_partial_coverage(self, figure1_graph, figure1_index):
        ranker = PrecomputedRanker(
            figure1_graph, figure1_index, keywords=["olap"], min_coverage=0.5
        )
        result = ranker.rank(QueryVector({"olap": 2.0, "multidimensional": 1.0}))
        assert result.coverage == pytest.approx(2 / 3)

    def test_full_coverage_reports_one(self, ranker):
        result = ranker.rank(QueryVector({"olap": 1.0}))
        assert result.coverage == 1.0

    def test_coverage_helper(self, figure1_graph, figure1_index):
        ranker = PrecomputedRanker(figure1_graph, figure1_index, keywords=["olap"])
        assert ranker.coverage(QueryVector({"olap": 1.0})) == 1.0
        assert ranker.coverage(
            QueryVector({"olap": 1.0, "multidimensional": 3.0})
        ) == pytest.approx(0.25)
        assert ranker.coverage(QueryVector({"olap": 0.0})) == 0.0

    def test_invalid_threshold_rejected(self, figure1_graph, figure1_index):
        with pytest.raises(ValueError):
            PrecomputedRanker(
                figure1_graph, figure1_index, keywords=["olap"], min_coverage=1.5
            )

    def test_fully_uncached_query_still_empty_base_set(self, ranker):
        """A query with no cached term at all keeps the original error."""
        with pytest.raises(EmptyBaseSetError):
            ranker.rank(QueryVector({"notaword": 1.0}))


class TestDegenerateZeroWeight:
    """Regression for the RL005 fix: the total-weight guard in ``rank`` is
    ``<= 0.0`` (not ``== 0.0``), so every degenerate path raises
    :class:`EmptyBaseSetError` instead of reaching the ``blended /=
    total_weight`` division below it."""

    def test_all_zero_weights_raise_not_divide(self, ranker):
        with pytest.raises(EmptyBaseSetError):
            ranker.rank(QueryVector({"olap": 0.0, "multidimensional": 0.0}))

    def test_negative_weights_rejected_at_construction(self):
        """Negative weights never reach rank(): QueryVector refuses them, so
        the guard's only degenerate inputs are exact zeros."""
        with pytest.raises(ValueError):
            QueryVector({"olap": -1.0})

    def test_zero_weight_cached_and_uncached_mix_raises(self, ranker):
        with pytest.raises(EmptyBaseSetError):
            ranker.rank(QueryVector({"olap": 0.0, "notaword": 0.0}))

    def test_tiny_positive_weight_still_answers(self, ranker):
        """The guard must not swallow genuinely tiny-but-positive weights:
        blending normalizes, so a scaled-down query ranks identically."""
        tiny = ranker.rank(QueryVector({"olap": 1e-300}))
        full = ranker.rank(QueryVector({"olap": 1.0}))
        assert tiny.top_k(3) == pytest.approx(full.top_k(3))

    def test_zero_weight_terms_do_not_poison_positive_ones(self, ranker):
        mixed = ranker.rank(QueryVector({"olap": 1.0, "multidimensional": 0.0}))
        pure = ranker.rank(QueryVector({"olap": 1.0}))
        assert mixed.scores == pytest.approx(pure.scores)
        assert mixed.coverage == 1.0  # zero-weight terms are not "considered"


class TestBatchedBuild:
    def test_workers_build_matches_serial_build(self, figure1_graph, figure1_index):
        import numpy as np

        serial = PrecomputedRanker(
            figure1_graph, figure1_index, min_document_frequency=1, tolerance=1e-10
        )
        pooled = PrecomputedRanker(
            figure1_graph,
            figure1_index,
            min_document_frequency=1,
            tolerance=1e-10,
            workers=3,
        )
        assert serial.keywords == pooled.keywords
        for keyword in serial.keywords:
            assert np.abs(
                serial._vectors[keyword] - pooled._vectors[keyword]
            ).max() <= 1e-12
        assert serial.build_iterations == pooled.build_iterations


class TestStaleness:
    def test_fresh_cache_not_stale(self, ranker):
        assert not ranker.is_stale()

    def test_rate_change_detected(self, ranker):
        learned = dblp_transfer_schema([0.5, 0.0, 0.3, 0.1, 0.2, 0.2, 0.2, 0.1])
        assert ranker.is_stale(learned)

    def test_equal_rates_not_stale(self, ranker):
        assert not ranker.is_stale(dblp_transfer_schema())

    def test_graph_mutation_detected(self):
        # Regression: is_stale() once fingerprinted only the transfer rates,
        # so a ranker built before a graph mutation kept serving scores for
        # a topology that no longer existed.
        from repro.datasets.figure1 import figure1_dataset
        from repro.graph import AuthorityTransferDataGraph
        from repro.ir import InvertedIndex

        dataset = figure1_dataset()
        graph = AuthorityTransferDataGraph(
            dataset.data_graph, dataset.transfer_schema
        )
        ranker = PrecomputedRanker(
            graph, InvertedIndex.from_graph(dataset.data_graph),
            min_document_frequency=1,
        )
        assert not ranker.is_stale()
        dataset.data_graph.add_node(
            "p_new", "Paper", {"title": "A fresh OLAP paper"}
        )
        assert ranker.is_stale()
        assert ranker.is_stale(dblp_transfer_schema())

    def test_explicit_graph_version_comparison(self):
        from repro.datasets.figure1 import figure1_dataset
        from repro.graph import AuthorityTransferDataGraph
        from repro.ir import InvertedIndex

        dataset = figure1_dataset()
        graph = AuthorityTransferDataGraph(
            dataset.data_graph, dataset.transfer_schema
        )
        ranker = PrecomputedRanker(
            graph, InvertedIndex.from_graph(dataset.data_graph),
            min_document_frequency=1,
        )
        assert not ranker.is_stale(graph_version=ranker.graph_version)
        assert ranker.is_stale(graph_version=ranker.graph_version + 1)
