"""Unit tests for precomputed per-keyword rankings (the [BHP04] mode)."""

import pytest

from repro.datasets import dblp_transfer_schema
from repro.errors import EmptyBaseSetError
from repro.query import QueryVector
from repro.ranking import PrecomputedRanker, keyword_objectrank


@pytest.fixture
def ranker(figure1_graph, figure1_index):
    return PrecomputedRanker(
        figure1_graph, figure1_index, min_document_frequency=1, tolerance=1e-10
    )


class TestPrecomputation:
    def test_vocabulary_covered(self, ranker, figure1_index):
        assert set(ranker.keywords) == set(figure1_index.vocabulary())

    def test_min_document_frequency_filter(self, figure1_graph, figure1_index):
        filtered = PrecomputedRanker(
            figure1_graph, figure1_index, min_document_frequency=2
        )
        for keyword in filtered.keywords:
            assert figure1_index.document_frequency(keyword) >= 2

    def test_explicit_keyword_list(self, figure1_graph, figure1_index):
        ranker = PrecomputedRanker(figure1_graph, figure1_index, keywords=["olap"])
        assert ranker.keywords == ["olap"]
        assert not ranker.has_keyword("xml-ish-unknown")

    def test_unmatched_keywords_skipped(self, figure1_graph, figure1_index):
        ranker = PrecomputedRanker(
            figure1_graph, figure1_index, keywords=["olap", "notaword"]
        )
        assert ranker.keywords == ["olap"]


class TestQueryAnswering:
    def test_single_keyword_matches_exact_objectrank(
        self, ranker, figure1_graph, figure1_index
    ):
        """One cached keyword = the exact per-keyword ObjectRank vector."""
        cached = ranker.rank(QueryVector({"olap": 1.0}))
        exact = keyword_objectrank(
            figure1_graph, figure1_index, "olap", tolerance=1e-10
        )
        assert cached.scores == pytest.approx(exact.scores, abs=1e-8)
        assert cached.iterations == 0  # no query-time power iteration

    def test_data_cube_still_wins(self, ranker):
        result = ranker.rank(QueryVector({"olap": 1.0}))
        assert result.top_k(1)[0][0] == "v7"

    def test_blending_weights_respect_query_vector(self, ranker, figure1_graph):
        plain = ranker.rank(QueryVector({"olap": 1.0, "multidimensional": 1.0}))
        boosted = ranker.rank(QueryVector({"olap": 1.0, "multidimensional": 50.0}))
        v5 = figure1_graph.index_of("v5")
        assert boosted.scores[v5] > plain.scores[v5]

    def test_unknown_query_raises(self, ranker):
        with pytest.raises(EmptyBaseSetError):
            ranker.rank(QueryVector({"notaword": 1.0}))

    def test_zero_weight_terms_ignored(self, ranker):
        with pytest.raises(EmptyBaseSetError):
            ranker.rank(QueryVector({"olap": 0.0}))


class TestStaleness:
    def test_fresh_cache_not_stale(self, ranker):
        assert not ranker.is_stale()

    def test_rate_change_detected(self, ranker):
        learned = dblp_transfer_schema([0.5, 0.0, 0.3, 0.1, 0.2, 0.2, 0.2, 0.1])
        assert ranker.is_stale(learned)

    def test_equal_rates_not_stale(self, ranker):
        assert not ranker.is_stale(dblp_transfer_schema())
