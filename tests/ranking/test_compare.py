"""Unit tests for ranking deltas."""

import pytest

from repro.ranking import ranking_delta


class TestRankingDelta:
    def test_identical_rankings_all_same(self):
        delta = ranking_delta(["a", "b"], ["a", "b"])
        assert delta.stable_fraction == 1.0
        assert delta.summary() == "up: 0, down: 0, entered: 0, dropped: 0, same: 2"

    def test_swap_detected(self):
        delta = ranking_delta(["a", "b"], ["b", "a"])
        up = delta.of_kind("up")
        down = delta.of_kind("down")
        assert [c.node_id for c in up] == ["b"]
        assert [c.node_id for c in down] == ["a"]

    def test_enter_and_drop(self):
        delta = ranking_delta(["a", "b"], ["a", "c"])
        assert [c.node_id for c in delta.of_kind("entered")] == ["c"]
        assert [c.node_id for c in delta.of_kind("dropped")] == ["b"]

    def test_window_limits_comparison(self):
        before = ["a", "b", "c", "d"]
        after = ["a", "b", "d", "c"]
        delta = ranking_delta(before, after, window=2)
        assert delta.stable_fraction == 1.0  # c/d swap is outside the window

    def test_risers_sorted_by_jump(self):
        before = ["a", "b", "c", "d"]
        after = ["d", "c", "a", "b"]
        delta = ranking_delta(before, after)
        risers = [c.node_id for c in delta.of_kind("up")]
        assert risers[0] == "d"  # jumped 3 places, listed first

    def test_empty_rankings(self):
        delta = ranking_delta([], [])
        assert delta.changes == ()
        assert delta.stable_fraction == 1.0

    def test_kind_ordering_in_changes(self):
        delta = ranking_delta(["a", "b", "c"], ["b", "a", "d"])
        kinds = [c.kind for c in delta.changes]
        assert kinds == ["up", "entered", "down", "dropped"]

    def test_real_reformulation_delta(self, figure1):
        from repro.core import ObjectRankSystem, SystemConfig

        system = ObjectRankSystem(
            figure1.data_graph, figure1.transfer_schema,
            SystemConfig(top_k=7, radius=None),
        )
        before = system.query("OLAP").ranked.ranking()
        outcome = system.feedback(["v4"])
        after = outcome.result.ranked.ranking()
        delta = ranking_delta(before, after, window=7)
        # the feedback object or its neighborhood must move somewhere
        assert delta.summary()
        assert len(delta.changes) == 7


class TestMetricsOnDeltas:
    def test_kendall_tau_bounds(self):
        from repro.feedback import kendall_tau

        assert kendall_tau(["a", "b", "c"], ["a", "b", "c"]) == 1.0
        assert kendall_tau(["a", "b", "c"], ["c", "b", "a"]) == -1.0
        assert kendall_tau(["a"], ["a"]) == 0.0  # under two common items

    def test_kendall_ignores_missing(self):
        from repro.feedback import kendall_tau

        assert kendall_tau(["a", "x", "b"], ["a", "b", "y"]) == 1.0

    def test_footrule_bounds(self):
        from repro.feedback import spearman_footrule

        assert spearman_footrule(["a", "b"], ["a", "b"]) == 0.0
        assert spearman_footrule(["a", "b"], ["b", "a"]) == pytest.approx(1.0)

    def test_footrule_partial_displacement(self):
        from repro.feedback import spearman_footrule

        value = spearman_footrule(["a", "b", "c"], ["a", "c", "b"])
        assert 0.0 < value < 1.0
