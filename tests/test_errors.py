"""Unit tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        leaf_classes = [
            errors.GraphError,
            errors.UnknownNodeError,
            errors.UnknownLabelError,
            errors.DuplicateNodeError,
            errors.ConformanceError,
            errors.RateError,
            errors.ConvergenceError,
            errors.EmptyBaseSetError,
            errors.ExplanationError,
            errors.DatasetError,
            errors.StorageError,
        ]
        for cls in leaf_classes:
            assert issubclass(cls, errors.ReproError)

    def test_graph_errors_grouped(self):
        for cls in (
            errors.UnknownNodeError,
            errors.UnknownLabelError,
            errors.DuplicateNodeError,
            errors.ConformanceError,
        ):
            assert issubclass(cls, errors.GraphError)


class TestMessages:
    def test_unknown_node_carries_id(self):
        error = errors.UnknownNodeError("v42")
        assert error.node_id == "v42"
        assert "v42" in str(error)

    def test_conformance_preview_truncates(self):
        violations = [f"violation {i}" for i in range(8)]
        error = errors.ConformanceError(violations)
        assert error.violations == violations
        assert "+3 more" in str(error)

    def test_conformance_short_list_no_suffix(self):
        error = errors.ConformanceError(["only one"])
        assert "more" not in str(error)

    def test_convergence_error_fields(self):
        error = errors.ConvergenceError("test fixpoint", 100, 0.5)
        assert error.iterations == 100
        assert error.residual == 0.5
        assert "test fixpoint" in str(error)

    def test_empty_base_set_keywords(self):
        error = errors.EmptyBaseSetError(("olap", "xml"))
        assert error.keywords == ("olap", "xml")

    def test_catching_base_class(self):
        with pytest.raises(errors.ReproError):
            raise errors.DatasetError("nope")
