#!/usr/bin/env python
"""CI smoke test: boot the HTTP query service and hit it for real.

Starts ``QueryHTTPServer`` on an ephemeral port over ``dblp_tiny`` (the same
configuration ``repro serve dblp_tiny`` uses), then asserts:

- ``/healthz`` answers 200 with ``status: ok``;
- ``/search`` answers 200 with a non-empty ranked result list;
- a repeated identical query is served from the cache, and the ``/metrics``
  hit counter proves it.

Exits non-zero on any failure, so a workflow can gate on it directly:

    PYTHONPATH=src python scripts/smoke_serve.py
"""

from __future__ import annotations

import json
import sys
import threading
import urllib.request

from repro.serve import QueryService, ServeConfig, create_server


def fetch(url: str) -> tuple[int, bytes]:
    with urllib.request.urlopen(url, timeout=60) as response:
        return response.status, response.read()


def main() -> int:
    service = QueryService(ServeConfig(datasets=("dblp_tiny",), precompute=False))
    service.preload()
    server = create_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = server.url
    print(f"smoke: serving on {base}")
    try:
        status, body = fetch(f"{base}/healthz")
        assert status == 200, f"/healthz returned {status}"
        health = json.loads(body)
        assert health["status"] == "ok", health

        status, body = fetch(f"{base}/search?dataset=dblp_tiny&q=olap&top_k=5")
        assert status == 200, f"/search returned {status}"
        first = json.loads(body)
        assert first["results"], "search returned no results"
        print(f"smoke: /search 200, top hit {first['results'][0]['id']} "
              f"(served {first['served_from']})")

        status, body = fetch(f"{base}/search?dataset=dblp_tiny&q=olap&top_k=5")
        assert status == 200
        repeat = json.loads(body)
        assert repeat["served_from"] == "cache", repeat["served_from"]
        assert repeat["results"] == first["results"]

        status, body = fetch(f"{base}/metrics")
        assert status == 200, f"/metrics returned {status}"
        assert b"repro_cache_hits_total 1" in body, "cache hit not counted"
        print("smoke: repeat query served from cache, hit counted in /metrics")
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)
    print("smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
