"""Structural validator for the SARIF 2.1.0 logs ``repro lint`` emits.

CI generates ``repro-lint.sarif`` and uploads it to code scanning; an
upload that the ingestion endpoint rejects fails *silently* (the job step
succeeds, the findings just never appear).  This validator pins the
subset of the SARIF 2.1.0 spec the upload actually depends on — schema
pointer, version, run/tool/rule shape, result locations, rule cross
references, and the ``codeFlows`` threads RL014 attaches — without any
network access or third-party schema library.

Usage::

    python scripts/validate_sarif.py repro-lint.sarif

Exits 0 when the log is structurally valid, 1 with one line per violation
otherwise.  Importable: ``validate(payload)`` returns the violation list.
"""

from __future__ import annotations

import json
import sys

SCHEMA_MARKER = "sarif-2.1.0"
VERSION = "2.1.0"
LEVELS = {"none", "note", "warning", "error"}


def validate(payload: object) -> list[str]:
    """Every violation of the SARIF 2.1.0 subset we rely on, as strings."""
    errors: list[str] = []
    if not isinstance(payload, dict):
        return ["top level: expected a JSON object"]
    schema = payload.get("$schema", "")
    if SCHEMA_MARKER not in str(schema):
        errors.append(f"$schema: expected a 2.1.0 schema URI, got {schema!r}")
    if payload.get("version") != VERSION:
        errors.append(
            f"version: expected {VERSION!r}, got {payload.get('version')!r}"
        )
    runs = payload.get("runs")
    if not isinstance(runs, list) or not runs:
        return errors + ["runs: expected a non-empty array"]
    for run_index, run in enumerate(runs):
        errors.extend(_validate_run(run, f"runs[{run_index}]"))
    return errors


def _validate_run(run: object, where: str) -> list[str]:
    errors: list[str] = []
    if not isinstance(run, dict):
        return [f"{where}: expected an object"]
    driver = run.get("tool", {}).get("driver", {})
    if not isinstance(driver, dict) or not driver.get("name"):
        errors.append(f"{where}.tool.driver.name: required")
    rules = driver.get("rules", []) if isinstance(driver, dict) else []
    rule_ids: list[str] = []
    for rule_index, rule in enumerate(rules):
        rule_where = f"{where}.tool.driver.rules[{rule_index}]"
        if not isinstance(rule, dict) or not rule.get("id"):
            errors.append(f"{rule_where}.id: required")
            continue
        rule_ids.append(rule["id"])
        description = rule.get("shortDescription", {})
        if not isinstance(description, dict) or not description.get("text"):
            errors.append(f"{rule_where}.shortDescription.text: required")
    if len(rule_ids) != len(set(rule_ids)):
        errors.append(f"{where}: duplicate rule ids")

    results = run.get("results")
    if not isinstance(results, list):
        return errors + [f"{where}.results: expected an array"]
    known = set(rule_ids)
    for result_index, result in enumerate(results):
        errors.extend(
            _validate_result(
                result, known, f"{where}.results[{result_index}]"
            )
        )
    return errors


def _validate_result(result: object, rule_ids: set, where: str) -> list[str]:
    errors: list[str] = []
    if not isinstance(result, dict):
        return [f"{where}: expected an object"]
    rule_id = result.get("ruleId")
    if not rule_id:
        errors.append(f"{where}.ruleId: required")
    elif rule_ids and rule_id not in rule_ids:
        errors.append(f"{where}.ruleId: {rule_id!r} not in tool.driver.rules")
    if result.get("level") not in LEVELS:
        errors.append(f"{where}.level: {result.get('level')!r} not in {sorted(LEVELS)}")
    message = result.get("message", {})
    if not isinstance(message, dict) or not message.get("text"):
        errors.append(f"{where}.message.text: required")
    locations = result.get("locations")
    if not isinstance(locations, list) or not locations:
        errors.append(f"{where}.locations: expected a non-empty array")
        locations = []
    for loc_index, location in enumerate(locations):
        errors.extend(
            _validate_location(location, f"{where}.locations[{loc_index}]")
        )
    for flow_index, flow in enumerate(result.get("codeFlows", [])):
        flow_where = f"{where}.codeFlows[{flow_index}]"
        threads = flow.get("threadFlows") if isinstance(flow, dict) else None
        if not isinstance(threads, list) or not threads:
            errors.append(f"{flow_where}.threadFlows: expected a non-empty array")
            continue
        for thread_index, thread in enumerate(threads):
            steps = (
                thread.get("locations")
                if isinstance(thread, dict)
                else None
            )
            thread_where = f"{flow_where}.threadFlows[{thread_index}]"
            if not isinstance(steps, list) or not steps:
                errors.append(
                    f"{thread_where}.locations: expected a non-empty array"
                )
                continue
            for step_index, step in enumerate(steps):
                inner = (
                    step.get("location") if isinstance(step, dict) else None
                )
                errors.extend(
                    _validate_location(
                        inner,
                        f"{thread_where}.locations[{step_index}].location",
                    )
                )
    return errors


def _validate_location(location: object, where: str) -> list[str]:
    if not isinstance(location, dict):
        return [f"{where}: expected an object"]
    physical = location.get("physicalLocation")
    if not isinstance(physical, dict):
        return [f"{where}.physicalLocation: required"]
    errors: list[str] = []
    artifact = physical.get("artifactLocation", {})
    if not isinstance(artifact, dict) or not artifact.get("uri"):
        errors.append(f"{where}.physicalLocation.artifactLocation.uri: required")
    region = physical.get("region", {})
    start = region.get("startLine") if isinstance(region, dict) else None
    if not isinstance(start, int) or start < 1:
        errors.append(
            f"{where}.physicalLocation.region.startLine: "
            f"expected a positive integer, got {start!r}"
        )
    return errors


def main(argv: list[str]) -> int:
    if len(argv) != 1:
        print("usage: validate_sarif.py <log.sarif>", file=sys.stderr)
        return 2
    try:
        payload = json.loads(open(argv[0], "rb").read())
    except (OSError, ValueError) as error:
        print(f"{argv[0]}: unreadable SARIF log: {error}", file=sys.stderr)
        return 1
    errors = validate(payload)
    for error in errors:
        print(f"{argv[0]}: {error}", file=sys.stderr)
    if not errors:
        runs = payload["runs"]
        results = sum(len(run.get("results", [])) for run in runs)
        print(
            f"{argv[0]}: valid SARIF {VERSION} "
            f"({len(runs)} run(s), {results} result(s))"
        )
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
