"""Figure 12: external survey — structure-only average precision.

Paper setup (Section 6.1.2): DBLPtop, structure-only reformulation
(C_f = 0.5), 20 queries by 10 external users (database researchers at IBM TJ
Watson/Almaden), 5 iterations.  The precision curve sits lower than the
internal survey's (external users are stricter/noisier) but keeps the same
shape: precision holds or improves over the reformulation iterations.

Our substitution: more user seeds than Figure 10 plus judgment noise of 10%
— external judges disagree with the hidden relevance model more often than
the internal "domain expert" oracle does.
"""

import statistics

from repro.bench import format_series
from repro.core import ObjectRankSystem, SystemConfig
from repro.feedback import SimulatedUser, average_precision_curve, run_feedback_session
from repro.graph import AuthorityTransferSchemaGraph
from repro.query import SearchEngine

from benchmarks.conftest import write_result

QUERIES = ["olap", "xml", "mining", "distributed"]
USER_SEEDS = [10, 11, 12, 13, 14]
NOISE = 0.1
FEEDBACK_ITERATIONS = 4
PRESENTED_K = 10
RELEVANCE_DEPTH = 60


def run_survey(dataset):
    initial_rates = AuthorityTransferSchemaGraph(dataset.schema, default_rate=0.3)
    engine = SearchEngine(dataset.data_graph, initial_rates)
    config = SystemConfig.structure_only(top_k=PRESENTED_K)
    traces = []
    for seed in USER_SEEDS:
        user = SimulatedUser(
            engine,
            dataset.ground_truth_rates,
            relevance_depth=RELEVANCE_DEPTH,
            noise=NOISE,
            seed=seed,
        )
        for query in QUERIES:
            system = ObjectRankSystem(
                dataset.data_graph, initial_rates, config, engine=engine
            )
            traces.append(
                run_feedback_session(
                    system, user, query, FEEDBACK_ITERATIONS, PRESENTED_K
                )
            )
    return average_precision_curve(traces)


def test_fig12_external_survey(benchmark, dblp_top):
    curve = benchmark.pedantic(run_survey, args=(dblp_top,), rounds=1, iterations=1)

    lines = [
        "Figure 12: external survey, structure-only (Cf=0.5) average precision",
        f"  ({len(QUERIES)} queries x {len(USER_SEEDS)} users, noise={NOISE})",
        "  " + format_series("structure-only", range(len(curve)), curve),
    ]
    write_result("fig12_external_survey", "\n".join(lines))

    # Shape 1: reformulation keeps precision in a useful band — the mean of
    # the reformulated iterations is at least 60% of the initial precision
    # (the paper's curve moves within ~27%-37%, never collapsing).
    assert statistics.mean(curve[1:]) > 0.6 * curve[0]
    # Shape 2: at least one reformulated iteration improves on the first
    # reformulation (the curve is not monotonically decaying).
    assert max(curve[2:]) >= curve[1] - 0.05
