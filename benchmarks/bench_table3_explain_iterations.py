"""Table 3: average Explaining-ObjectRank2 iterations per dataset.

Paper values (average iterations of the flow-adjustment fixpoint, per
feedback iteration 1-5):

    DBLPcomplete  7.2  8.4  7.4  11   8.4
    DBLPtop       7.4  8.2  7.4  8.4  8.6
    DS7           5.0  4.8  4.6  5.2  5.6
    DS7cancer     4.4  3.8  5.2  5.6  5.0

The shape to reproduce: the fixpoint converges in a *handful* of iterations
on every dataset (single digits to low teens), making explanation
interactive-speed even where full ObjectRank2 is not.
"""

from repro.bench import format_table

from benchmarks.conftest import write_result
from benchmarks.perf_common import FEEDBACK_ITERATIONS, performance_run

PAPER_ROWS = {
    "dblp_complete": (7.2, 8.4, 7.4, 11.0, 8.4),
    "dblp_top": (7.4, 8.2, 7.4, 8.4, 8.6),
    "ds7": (5.0, 4.8, 4.6, 5.2, 5.6),
    "ds7_cancer": (4.4, 3.8, 5.2, 5.6, 5.0),
}


def collect(datasets):
    return {dataset.name: performance_run(dataset) for dataset in datasets}


def test_table3_explaining_iterations(
    benchmark, dblp_complete, dblp_top, ds7, ds7_cancer
):
    runs = benchmark.pedantic(
        collect, args=((dblp_complete, dblp_top, ds7, ds7_cancer),),
        rounds=1, iterations=1,
    )

    rows = []
    for name, run in runs.items():
        averages = [
            sum(group) / len(group) if group else 0.0
            for group in run.explaining_iterations
        ]
        paper = PAPER_ROWS[name][: len(averages)]
        rows.append(
            (
                name,
                "  ".join(f"{a:.1f}" for a in averages),
                "  ".join(f"{p:.1f}" for p in paper),
            )
        )
    table = format_table(
        ["dataset", f"ours (iters 1-{FEEDBACK_ITERATIONS})", "paper (iters 1-4)"],
        rows,
        title="Table 3: average Explaining ObjectRank2 iterations",
    )
    write_result("table3_explain_iterations", table)

    # Shape: the explaining fixpoint converges fast everywhere — a handful
    # of iterations, never runaway.
    for run in runs.values():
        for group in run.explaining_iterations:
            for count in group:
                assert 1 <= count <= 40
        flat = [c for group in run.explaining_iterations for c in group]
        assert flat, f"no explanations recorded for {run.dataset_name}"
        assert sum(flat) / len(flat) <= 25.0
