"""Extension benchmark: scalability of the pipeline with corpus size.

Section 6's framing claim is feasibility "over large graphs": ObjectRank2 is
a sparse-matrix power iteration, explaining subgraphs are local, and
reformulation is linear in the subgraph.  This benchmark generates the DBLP
corpus at several scales and measures how each pipeline stage grows,
asserting near-linear behaviour (time ratio bounded by a modest multiple of
the size ratio — power iteration is O(edges x iterations) and the iteration
count is scale-free).
"""

import time

from repro.bench import format_table
from repro.core import ObjectRankSystem, SystemConfig
from repro.datasets import DblpConfig, generate_dblp

from benchmarks.conftest import write_result

SCALES = (0.25, 0.5, 1.0, 2.0)
BASE_PAPERS = 6000
BASE_AUTHORS = 1800


def run_sweep():
    rows = []
    for scale in SCALES:
        config = DblpConfig(
            num_papers=int(BASE_PAPERS * scale),
            num_authors=int(BASE_AUTHORS * scale),
            num_conferences=10,
            seed=7,
        )
        start = time.perf_counter()
        dataset = generate_dblp(config, name=f"dblp@{scale}")
        generation = time.perf_counter() - start

        start = time.perf_counter()
        system = ObjectRankSystem(
            dataset.data_graph, dataset.transfer_schema, SystemConfig(top_k=10)
        )
        build = time.perf_counter() - start

        start = time.perf_counter()
        result = system.query("olap")
        query_time = time.perf_counter() - start

        start = time.perf_counter()
        system.explain(result.top[0][0])
        explain_time = time.perf_counter() - start

        rows.append(
            (
                scale,
                dataset.num_nodes,
                dataset.num_edges,
                generation,
                build,
                query_time,
                result.iterations,
                explain_time,
            )
        )
    return rows


def test_scalability_sweep(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    table = format_table(
        ["scale", "nodes", "edges", "generate (s)", "build (s)", "query (s)",
         "OR2 iters", "explain (s)"],
        [
            (s, n, e, f"{g:.2f}", f"{b:.2f}", f"{q:.4f}", i, f"{x:.4f}")
            for s, n, e, g, b, q, i, x in rows
        ],
        title="Extension: pipeline scalability with corpus size",
    )
    write_result("scalability", table)

    smallest, largest = rows[0], rows[-1]
    size_ratio = largest[2] / smallest[2]  # edges
    query_ratio = largest[5] / max(smallest[5], 1e-9)
    # Near-linear: query time grows at most ~6x the edge growth (slack for
    # cache effects and the base-set scoring component).
    assert query_ratio <= 6.0 * size_ratio

    # Iteration counts are scale-free (damping-controlled, not size-controlled).
    iteration_counts = [r[6] for r in rows]
    assert max(iteration_counts) - min(iteration_counts) <= 10
