"""Blocked multi-restart precomputation vs the serial per-keyword loop.

The [BHP04] serving mode precomputes one authority vector per index keyword.
Serially that is ``|vocabulary|`` independent power iterations, each making
its own pass over the transition matrix per step.  The blocked engine
(:mod:`repro.ranking.batch`) stacks all restart vectors into one ``(n, k)``
matrix and amortizes every sparse pass across all still-active columns, so
the matrix's nonzeros are streamed once per iteration instead of once per
keyword per iteration.

This benchmark times three builds of the full DBLPcomplete vocabulary —
serial loop, blocked in-process, blocked over a process pool — and verifies
the tentpole claim: blocking is a pure performance change.  Per keyword, the
blocked scores match the serial engine to ≤1e-12 with identical iteration
counts.

Run under pytest (``pytest benchmarks/bench_batch.py --benchmark-only -s``)
or directly as a script::

    PYTHONPATH=src python benchmarks/bench_batch.py           # full run
    PYTHONPATH=src python benchmarks/bench_batch.py --smoke   # CI quick mode

Smoke mode uses the tiny dataset and checks only the identity guarantees
(small graphs are overhead-dominated, so no speedup is asserted there).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

if __name__ == "__main__":  # script mode: make `benchmarks.` importable
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED, write_result

from repro.datasets import load_dataset
from repro.query.engine import SearchEngine
from repro.ranking import batched_keyword_vectors, keyword_objectrank
from repro.ranking.batch import DEFAULT_BLOCK_WIDTH

MIN_DOCUMENT_FREQUENCY = 2
TOLERANCE = 1e-8
IDENTITY_BOUND = 1e-12
REQUIRED_SPEEDUP = 3.0


@dataclass
class BatchReport:
    dataset: str
    num_nodes: int
    num_keywords: int
    workers: int
    serial_seconds: float
    blocked_seconds: float
    pooled_seconds: float
    max_abs_diff: float
    iterations_identical: bool

    @property
    def blocked_speedup(self) -> float:
        return self.serial_seconds / self.blocked_seconds

    @property
    def pooled_speedup(self) -> float:
        return self.serial_seconds / self.pooled_seconds

    @property
    def identical(self) -> bool:
        return self.iterations_identical and self.max_abs_diff <= IDENTITY_BOUND

    def table(self) -> str:
        lines = [
            f"Blocked keyword precomputation — dataset={self.dataset}, "
            f"{self.num_keywords} keywords (df >= {MIN_DOCUMENT_FREQUENCY}), "
            f"{self.num_nodes} nodes",
            f"  serial (keyword_objectrank loop)   : {self.serial_seconds:8.2f} s",
            f"  blocked (batched, in-process)      : {self.blocked_seconds:8.2f} s"
            f"   {self.blocked_speedup:5.1f}x",
            f"  blocked + {self.workers} process workers        : "
            f"{self.pooled_seconds:8.2f} s   {self.pooled_speedup:5.1f}x",
            f"verification: per-column |Δscore|max = {self.max_abs_diff:.2e} "
            f"(bound {IDENTITY_BOUND:.0e}), iteration counts "
            + ("identical" if self.iterations_identical else "DIFFER"),
        ]
        return "\n".join(lines)


def vocabulary_keywords(engine: SearchEngine) -> list[str]:
    return [
        term
        for term in engine.index.vocabulary()
        if engine.index.document_frequency(term) >= MIN_DOCUMENT_FREQUENCY
    ]


def run_comparison(dataset, workers: int | None = None) -> BatchReport:
    """Time serial vs blocked precomputation, interleaved per segment.

    The vocabulary is split into segments (multiples of the blocked engine's
    chunk width) and each segment is timed serial-then-blocked-then-pooled
    back to back.  On shared machines background load drifts over minutes;
    interleaving makes both sides see the same conditions so the reported
    ratio reflects the engines, not the neighbours.  The summed work is
    identical to timing each engine over the whole vocabulary at once.
    """
    engine = SearchEngine(dataset.data_graph, dataset.transfer_schema)
    graph, index = engine.graph, engine.index
    keywords = vocabulary_keywords(engine)
    if workers is None:
        workers = max(2, min(4, os.cpu_count() or 2))
    graph.matrix()  # warm the CSR cache so neither side pays the build
    # Warm the blocked engine's one-time per-process kernel compile too: a
    # serving deployment pays it once per process, not once per precompute.
    batched_keyword_vectors(graph, index, keywords[:1], tolerance=TOLERANCE)

    segment_size = 3 * DEFAULT_BLOCK_WIDTH
    serial_seconds = blocked_seconds = pooled_seconds = 0.0
    serial: dict = {}
    blocked: dict = {}
    pooled: dict = {}
    for lo in range(0, len(keywords), segment_size):
        segment = keywords[lo : lo + segment_size]

        start = time.perf_counter()
        for keyword in segment:
            serial[keyword] = keyword_objectrank(
                graph, index, keyword, tolerance=TOLERANCE
            )
        serial_seconds += time.perf_counter() - start

        start = time.perf_counter()
        blocked.update(
            batched_keyword_vectors(graph, index, segment, tolerance=TOLERANCE)
        )
        blocked_seconds += time.perf_counter() - start

        start = time.perf_counter()
        pooled.update(
            batched_keyword_vectors(
                graph, index, segment, tolerance=TOLERANCE, workers=workers
            )
        )
        pooled_seconds += time.perf_counter() - start

    max_abs_diff = 0.0
    iterations_identical = set(serial) == set(blocked) == set(pooled)
    for keyword, exact in serial.items():
        for variant in (blocked, pooled):
            result = variant[keyword]
            diff = float(np.abs(result.scores - exact.scores).max())
            max_abs_diff = max(max_abs_diff, diff)
            iterations_identical &= result.iterations == exact.iterations

    return BatchReport(
        dataset=dataset.name,
        num_nodes=dataset.num_nodes,
        num_keywords=len(keywords),
        workers=workers,
        serial_seconds=serial_seconds,
        blocked_seconds=blocked_seconds,
        pooled_seconds=pooled_seconds,
        max_abs_diff=max_abs_diff,
        iterations_identical=iterations_identical,
    )


def test_batch_precompute_identical_and_faster(benchmark, dblp_complete):
    report = benchmark.pedantic(
        run_comparison, args=(dblp_complete,), rounds=1, iterations=1
    )
    write_result("batch", report.table())
    assert report.identical, report.table()
    assert report.blocked_speedup >= REQUIRED_SPEEDUP, report.table()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="quick CI mode: tiny dataset, identity checks only",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        dataset = load_dataset("dblp_tiny")
        report = run_comparison(dataset, workers=2)
        print(report.table())
        if not report.identical:
            print("FAIL: blocked results diverge from the serial engine")
            return 1
        print("smoke OK: blocked == serial for every keyword")
        return 0

    dataset = load_dataset("dblp_complete", scale=BENCH_SCALE, seed=BENCH_SEED)
    report = run_comparison(dataset)
    write_result("batch", report.table())
    if not report.identical:
        print("FAIL: blocked results diverge from the serial engine")
        return 1
    if report.blocked_speedup < REQUIRED_SPEEDUP:
        print(f"FAIL: blocked speedup {report.blocked_speedup:.1f}x < {REQUIRED_SPEEDUP}x")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
