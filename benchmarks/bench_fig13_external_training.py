"""Figure 13: external-survey training of authority transfer rates.

Paper setup: like Figure 11 but driven by the external users' feedback; the
paper notes the curves "are similar to those in the internal survey".  We
therefore run the same protocol with noisy simulated users (10% judgment
noise) and check that the Figure 11 shapes survive the noise.
"""

from repro.bench import format_series
from repro.datasets import dblp_edge_order
from repro.feedback import train_transfer_rates

from benchmarks.conftest import write_result

QUERIES = ["olap", "mining", "xml", "distributed"]
ADJUSTMENT_FACTORS = [0.3, 0.5, 0.9]
ITERATIONS = 5
NOISE = 0.1


def run_training(dataset):
    order = dblp_edge_order(dataset.schema)
    return [
        train_transfer_rates(
            dataset,
            QUERIES,
            adjustment_factor=factor,
            iterations=ITERATIONS,
            edge_order=order,
            user_noise=NOISE,
            user_seed=21,
        )
        for factor in ADJUSTMENT_FACTORS
    ]


def test_fig13_external_training(benchmark, dblp_top):
    curves = benchmark.pedantic(run_training, args=(dblp_top,), rounds=1, iterations=1)

    lines = [
        "Figure 13: external-survey rate training (noisy users)",
        f"  (DBLPtop, {len(QUERIES)} queries, noise={NOISE})",
    ]
    for curve in curves:
        lines.append(
            "  "
            + format_series(
                f"Cf={curve.adjustment_factor}",
                range(len(curve.similarities)),
                curve.similarities,
            )
            + f"   peak@{curve.peak_iteration}"
        )
    write_result("fig13_external_training", "\n".join(lines))

    # Same shape as Figure 11, surviving judgment noise: training beats the
    # untrained vector for every C_f.
    for curve in curves:
        assert max(curve.similarities) > curve.similarities[0] + 0.01
    # Larger C_f still peaks no later than the smallest C_f tested.
    assert curves[-1].peak_iteration <= curves[0].peak_iteration
