"""Batched explanation engine vs the serial per-target loop.

Explaining the full top-k of a query serially repeats, per target, a Python
BFS over adjacency dicts and its own flow-adjustment power iteration.  The
batched engine (:mod:`repro.explain.batch`) expands whole BFS frontiers as
numpy index arrays over the shared positive-rate incidence and runs one
multi-column fixpoint over the concatenated subgraph edge lists, with
per-target convergence freezing — so every numpy pass is amortized across
all still-active targets.

This benchmark explains the top targets of one DBLPcomplete query three
ways — serial loop, batched in-process, batched with a thread pool — and
verifies the tentpole claim: batching is a pure performance change.  Per
target, flows, node reduction factors and iteration counts are bit-identical
(exact float equality, not a tolerance).

Run under pytest (``pytest benchmarks/bench_explain_batch.py
--benchmark-only -s``) or directly as a script::

    PYTHONPATH=src python benchmarks/bench_explain_batch.py           # full run
    PYTHONPATH=src python benchmarks/bench_explain_batch.py --smoke   # CI quick mode

Smoke mode uses the tiny dataset and checks only the identity guarantees
(small graphs are overhead-dominated, so no speedup is asserted there).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

if __name__ == "__main__":  # script mode: make `benchmarks.` importable
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED, write_result

from repro.datasets import load_dataset
from repro.explain import (
    SubgraphExtractor,
    adjust_flows,
    batched_adjust_flows,
    batched_build_explaining_subgraphs,
    build_explaining_subgraph,
)
from repro.query.engine import SearchEngine

QUERY = "olap"
NUM_TARGETS = 16
RADIUS = 3
TOLERANCE = 1e-8
REQUIRED_SPEEDUP = 2.0


@dataclass
class ExplainReport:
    dataset: str
    num_nodes: int
    num_targets: int
    radius: int
    workers: int
    serial_seconds: float
    batched_seconds: float
    pooled_seconds: float
    bit_identical: bool

    @property
    def batched_speedup(self) -> float:
        return self.serial_seconds / self.batched_seconds

    @property
    def pooled_speedup(self) -> float:
        return self.serial_seconds / self.pooled_seconds

    def table(self) -> str:
        per_target = 1000.0 * self.serial_seconds / self.num_targets
        per_batched = 1000.0 * self.batched_seconds / self.num_targets
        per_pooled = 1000.0 * self.pooled_seconds / self.num_targets
        lines = [
            f"Batched explanations — dataset={self.dataset}, "
            f"{self.num_targets} targets, radius={self.radius}, "
            f"{self.num_nodes} nodes",
            f"  serial (per-target loop)          : {self.serial_seconds:8.2f} s"
            f"   ({per_target:7.1f} ms/target)",
            f"  batched (in-process)              : {self.batched_seconds:8.2f} s"
            f"   ({per_batched:7.1f} ms/target)   {self.batched_speedup:5.1f}x",
            f"  batched + {self.workers} thread workers      : "
            f"{self.pooled_seconds:8.2f} s   ({per_pooled:7.1f} ms/target)"
            f"   {self.pooled_speedup:5.1f}x",
            "verification: flows, reductions and iteration counts "
            + ("bit-identical" if self.bit_identical else "DIFFER"),
        ]
        return "\n".join(lines)


def _explanations_identical(serial, batched) -> bool:
    """Exact equality of every per-target output the serial path produces."""
    for a, b in zip(serial, batched):
        if a.subgraph.nodes != b.subgraph.nodes:
            return False
        if not np.array_equal(a.subgraph.edge_ids, b.subgraph.edge_ids):
            return False
        if a.subgraph.depth_to_target != b.subgraph.depth_to_target:
            return False
        if not np.array_equal(a.flows, b.flows):
            return False
        if not np.array_equal(a.original_flows, b.original_flows):
            return False
        if a.reduction != b.reduction:
            return False
        if (a.iterations, a.converged) != (b.iterations, b.converged):
            return False
    return len(serial) == len(batched)


def run_comparison(dataset, workers: int | None = None) -> ExplainReport:
    """Time serial vs batched explanation of one query's top targets.

    One live ObjectRank2 run fixes the base set, scores and targets; the
    three explanation engines then run back to back over identical inputs.
    The batched side pre-warms the shared positive-rate incidence (a serving
    process builds it once per rate vector, not once per request).
    """
    engine = SearchEngine(dataset.data_graph, dataset.transfer_schema)
    result = engine.search(QUERY, top_k=NUM_TARGETS)
    base_ids = list(result.ranked.base_weights)
    targets = [node_id for node_id, _ in result.top]
    scores = result.ranked.scores
    graph = engine.graph
    if workers is None:
        workers = max(2, min(4, os.cpu_count() or 2))

    extractor = SubgraphExtractor(graph)  # warm the shared incidence once

    start = time.perf_counter()
    serial = [
        adjust_flows(
            build_explaining_subgraph(graph, base_ids, target, RADIUS),
            scores,
            tolerance=TOLERANCE,
        )
        for target in targets
    ]
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    batched = batched_adjust_flows(
        batched_build_explaining_subgraphs(
            graph, base_ids, targets, RADIUS, extractor=extractor
        ),
        scores,
        tolerance=TOLERANCE,
    )
    batched_seconds = time.perf_counter() - start

    start = time.perf_counter()
    pooled = batched_adjust_flows(
        batched_build_explaining_subgraphs(
            graph, base_ids, targets, RADIUS, workers=workers, extractor=extractor
        ),
        scores,
        tolerance=TOLERANCE,
    )
    pooled_seconds = time.perf_counter() - start

    bit_identical = _explanations_identical(
        serial, batched
    ) and _explanations_identical(serial, pooled)

    return ExplainReport(
        dataset=dataset.name,
        num_nodes=dataset.num_nodes,
        num_targets=len(targets),
        radius=RADIUS,
        workers=workers,
        serial_seconds=serial_seconds,
        batched_seconds=batched_seconds,
        pooled_seconds=pooled_seconds,
        bit_identical=bit_identical,
    )


def test_batched_explain_identical_and_faster(benchmark, dblp_complete):
    report = benchmark.pedantic(
        run_comparison, args=(dblp_complete,), rounds=1, iterations=1
    )
    write_result("explain_batch", report.table())
    assert report.bit_identical, report.table()
    assert report.batched_speedup >= REQUIRED_SPEEDUP, report.table()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="quick CI mode: tiny dataset, identity checks only",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        dataset = load_dataset("dblp_tiny")
        report = run_comparison(dataset, workers=2)
        print(report.table())
        if not report.bit_identical:
            print("FAIL: batched explanations diverge from the serial engine")
            return 1
        print("smoke OK: batched == serial for every target")
        return 0

    dataset = load_dataset("dblp_complete", scale=BENCH_SCALE, seed=BENCH_SEED)
    report = run_comparison(dataset)
    write_result("explain_batch", report.table())
    if not report.bit_identical:
        print("FAIL: batched explanations diverge from the serial engine")
        return 1
    if report.batched_speedup < REQUIRED_SPEEDUP:
        print(
            f"FAIL: batched speedup {report.batched_speedup:.1f}x"
            f" < {REQUIRED_SPEEDUP}x"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
