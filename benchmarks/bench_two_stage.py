"""Extension benchmark: two-stage retrieval vs full and focused ObjectRank2.

The two-stage engine claims cost proportional to the result page: stage 1
generates an exact top-N BM25 candidate set with WAND/max-score pruning,
stage 2 reranks only the candidates' authority neighborhood.  This
benchmark quantifies the claim on the DBLPcomplete-scale corpus:

* **correctness first** — for every benchmark query and candidate budget,
  the pruned top-N is verified identical (ids and score floats) to the
  exhaustive scorer before any timing is reported;
* **latency** — per-query p50/p99 for full-graph ObjectRank2, focused
  ObjectRank2 (horizon 2) and the tuned two-stage configuration at
  N in {50, 200, 1000};
* **quality** — precision@10 / precision@50 of each mode against the
  full-graph ObjectRank2 ranking, plus a per-kind breakdown (selective /
  topical / popular) of the headline configuration.

The workload is ``WorkloadGenerator.mixed``: equal parts topical queries
(hot topic-label terms, S(Q) in the thousands — the adversarial case for
neighborhood truncation), selective queries (S(Q) ~ 1) and popular-term
queries.  Measuring only one kind either hides the hard case or pretends
every query is one.

Run under pytest (``pytest benchmarks/bench_two_stage.py --benchmark-only -s``)
or directly as a script::

    PYTHONPATH=src python benchmarks/bench_two_stage.py           # scale 4
    PYTHONPATH=src python benchmarks/bench_two_stage.py --smoke   # CI quick mode

Script mode defaults to ``REPRO_BENCH_SCALE=4`` (~120k nodes, ~1.5M transfer
entries): at scale 1 the whole graph sits hot in cache and full ObjectRank2
answers in ~14ms, so there is nothing left to accelerate and the speedup
bar is meaningless.  The acceptance asserts therefore gate on the measured
full-graph baseline, not on the nominal scale.

Smoke mode checks the two identities that make the fast path trustworthy on
the small corpus: pruned == exhaustive top-N, and the degenerate two-stage
configuration (candidates >= corpus, authority-only fusion) bit-identical
to focused ObjectRank2.
"""

from __future__ import annotations

import argparse
import os
import statistics
import sys
import time
from pathlib import Path

if __name__ == "__main__":  # script mode: make `benchmarks.` importable
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

import numpy as np

from repro.bench import WorkloadGenerator, format_table
from repro.datasets import load_dataset
from repro.query import KeywordQuery, SearchEngine
from repro.ranking import focused_objectrank2, objectrank2
from repro.retrieval import TwoStageEngine, exhaustive_top_n, pruned_top_n

from benchmarks.conftest import BENCH_SEED, write_result

# Script-mode scale (the pytest path uses the shared conftest fixtures).
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "4"))

NUM_QUERIES = 18
CANDIDATE_SIZES = (50, 200, 1000)
FOCUSED_HORIZON = 2
PRECISION_KS = (10, 50)

# The shipped operating point (serve's two_stage defaults are conservative;
# these are the tuned values the DESIGN doc recommends for DBLP-shaped
# corpora).  Hub-capped expansion keeps topical neighborhoods from swallowing
# the graph through year/venue hubs; adaptive deepening grows the tiny
# neighborhoods of selective queries until the node budget is met, so their
# pages stop missing authority flow that arrives from two extra hops out.
TUNED = dict(
    horizon=FOCUSED_HORIZON,
    expand_cap=128,
    node_budget=256,
    max_horizon=5,
    early_k=10,
)
HEADLINE_N = 200

# Only assert the speedup bar when the baseline is slow enough for "5x
# faster" to mean anything (see module docstring on scale).
BASELINE_FLOOR_MS = 25.0


def _percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile (the serve tier's convention)."""
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[rank]


def _workload(dataset, count: int):
    """Balanced mixed workload: list of (query vector, kind) pairs."""
    generator = WorkloadGenerator(dataset, seed=5)
    return [
        (KeywordQuery.parse(query.text).vector(), query.kind)
        for query in generator.mixed(count)
    ]


def verify_pruned_is_exact(scorer, vectors, sizes) -> tuple[int, int]:
    """Assert pruned == exhaustive for every (query, N); return work saved."""
    evaluated = pruned = 0
    for vector in vectors:
        for n in sizes:
            exact = exhaustive_top_n(scorer, vector, n)
            fast = pruned_top_n(scorer, vector, n)
            assert fast.doc_ids == exact.doc_ids, "pruned ids diverged"
            for mine, theirs in zip(fast.candidates, exact.candidates):
                assert mine.score == theirs.score, "pruned scores diverged"
            evaluated += fast.evaluated
            pruned += fast.pruned
    return evaluated, pruned


def run_comparison(dataset):
    engine = SearchEngine(dataset.data_graph, dataset.transfer_schema)
    workload = _workload(dataset, NUM_QUERIES)
    vectors = [vector for vector, _ in workload]

    # A timing for a wrong ranking is worthless: prove exactness first.
    evaluated, saved = verify_pruned_is_exact(engine.scorer, vectors, CANDIDATE_SIZES)

    exact_pages: list[dict[int, set[str]]] = []
    full_latencies = []
    for vector in vectors:
        start = time.perf_counter()
        ranked = objectrank2(engine.graph, engine.scorer, vector)
        full_latencies.append(time.perf_counter() - start)
        exact_pages.append(
            {k: {nid for nid, _ in ranked.top_k(k)} for k in PRECISION_KS}
        )

    def measure(run):
        """(latencies, mean precision@k, per-query records) for one mode."""
        latencies, overlaps = [], {k: 0 for k in PRECISION_KS}
        per_query = []  # (kind, latency seconds, precision@10)
        for (vector, kind), pages in zip(workload, exact_pages):
            start = time.perf_counter()
            ranked = run(vector)
            elapsed = time.perf_counter() - start
            latencies.append(elapsed)
            page = {k: {nid for nid, _ in ranked.top_k(k)} for k in PRECISION_KS}
            for k in PRECISION_KS:
                overlaps[k] += len(pages[k] & page[k])
            per_query.append((kind, elapsed, len(pages[10] & page[10]) / 10))
        precision = {k: overlaps[k] / (len(vectors) * k) for k in PRECISION_KS}
        return latencies, precision, per_query

    modes = [("full ObjectRank2", full_latencies, {k: 1.0 for k in PRECISION_KS})]

    focused_latencies, focused_precision, _ = measure(
        lambda vector: focused_objectrank2(
            engine.graph, engine.scorer, vector, horizon=FOCUSED_HORIZON
        ).ranked
    )
    modes.append(
        (f"focused L={FOCUSED_HORIZON}", focused_latencies, focused_precision)
    )

    two_stage = TwoStageEngine(engine, candidates=HEADLINE_N, **TUNED)
    headline_per_query = None
    for n in CANDIDATE_SIZES:
        latencies, precision, per_query = measure(
            lambda vector, n=n: two_stage.search(
                vector, top_k=max(PRECISION_KS), candidates=n
            ).ranked
        )
        modes.append((f"two-stage N={n}", latencies, precision))
        if n == HEADLINE_N:
            headline_per_query = per_query

    rows = [
        (
            name,
            _percentile(latencies, 0.5) * 1000.0,
            _percentile(latencies, 0.99) * 1000.0,
            precision[10],
            precision[50],
        )
        for name, latencies, precision in modes
    ]
    return rows, headline_per_query, evaluated, saved


def _per_kind_rows(per_query):
    rows = []
    for kind in ("selective", "topical", "popular"):
        records = [r for r in per_query if r[0] == kind]
        if not records:
            continue
        rows.append(
            (
                kind,
                len(records),
                statistics.median(r[1] for r in records) * 1000.0,
                statistics.fmean(r[2] for r in records),
            )
        )
    return rows


def run_two_stage_bench() -> None:
    dataset = load_dataset("dblp_complete", scale=BENCH_SCALE, seed=BENCH_SEED)
    rows, per_query, evaluated, saved = run_comparison(dataset)
    _report_and_check(rows, per_query, evaluated, saved)


def _report_and_check(rows, per_query, evaluated, saved) -> None:
    table = format_table(
        ["mode", "p50 ms", "p99 ms", "prec@10", "prec@50"],
        [
            (name, f"{p50:.2f}", f"{p99:.2f}", f"{p10:.2f}", f"{p50_prec:.2f}")
            for name, p50, p99, p10, p50_prec in rows
        ],
        title=(
            "Extension: two-stage retrieval vs full/focused ObjectRank2 "
            f"(dblp_complete, {NUM_QUERIES} mixed queries; WAND verified "
            f"exact, skipped {saved}/{evaluated + saved} scorings)"
        ),
    )
    breakdown = format_table(
        ["kind", "queries", "p50 ms", "prec@10"],
        [
            (kind, str(count), f"{p50:.2f}", f"{p10:.2f}")
            for kind, count, p50, p10 in _per_kind_rows(per_query)
        ],
        title=(
            f"Headline two-stage N={HEADLINE_N} by query kind "
            f"(horizon={TUNED['horizon']}, expand_cap={TUNED['expand_cap']}, "
            f"node_budget={TUNED['node_budget']}, "
            f"max_horizon={TUNED['max_horizon']}, early_k={TUNED['early_k']})"
        ),
    )
    write_result("two_stage", table + "\n\n" + breakdown)

    by_mode = {name: (p50, p99, p10, p50p) for name, p50, p99, p10, p50p in rows}
    full_p50 = by_mode["full ObjectRank2"][0]
    if full_p50 < BASELINE_FLOOR_MS:
        print(
            f"note: full ObjectRank2 p50 {full_p50:.1f}ms < "
            f"{BASELINE_FLOOR_MS:.0f}ms — corpus too small for the speedup "
            "bar, skipping acceptance asserts (run with REPRO_BENCH_SCALE=4)"
        )
        return
    # The page-proportional claim: some candidate budget beats full-graph
    # ObjectRank2 by >= 5x at the median while keeping the page right.
    best = max(
        (
            full_p50 / p50
            for name, (p50, _, p10, _) in by_mode.items()
            if name.startswith("two-stage") and p10 >= 0.9
        ),
        default=0.0,
    )
    assert best >= 5.0, f"best qualifying two-stage speedup {best:.1f}x < 5x"
    # Larger candidate budgets converge on the exact page.
    assert by_mode[f"two-stage N={CANDIDATE_SIZES[-1]}"][2] >= 0.9


def test_two_stage_tradeoff(benchmark, dblp_complete):
    rows, per_query, evaluated, saved = benchmark.pedantic(
        run_comparison, args=(dblp_complete,), rounds=1, iterations=1
    )
    _report_and_check(rows, per_query, evaluated, saved)


# ---------------------------------------------------------------------------
# CI smoke mode: exactness identities on the small corpus
# ---------------------------------------------------------------------------


def run_two_stage_smoke() -> int:
    dataset = load_dataset("dblp_tiny", seed=BENCH_SEED)
    engine = SearchEngine(dataset.data_graph, dataset.transfer_schema)
    vectors = [vector for vector, _ in _workload(dataset, 6)]

    evaluated, saved = verify_pruned_is_exact(
        engine.scorer, vectors, (1, 10, 100)
    )
    print(
        f"smoke: pruned == exhaustive on {len(vectors)} queries x 3 budgets "
        f"({saved}/{evaluated + saved} scorings skipped)"
    )

    two_stage = TwoStageEngine(engine, candidates=10_000, fusion_weight=1.0)
    for vector in vectors:
        mine = two_stage.search(vector, top_k=10)
        focused = focused_objectrank2(
            engine.graph, engine.scorer, vector, horizon=two_stage.horizon
        )
        assert np.array_equal(mine.ranked.scores, focused.ranked.scores), (
            "degenerate two-stage diverged from focused ObjectRank2"
        )
        assert mine.ranked.iterations == focused.ranked.iterations
    print("smoke: degenerate two-stage bit-identical to focused ObjectRank2")
    print("smoke OK: two-stage fast paths proven exact on dblp_tiny")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="quick CI mode: pruned/degenerate exactness identities on dblp_tiny",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        return run_two_stage_smoke()
    run_two_stage_bench()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
