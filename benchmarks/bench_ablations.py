"""Ablations of the design choices DESIGN.md calls out.

Not a paper table/figure — these benches probe the knobs the paper fixes:

* warm start vs cold start for reformulated queries (Section 6.2's trick);
* explaining-subgraph radius L (the paper picks L = 3);
* damping factor d (the paper uses 0.85);
* base-set weighting: BM25 (ObjectRank2) vs uniform (ObjectRank) vs tf-idf;
* aggregation function for multiple feedback objects (sum/min/max/avg).
"""

import pytest

from repro.bench import format_table
from repro.core import ObjectRankSystem, SystemConfig
from repro.explain import adjust_flows, build_explaining_subgraph
from repro.ir import BM25Scorer, TfIdfScorer, UniformScorer
from repro.query import KeywordQuery, SearchEngine
from repro.ranking import objectrank2
from repro.reformulate import Reformulator, StructureReformulator

from benchmarks.conftest import write_result

QUERY = "olap"


@pytest.fixture(scope="module")
def engine(request):
    dataset = request.getfixturevalue("dblp_top")
    return dataset, SearchEngine(dataset.data_graph, dataset.transfer_schema)


def test_ablation_warm_vs_cold_start(benchmark, engine):
    """Warm starts must cut ObjectRank2 iterations for reformulated queries."""
    dataset, _ = engine

    def run():
        rows = []
        for warm in (True, False):
            config = SystemConfig(top_k=10, warm_start=warm)
            system = ObjectRankSystem(
                dataset.data_graph, dataset.transfer_schema, config
            )
            result = system.query(QUERY)
            counts = [result.iterations]
            for _ in range(3):
                outcome = system.feedback([result.top[0][0]])
                result = outcome.result
                counts.append(result.iterations)
            rows.append(("warm" if warm else "cold", counts))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["start", "OR2 iterations per query"],
        [(name, " ".join(map(str, counts))) for name, counts in rows],
        title="Ablation: warm vs cold start (Section 6.2)",
    )
    write_result("ablation_warm_start", table)

    warm_counts = dict(rows)["warm"]
    cold_counts = dict(rows)["cold"]
    assert sum(warm_counts[1:]) <= sum(cold_counts[1:])


def test_ablation_radius(benchmark, engine):
    """Radius L trades subgraph size/time against captured authority."""
    dataset, shared = engine
    result = shared.search(QUERY, top_k=5)
    target = result.top[0][0]
    base_ids = list(result.ranked.base_weights)

    def run():
        rows = []
        for radius in (1, 2, 3, 4, 5):
            subgraph = build_explaining_subgraph(
                shared.graph, base_ids, target, radius
            )
            explanation = adjust_flows(subgraph, result.scores, 0.85)
            rows.append(
                (
                    radius,
                    subgraph.num_nodes,
                    subgraph.num_edges,
                    explanation.target_inflow(),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["L", "nodes", "edges", "target inflow"],
        [(r, n, e, f"{f:.3e}") for r, n, e, f in rows],
        title="Ablation: explaining-subgraph radius L",
    )
    write_result("ablation_radius", table)

    # Subgraph size and captured inflow grow monotonically with L...
    sizes = [n for _, n, _, _ in rows]
    inflows = [f for _, _, _, f in rows]
    assert sizes == sorted(sizes)
    for small, large in zip(inflows, inflows[1:]):
        assert large >= small - 1e-12
    # ...and L=3 already captures nearly all of the unbounded inflow —
    # the paper's justification for a small L.
    assert inflows[2] >= 0.8 * inflows[-1]


def test_ablation_damping(benchmark, engine):
    """Higher damping -> slower convergence but more link influence."""
    dataset, shared = engine

    def run():
        rows = []
        for damping in (0.5, 0.7, 0.85, 0.95):
            ranked = objectrank2(
                shared.graph,
                shared.scorer,
                KeywordQuery([QUERY]).vector(),
                damping=damping,
                tolerance=1e-6,
            )
            base_ids = set(ranked.base_weights)
            top20 = [nid for nid, _ in ranked.top_k(20)]
            outside = sum(1 for nid in top20 if nid not in base_ids)
            rows.append((damping, ranked.iterations, outside))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["damping d", "iterations", "top-20 hits outside base set"],
        rows,
        title="Ablation: damping factor",
    )
    write_result("ablation_damping", table)

    iterations = [i for _, i, _ in rows]
    assert iterations == sorted(iterations)  # more damping, more iterations
    outside = [o for _, _, o in rows]
    assert outside[-1] >= outside[0]  # more damping, more link influence


def test_ablation_base_set_weighting(benchmark, engine):
    """BM25 vs uniform vs tf-idf base sets (the OR2-vs-OR axis of Table 2)."""
    dataset, shared = engine
    topics = dataset.extras["paper_topics"]
    query = KeywordQuery.parse("xml indexing")

    def precision(ranking):
        papers = [nid for nid in ranking if nid in topics][:10]
        return sum(1 for nid in papers if topics[nid] in {"xml", "indexing"}) / 10

    def run():
        rows = []
        for name, scorer in (
            ("bm25", BM25Scorer(shared.index)),
            ("tfidf", TfIdfScorer(shared.index)),
            ("uniform", UniformScorer(shared.index)),
        ):
            ranked = objectrank2(shared.graph, scorer, query.vector())
            rows.append((name, precision(ranked.ranking())))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["base-set weighting", "topical precision@10"],
        [(n, f"{p:.2f}") for n, p in rows],
        title="Ablation: base-set weighting ('xml indexing')",
    )
    write_result("ablation_base_weighting", table)

    by_name = dict(rows)
    assert by_name["bm25"] >= by_name["uniform"]


def test_ablation_aggregation(benchmark, engine):
    """Section 5.3 aggregation functions: all keep rates convergent; sum and
    max weight the strongest evidence highest."""
    dataset, shared = engine
    result = shared.search(QUERY, top_k=5)
    base_ids = list(result.ranked.base_weights)
    explanations = [
        adjust_flows(
            build_explaining_subgraph(shared.graph, base_ids, nid, 3),
            result.scores,
            0.85,
        )
        for nid, _ in result.top[:3]
    ]

    def run():
        rows = []
        for how in ("sum", "min", "max", "avg"):
            reformulator = StructureReformulator(0.5, aggregation=how)
            after = reformulator.reformulate(dataset.transfer_schema, explanations)
            vector = after.as_vector()
            rows.append((how, after.is_convergent(), max(vector)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = format_table(
        ["aggregation", "convergent", "max rate"],
        [(h, c, f"{m:.3f}") for h, c, m in rows],
        title="Ablation: multi-object aggregation (Section 5.3)",
    )
    write_result("ablation_aggregation", table)

    assert all(convergent for _, convergent, _ in rows)
