"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  Results are
both printed (run with ``pytest benchmarks/ --benchmark-only -s`` to see them
live) and written to ``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can
quote them.

Dataset scale: the ``REPRO_BENCH_SCALE`` environment variable (default 1.0)
multiplies every dataset size, letting the harness run anywhere from laptop
to workstation scale.  At scale 1.0 the four Table 1 datasets hold roughly
40k/4k/25k/3k nodes — the paper's relative proportions at laptop size.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.datasets import load_dataset

RESULTS_DIR = Path(__file__).parent / "results"

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "7"))


def write_result(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}")


@pytest.fixture(scope="session")
def dblp_complete():
    return load_dataset("dblp_complete", scale=BENCH_SCALE, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def dblp_top():
    return load_dataset("dblp_top", scale=BENCH_SCALE, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def ds7():
    return load_dataset("ds7", scale=BENCH_SCALE, seed=BENCH_SEED)


@pytest.fixture(scope="session")
def ds7_cancer():
    return load_dataset("ds7_cancer", scale=BENCH_SCALE, seed=BENCH_SEED)
