"""Figure 15: query and reformulation performance on DBLPtop.

Paper content: (a) per-stage execution times for the initial query and four
reformulated queries — ObjectRank2 execution, explaining-subgraph creation,
explaining ObjectRank2 execution, query reformulation; (b) the number of
ObjectRank2 iterations per query, showing that warm-starting from the
previous scores accelerates the reformulated queries.

Absolute seconds differ from the paper's 2007 Power4+ machine and our
synthetic dataset is laptop-scaled; the reproduced *shape* is (1) the
iteration-count drop for warm-started reformulated queries and (2) the
full-graph ObjectRank2 execution dominating the per-iteration cost.
"""

from benchmarks.conftest import write_result
from benchmarks.perf_common import check_performance_shapes, performance_run


def test_fig15_dblp_top_performance(benchmark, dblp_top):
    run = benchmark.pedantic(
        performance_run, args=(dblp_top,), rounds=1, iterations=1
    )
    write_result("fig15_dblp_top", run.table())
    check_performance_shapes(run)
