"""Figure 10: internal survey — average precision per reformulation setting.

Paper setup (Section 6.1.1): DBLPtop, five database researchers, residual
collection evaluation, three calibration settings across the initial query
plus four reformulated queries:

    Content-Only          (C_f = 0,   C_e = 0.2)
    Content & Structure   (C_f = 0.5, C_e = 0.2)
    Structure-Only        (C_f = 0.5, C_e = 0)

Paper finding: "the structure-only reformulation performs the best.  Content
based reformulation is not effective in our setting" — precision roughly
20-45%, with structure-only on top after the first reformulations.

Our substitution: simulated expert users whose hidden relevance model is
ObjectRank2 under the [BHP04] ground-truth rates (DESIGN.md, substitutions).
The shape to reproduce is the *ordering* of the three curves and the
improvement of structure-based reformulation over the feedback iterations.
"""

import statistics

from repro.bench import ascii_chart, format_series
from repro.core import ObjectRankSystem, SystemConfig
from repro.feedback import SimulatedUser, average_precision_curve, run_feedback_session
from repro.graph import AuthorityTransferSchemaGraph
from repro.query import SearchEngine

from benchmarks.conftest import write_result

QUERIES = ["olap", "xml", "mining", "streams", "ranked search"]
USER_SEEDS = [0, 1]
FEEDBACK_ITERATIONS = 4
PRESENTED_K = 10
RELEVANCE_DEPTH = 60

SETTINGS = [
    ("content-only", SystemConfig.content_only(top_k=PRESENTED_K)),
    ("content+structure", SystemConfig.content_and_structure(top_k=PRESENTED_K)),
    ("structure-only", SystemConfig.structure_only(top_k=PRESENTED_K)),
]


def run_survey(dataset):
    """All sessions for all settings; returns setting -> precision curve."""
    initial_rates = AuthorityTransferSchemaGraph(dataset.schema, default_rate=0.3)
    engine = SearchEngine(dataset.data_graph, initial_rates)
    curves = {}
    for name, config in SETTINGS:
        traces = []
        for seed in USER_SEEDS:
            user = SimulatedUser(
                engine,
                dataset.ground_truth_rates,
                relevance_depth=RELEVANCE_DEPTH,
                seed=seed,
            )
            for query in QUERIES:
                system = ObjectRankSystem(
                    dataset.data_graph, initial_rates, config, engine=engine
                )
                traces.append(
                    run_feedback_session(
                        system, user, query, FEEDBACK_ITERATIONS, PRESENTED_K
                    )
                )
        curves[name] = average_precision_curve(traces)
    return curves


def test_fig10_internal_survey(benchmark, dblp_top):
    curves = benchmark.pedantic(run_survey, args=(dblp_top,), rounds=1, iterations=1)

    lines = ["Figure 10: internal survey, average precision per iteration",
             f"  ({len(QUERIES)} queries x {len(USER_SEEDS)} users, residual collection,"
             f" k={PRESENTED_K}, L=3)"]
    iterations = list(range(FEEDBACK_ITERATIONS + 1))
    for name, curve in curves.items():
        lines.append("  " + format_series(name, iterations, curve))
    lines.append("")
    lines.append(ascii_chart(curves, y_min=0.0, y_max=1.0,
                             title="  precision@10 per iteration"))
    write_result("fig10_internal_survey", "\n".join(lines))

    def reformulated_mean(name):
        return statistics.mean(curves[name][1:])

    # Paper shape 1: structure-only is the best reformulation strategy.
    assert reformulated_mean("structure-only") > reformulated_mean("content-only")
    # Paper shape 2: adding structure to content always helps content.
    assert reformulated_mean("content+structure") > reformulated_mean("content-only")
    # Paper shape 3: structure-based reformulation holds precision high
    # across iterations (content-only collapses under residual evaluation).
    assert min(curves["structure-only"][1:3]) > curves["content-only"][2]
