"""Extension benchmark: focused-subgraph execution vs full-graph ObjectRank2.

Section 6.2 lists "define focused subsets" among the remedies for slow
full-graph ObjectRank2, and the related work cites the Hubs of Knowledge
project's query-dependent subgraphs [SIY06].  This benchmark quantifies the
trade-off on our DBLPcomplete-scale graph: per-query focused execution at
horizons 1-4 against the exact full-graph run, measuring

* top-10 overlap with the exact ranking (quality),
* subgraph coverage (how much of the graph the horizon touches),
* wall-clock per query.

Also compares the top-k early-termination variant, which keeps the full
graph but stops the power iteration once the visible ranking is stable.
"""

import time

from repro.bench import WorkloadGenerator, format_table
from repro.query import KeywordQuery, SearchEngine
from repro.ranking import focused_objectrank2, objectrank2, objectrank2_topk

from benchmarks.conftest import write_result

NUM_QUERIES = 8
TOP_K = 10


def run_comparison(dataset):
    engine = SearchEngine(dataset.data_graph, dataset.transfer_schema)
    workload = WorkloadGenerator(dataset, seed=3).sample("topical", NUM_QUERIES)

    exact_results = {}
    exact_time = 0.0
    for query in workload:
        vector = KeywordQuery.parse(query.text).vector()
        start = time.perf_counter()
        exact_results[query.text] = objectrank2(engine.graph, engine.scorer, vector)
        exact_time += time.perf_counter() - start

    rows = []
    for horizon in (1, 2, 3, 4):
        overlap_total = 0
        coverage_total = 0.0
        elapsed = 0.0
        for query in workload:
            vector = KeywordQuery.parse(query.text).vector()
            start = time.perf_counter()
            focused = focused_objectrank2(
                engine.graph, engine.scorer, vector, horizon=horizon
            )
            elapsed += time.perf_counter() - start
            exact_top = {nid for nid, _ in exact_results[query.text].top_k(TOP_K)}
            focused_top = {nid for nid, _ in focused.ranked.top_k(TOP_K)}
            overlap_total += len(exact_top & focused_top)
            coverage_total += focused.coverage
        rows.append(
            (
                f"focused L={horizon}",
                overlap_total / (NUM_QUERIES * TOP_K),
                coverage_total / NUM_QUERIES,
                elapsed / NUM_QUERIES,
            )
        )

    topk_overlap = 0
    topk_time = 0.0
    for query in workload:
        vector = KeywordQuery.parse(query.text).vector()
        start = time.perf_counter()
        fast = objectrank2_topk(engine.graph, engine.scorer, vector, k=TOP_K)
        topk_time += time.perf_counter() - start
        exact_top = {nid for nid, _ in exact_results[query.text].top_k(TOP_K)}
        topk_overlap += len(exact_top & {nid for nid, _ in fast.top_k(TOP_K)})
    rows.append(
        ("top-k early stop", topk_overlap / (NUM_QUERIES * TOP_K), 1.0,
         topk_time / NUM_QUERIES)
    )
    rows.append(("exact full graph", 1.0, 1.0, exact_time / NUM_QUERIES))
    return rows


def test_focused_execution_tradeoff(benchmark, dblp_complete):
    rows = benchmark.pedantic(
        run_comparison, args=(dblp_complete,), rounds=1, iterations=1
    )
    table = format_table(
        ["execution mode", "top-10 overlap", "graph coverage", "sec/query"],
        [(m, f"{o:.2f}", f"{c:.2f}", f"{s:.4f}") for m, o, c, s in rows],
        title="Extension: focused execution vs exact ObjectRank2 (dblp_complete)",
    )
    write_result("focused_execution", table)

    by_mode = {mode: (overlap, coverage, sec) for mode, overlap, coverage, sec in rows}
    # Quality grows with the horizon and is near-exact by L=3.
    overlaps = [by_mode[f"focused L={h}"][0] for h in (1, 2, 3, 4)]
    assert overlaps == sorted(overlaps)
    assert by_mode["focused L=3"][0] >= 0.6
    # Early-stopped top-k matches the exact top-10 almost perfectly.
    assert by_mode["top-k early stop"][0] >= 0.9
