"""Table 2: ObjectRank2 vs (modified) ObjectRank precision of the top 10.

Paper setup: seven DBLP keyword queries (single and multi keyword); precision
of the top-10 judged by users.  ObjectRank uses the Equation 16 modification
(per-keyword scores combined with the normalizing exponent g(t) =
1/log|S(t)|) to avoid popular-keyword skew.  Paper result: ObjectRank2 is
"slightly better" — average 7.7 vs 7.5 — with the gap expected to grow on
longer text.

Our substitution: the paper's human judges become a topical oracle — the
synthetic generator labels every paper with its topic, and a retrieved paper
counts as relevant when its topic matches the query's topic.  The shape to
reproduce: ObjectRank2 >= ObjectRank on average, with the visible gap on
multi-keyword queries (the weighted base set balances keywords; the 0/1 one
cannot).
"""

from repro.bench import format_table
from repro.query import KeywordQuery
from repro.ranking import multi_keyword_objectrank, objectrank2

from benchmarks.conftest import write_result

# (query text, relevant topics, paper's OR2/OR precision out of 10)
QUERIES = [
    ("olap", {"olap"}, (10, 9)),
    ("query optimization", {"optimization"}, (10, 10)),
    ("xml", {"xml"}, (10, 10)),
    ("mining", {"mining"}, (10, 10)),
    ("proximity search", {"search"}, (10, 10)),
    ("xml indexing", {"xml", "indexing"}, (9, 8)),
    ("ranked search", {"search"}, (9, 10)),
]
TOP_K = 10


def run_comparison(dataset):
    from repro.query import SearchEngine

    engine = SearchEngine(dataset.data_graph, dataset.transfer_schema)
    topics = dataset.extras["paper_topics"]

    def topical_precision(ranking, relevant_topics):
        papers = [nid for nid in ranking if nid in topics][:TOP_K]
        hits = sum(1 for nid in papers if topics[nid] in relevant_topics)
        return hits / TOP_K

    rows = []
    for text, relevant_topics, _paper in QUERIES:
        query = KeywordQuery.parse(text)
        modern = objectrank2(engine.graph, engine.scorer, query.vector())
        classic = multi_keyword_objectrank(engine.graph, engine.index, query.keywords)
        rows.append(
            (
                text,
                topical_precision(modern.ranking(), relevant_topics),
                topical_precision(classic.ranking(), relevant_topics),
            )
        )
    return rows


def test_table2_objectrank2_vs_objectrank(benchmark, dblp_top):
    rows = benchmark.pedantic(run_comparison, args=(dblp_top,), rounds=1, iterations=1)

    display = []
    for (text, _topics, (paper_or2, paper_or)), (_, ours_or2, ours_or) in zip(
        QUERIES, rows
    ):
        display.append(
            (
                text,
                f"{paper_or2}/10",
                f"{paper_or}/10",
                f"{ours_or2 * 10:.0f}/10",
                f"{ours_or * 10:.0f}/10",
            )
        )
    mean_or2 = sum(r[1] for r in rows) / len(rows)
    mean_or = sum(r[2] for r in rows) / len(rows)
    display.append(("AVERAGE", "7.7/10", "7.5/10",
                    f"{mean_or2 * 10:.1f}/10", f"{mean_or * 10:.1f}/10"))
    table = format_table(
        ["query", "paper OR2", "paper OR", "ours OR2", "ours OR"],
        display,
        title="Table 2: ObjectRank2 vs ObjectRank, precision of top-10",
    )
    write_result("table2_or2_vs_or", table)

    # Shape: ObjectRank2 at least matches ObjectRank on average.
    assert mean_or2 >= mean_or - 1e-9
    # And never collapses on any individual query where ObjectRank works.
    for _text, ours_or2, ours_or in rows:
        assert ours_or2 >= ours_or - 0.21  # allow 2 results of slack per query
