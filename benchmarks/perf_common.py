"""Shared runner for the performance experiments (Figures 14-17, Table 3).

One run executes the paper's protocol on one dataset: an initial query, then
four feedback-and-reformulate iterations (structure+content, C_e = C_f = 0.5,
L = 3, convergence threshold 0.0001), with warm starts enabled ("Manipulating
Initial ObjectRank values").  Feedback objects come from a simulated user.

The collected rows are exactly what the paper plots:
* per-stage seconds per iteration — Figures 14a-17a's stacked bars;
* ObjectRank2 iteration counts — Figures 14b-17b;
* Explaining-ObjectRank2 iteration counts — Table 3.

Runs are cached per dataset name so the per-dataset figure benchmarks and
the Table 3 benchmark share one execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench import IterationTiming, format_table
from repro.core import ObjectRankSystem, SystemConfig
from repro.feedback import SimulatedUser
from repro.query import SearchEngine

FEEDBACK_ITERATIONS = 4
PRESENTED_K = 10
MAX_FEEDBACK_OBJECTS = 3  # survey users mark a few results, not all ten
QUERY_BY_SCHEMA = {"Paper": "olap", "EntrezGene": "cancer"}


@dataclass
class PerformanceRun:
    """All measurements from one dataset's protocol run."""

    dataset_name: str
    timings: list[IterationTiming] = field(default_factory=list)
    explaining_iterations: list[list[int]] = field(default_factory=list)
    cold_initial_iterations: int = 0

    def objectrank_iterations(self) -> list[int]:
        return [t.objectrank_iterations for t in self.timings]

    def table(self) -> str:
        rows = [
            (
                t.label,
                f"{t.search_seconds:.4f}",
                f"{t.subgraph_seconds:.4f}",
                f"{t.adjust_seconds:.4f}",
                f"{t.reformulate_seconds:.4f}",
                t.objectrank_iterations,
            )
            for t in self.timings
        ]
        return format_table(
            [
                "iteration",
                "OR2 exec (s)",
                "subgraph (s)",
                "explain OR2 (s)",
                "reformulate (s)",
                "OR2 iters",
            ],
            rows,
            title=(
                f"{self.dataset_name}: per-stage times (a) and OR2 iterations (b)"
                f" [cold-start control: {self.cold_initial_iterations} iters]"
            ),
        )


_CACHE: dict[str, PerformanceRun] = {}


def performance_run(dataset) -> PerformanceRun:
    """Execute (or return the cached) protocol run for ``dataset``."""
    if dataset.name in _CACHE:
        return _CACHE[dataset.name]

    query = QUERY_BY_SCHEMA.get(dataset.schema.labels[0])
    if query is None:  # biological schemas start with EntrezGene
        query = "cancer" if "EntrezGene" in dataset.schema.labels else "olap"

    engine = SearchEngine(dataset.data_graph, dataset.transfer_schema)
    config = SystemConfig(top_k=PRESENTED_K)  # paper defaults: Ce=Cf=0.5, L=3
    system = ObjectRankSystem(
        dataset.data_graph, dataset.transfer_schema, config, engine=engine
    )
    user = SimulatedUser(engine, dataset.ground_truth_rates, relevance_depth=30)

    run = PerformanceRun(dataset_name=dataset.name)
    # Cold-start control: the same initial query from a uniform vector
    # (Figures 14b-17b's baseline is the warm-start *saving* relative to it).
    run.cold_initial_iterations = engine.search(
        query, top_k=PRESENTED_K, rates=dataset.transfer_schema
    ).iterations
    result = system.query(query)
    seen: set[str] = set()
    for _ in range(FEEDBACK_ITERATIONS):
        presented = [
            node_id for node_id in result.ranked.ranking() if node_id not in seen
        ][:PRESENTED_K]
        seen.update(presented)
        marked = (user.judge(presented, query) or presented[:1])[:MAX_FEEDBACK_OBJECTS]
        outcome = system.feedback(marked)
        run.explaining_iterations.append(
            [e.iterations for e in outcome.explanations]
        )
        result = outcome.result
    run.timings = list(system.timings)
    _CACHE[dataset.name] = run
    return run


def check_performance_shapes(run: PerformanceRun) -> None:
    """The paper's scale-invariant structural claims, for any dataset.

    1. Warm starts: reformulated queries converge in fewer ObjectRank2
       iterations on average than the initial query (Figures 14b-17b).
    2. The whole explain-and-reformulate pipeline stays interactive: every
       stage of every iteration completes within seconds.

    Note on stage *proportions*: on the paper's million-node corpora the
    full-graph ObjectRank2 execution dominates (~28s of a ~28.5s iteration
    on DBLPcomplete); at laptop scale that stage shrinks to milliseconds,
    so the explaining/reformulation stages visibly dominate instead.  The
    proportion inversion is expected and discussed in EXPERIMENTS.md.
    """
    iterations = run.objectrank_iterations()
    reformulated_mean = sum(iterations[1:]) / len(iterations[1:])
    # Every warm-started query (initial-from-global-ObjectRank or
    # reformulated-from-previous-scores) beats the cold-start control.
    assert iterations[0] <= run.cold_initial_iterations, iterations
    assert reformulated_mean <= run.cold_initial_iterations + 0.5, (
        iterations,
        run.cold_initial_iterations,
    )

    for timing in run.timings:
        for stage_seconds in (
            timing.search_seconds,
            timing.subgraph_seconds,
            timing.adjust_seconds,
            timing.reformulate_seconds,
        ):
            assert stage_seconds < 30.0
