"""Extension benchmark: incremental ingest vs full precompute rebuild.

Measures the two costs the online-maintenance design trades against each
other on the synthetic DBLP corpus:

- **mutation throughput** — how fast :class:`repro.ingest.IngestEngine`
  absorbs content and topology mutations into its working graph/index
  (mutations buffer in microseconds; the fixpoint work is deferred to the
  refresh);
- **refresh latency** — dirty-column incremental refresh (``"exact"`` and
  ``"warm"`` modes) against the from-scratch full precompute on the same
  mutated graph, for content-only batches of growing size and for a
  topology batch (where every column is dirty and incremental ``exact``
  degenerates to the full rebuild by construction).

Every ``exact`` refresh is verified bit-identical to the full rebuild before
its timing is reported — a number for a wrong matrix is worthless.

Run under pytest (``pytest benchmarks/bench_ingest.py --benchmark-only -s``)
or directly as a script::

    PYTHONPATH=src python benchmarks/bench_ingest.py --smoke   # CI quick mode

Smoke mode drives the serve-tier path end to end: an ingest-enabled builder
service applies a mutation batch through ``QueryService.ingest``, the forced
refresh publishes the next store generation, and a 2-worker prefork cluster
picks the new generation up between requests with answers identical to the
builder's — the /ingest + generation-swap protocol under concurrent cluster
readers.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

if __name__ == "__main__":  # script mode: make `benchmarks.` importable
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

import numpy as np

from repro.bench import format_table
from repro.datasets import load_dataset
from repro.ingest import IngestEngine
from repro.ranking.precompute import PrecomputedRanker
from repro.serve import QueryService, ServeConfig
from repro.serve.cluster import ClusterConfig, ClusterSupervisor

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED, write_result

DATASET = "dblp_tiny"
MIN_DF = 2
CONTENT_BATCH_SIZES = (1, 4, 16)
MUTATION_COUNT = 2000


def _paper_ids(data_graph) -> list[str]:
    return [n.node_id for n in data_graph.nodes() if n.label == "Paper"]


def _content_batch(ingest: IngestEngine, papers: list[str], size: int) -> None:
    """Rewrite ``size`` paper titles, introducing shared vocabulary terms."""
    for i in range(size):
        paper = papers[i % len(papers)]
        ingest.update_node(
            paper, {"title": f"an improved practical study number {i}"}
        )


def _assert_bit_identical(incremental, full) -> None:
    assert incremental.keywords == full.keywords, "keyword order diverged"
    for keyword in full.keywords:
        assert np.array_equal(
            incremental.vector(keyword), full.vector(keyword)
        ), f"column {keyword!r} differs from the full rebuild"


def run_mutation_throughput(dataset) -> str:
    ingest = IngestEngine(
        dataset.data_graph, dataset.transfer_schema, min_document_frequency=MIN_DF
    )
    papers = _paper_ids(dataset.data_graph)
    rows = []
    start = time.perf_counter()
    for i in range(MUTATION_COUNT):
        ingest.update_node(
            papers[i % len(papers)], {"title": f"rewritten title {i}"}
        )
    elapsed = time.perf_counter() - start
    rows.append(["update_node (content)", MUTATION_COUNT,
                 f"{MUTATION_COUNT / elapsed:,.0f}"])
    start = time.perf_counter()
    for i in range(MUTATION_COUNT):
        ingest.add_node(f"bench:{i}", "Paper", {"title": f"benchmark paper {i}"})
    elapsed = time.perf_counter() - start
    rows.append(["add_node (topology)", MUTATION_COUNT,
                 f"{MUTATION_COUNT / elapsed:,.0f}"])
    return format_table(
        ["mutation", "count", "mutations/s"],
        rows,
        title=f"Ingest mutation throughput ({DATASET}, buffered, no refresh)",
    )


def run_refresh_latency(dataset) -> str:
    rows = []
    for size in CONTENT_BATCH_SIZES:
        ingest = IngestEngine(
            dataset.data_graph,
            dataset.transfer_schema,
            min_document_frequency=MIN_DF,
        )
        first = ingest.refresh()
        papers = _paper_ids(dataset.data_graph)
        _content_batch(ingest, papers, size)

        start = time.perf_counter()
        exact = ingest.refresh(previous=first.ranker, mode="exact")
        exact_s = time.perf_counter() - start
        start = time.perf_counter()
        full = PrecomputedRanker(
            exact.graph, exact.index, min_document_frequency=MIN_DF
        )
        full_s = time.perf_counter() - start
        _assert_bit_identical(exact.ranker, full)
        rows.append([
            f"content x{size}",
            f"{len(exact.recomputed)}/{len(exact.ranker.keywords)}",
            f"{exact_s * 1e3:.1f}",
            f"{full_s * 1e3:.1f}",
            f"{full_s / exact_s:.1f}x",
        ])

    # Topology batch: every column is dirty; exact degenerates to the full
    # rebuild, warm saves iterations instead.
    ingest = IngestEngine(
        dataset.data_graph, dataset.transfer_schema, min_document_frequency=MIN_DF
    )
    first = ingest.refresh()
    papers = _paper_ids(dataset.data_graph)
    ingest.add_node("bench:new", "Paper", {"title": "a practical study"})
    ingest.add_edge("bench:new", papers[0], "cites")
    start = time.perf_counter()
    exact = ingest.refresh(previous=first.ranker, mode="exact")
    exact_s = time.perf_counter() - start
    start = time.perf_counter()
    full = PrecomputedRanker(
        exact.graph, exact.index, min_document_frequency=MIN_DF
    )
    full_s = time.perf_counter() - start
    _assert_bit_identical(exact.ranker, full)
    rows.append([
        "topology x2",
        f"{len(exact.recomputed)}/{len(exact.ranker.keywords)}",
        f"{exact_s * 1e3:.1f}",
        f"{full_s * 1e3:.1f}",
        f"{full_s / exact_s:.1f}x",
    ])

    ingest.add_edge(papers[1], papers[0], "cites")
    warm = ingest.refresh(previous=exact.ranker, mode="warm")
    rows.append([
        "topology x1 (warm)",
        f"{len(warm.recomputed)}/{len(warm.ranker.keywords)}",
        f"{warm.elapsed_seconds * 1e3:.1f}",
        "-",
        f"{warm.iterations} iters vs {exact.iterations} cold",
    ])
    return format_table(
        ["batch", "recomputed cols", "incremental ms", "full rebuild ms", "speedup"],
        rows,
        title=f"Dirty-column refresh vs full precompute ({DATASET}, min_df={MIN_DF})",
    )


def run_ingest_bench() -> None:
    dataset = load_dataset(DATASET, scale=BENCH_SCALE, seed=BENCH_SEED)
    throughput = run_mutation_throughput(dataset)
    latency = run_refresh_latency(
        load_dataset(DATASET, scale=BENCH_SCALE, seed=BENCH_SEED)
    )
    notes = (
        "incremental wins when mutations localize (few dirty columns); once "
        "a batch dirties most of the vocabulary — every topology change does "
        "— the blocked full rebuild is the faster path, and warm mode only "
        "recovers iterations, not the blocking. The staleness bound, not "
        "per-mutation refreshes, is what keeps serving cheap under traffic."
    )
    write_result("ingest", throughput + "\n\n" + latency + "\n\n" + notes)


def test_ingest_benchmark():
    """Pytest entry point (run with --benchmark-only -s)."""
    run_ingest_bench()


# ---------------------------------------------------------------------------
# CI smoke mode: /ingest -> forced refresh -> generation swap -> 2 workers
# ---------------------------------------------------------------------------


def _wait_for_workers(supervisor, count: int, timeout: float = 15.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        workers = supervisor.workers()
        if len(workers) >= count:
            return workers
        time.sleep(0.05)
    raise AssertionError(f"cluster never reached {count} workers")


def run_ingest_smoke() -> int:
    dataset_name = "dblp_tiny"
    query = "mining"
    with tempfile.TemporaryDirectory() as store_root:
        builder = QueryService(
            ServeConfig(
                datasets=(dataset_name,),
                store_dir=store_root,
                store_refresh_seconds=0.0,
                ingest=True,
            ),
        )
        builder.preload()
        runtime = builder.runtime(dataset_name)
        seed_ranker = PrecomputedRanker(
            runtime.engine.graph, runtime.engine.index, min_document_frequency=MIN_DF
        )
        from repro.store import build_and_publish

        build_and_publish(Path(store_root) / dataset_name, seed_ranker, dataset_name)
        before = builder.search(dataset_name, query)
        assert before["served_from"] == "store", before["served_from"]
        print(f"smoke: store generation 1 published under {store_root}")

        supervisor = ClusterSupervisor(
            ClusterConfig(
                serve=ServeConfig(datasets=(dataset_name,), store_dir=store_root),
                workers=2,
                monitor_interval=0.05,
            ),
            service=builder,
        )
        supervisor.start()
        try:
            workers = _wait_for_workers(supervisor, 2)
            host, _ = supervisor.address

            def worker_answer(status, generation):
                url = (
                    f"http://{host}:{status.control_port}"
                    f"/search?dataset={dataset_name}&q={query}&top_k=10"
                )
                deadline = time.monotonic() + 15.0
                while True:
                    with urllib.request.urlopen(url, timeout=30) as response:
                        body = json.loads(response.read())
                    if (
                        body.get("store_generation") == generation
                        or time.monotonic() > deadline
                    ):
                        return body

            for status in workers:
                body = worker_answer(status, 1)
                assert body["store_generation"] == 1
                assert body["results"] == before["results"]
            print("smoke: generation 1 answers identical across 2 workers")

            # The builder absorbs a mutation batch; the forced refresh
            # publishes generation 2 through the swap protocol. The inbound
            # citation gives the new paper authority flow, not just a match.
            citing = _paper_ids(
                load_dataset(dataset_name).data_graph
            )[0]
            out = builder.ingest(
                dataset_name,
                [
                    {
                        "op": "add_node",
                        "node_id": "paper:ingested",
                        "label": "Paper",
                        "attributes": {"title": "mining the mining miners"},
                    },
                    {
                        "op": "add_edge",
                        "source": citing,
                        "target": "paper:ingested",
                        "role": "cites",
                    },
                ],
                refresh="force",
            )
            assert not out["errors"], out["errors"]
            assert out["staleness"]["pending_mutations"] == 0
            print(
                f"smoke: /ingest applied {out['applied']} mutations, refresh "
                f"recomputed {out['refresh']['recomputed_columns']} columns"
            )

            after = builder.search(dataset_name, query, top_k=10)
            assert after["store_generation"] == 2
            wide = builder.search(dataset_name, query, top_k=500)
            ingested = [
                r for r in wide["results"] if r["id"] == "paper:ingested"
            ]
            assert ingested and ingested[0]["score"] > 0, (
                "refreshed generation does not rank the ingested paper"
            )

            # Workers' local graphs predate the mutation, so the ingested
            # node degrades to an id-only entry on their side; ids and
            # scores must still be bit-identical to the builder's answer.
            expected_scores = [(r["id"], r["score"]) for r in after["results"]]
            for status in supervisor.workers():
                body = worker_answer(status, 2)
                assert body["store_generation"] == 2, (
                    f"worker {status.worker_id} never saw generation 2"
                )
                got = [(r["id"], r["score"]) for r in body["results"]]
                assert got == expected_scores, (
                    f"worker {status.worker_id} diverged after the ingest swap"
                )
            print("smoke: ingest-published generation reached both workers, "
                  "answers identical")
        finally:
            clean = supervisor.stop()
        assert clean, "workers did not drain cleanly on SIGTERM"
        print("smoke OK: /ingest refresh swapped a generation under live readers")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="quick CI mode: /ingest + generation swap across a 2-worker cluster",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        return run_ingest_smoke()
    run_ingest_bench()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
