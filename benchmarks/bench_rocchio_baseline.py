"""Extension benchmark: traditional Rocchio feedback vs link-based feedback.

The related-work section argues that classic term-selection feedback
("[Efth93, Har88, MSB98, ...] works well for traditional IR which is
content-based.  For link-based metrics like ObjectRank this yields poor
results") — the justification for the paper's structure-based reformulation.
This benchmark makes the claim concrete on our corpus: four feedback
strategies drive the same session protocol, judged by the same oracle:

* ``rocchio+ir``: Rocchio query expansion re-ranking with *pure IR*
  (the fully traditional pipeline);
* ``rocchio+or2``: Rocchio expansion feeding ObjectRank2 (terms only);
* ``content-or2``: the paper's content-based reformulation (C_e=0.2);
* ``structure-or2``: the paper's structure-based reformulation (C_f=0.5).
"""

import statistics

from repro.bench import format_series
from repro.core import ObjectRankSystem, SystemConfig
from repro.feedback import (
    ResidualCollection,
    RocchioReformulator,
    SimulatedUser,
)
from repro.graph import AuthorityTransferSchemaGraph
from repro.query import SearchEngine
from repro.ranking import ir_only_rank

from benchmarks.conftest import write_result

QUERIES = ["olap", "xml", "mining"]
ITERATIONS = 3
K = 10
DEPTH = 60


def _session_rocchio(engine, user, query, use_objectrank):
    rocchio = RocchioReformulator(num_terms=5)
    residual = ResidualCollection()
    relevant = user.relevant_set(query)
    vector = engine.query_vector(query)
    precisions = []
    for _ in range(ITERATIONS + 1):
        if use_objectrank:
            ranked = engine.search(vector, top_k=K).ranked
        else:
            ranked = ir_only_rank(engine.graph, engine.scorer, vector)
        ranking = ranked.ranking()
        presented = residual.present(ranking, K)
        precisions.append(residual.precision(ranking, relevant, K))
        marked = user.judge(presented, query)
        residual.mark_seen(presented)
        vector = rocchio.reformulate(vector, engine.index, marked)
    return precisions


def _session_paper(engine, user, query, config, dataset, initial_rates):
    from repro.feedback import run_feedback_session

    system = ObjectRankSystem(dataset.data_graph, initial_rates, config, engine=engine)
    return run_feedback_session(system, user, query, ITERATIONS, K).precisions


def run_comparison(dataset):
    initial_rates = AuthorityTransferSchemaGraph(dataset.schema, default_rate=0.3)
    engine = SearchEngine(dataset.data_graph, initial_rates)
    user = SimulatedUser(engine, dataset.ground_truth_rates, relevance_depth=DEPTH)

    curves = {}
    for name in ("rocchio+ir", "rocchio+or2", "content-or2", "structure-or2"):
        per_query = []
        for query in QUERIES:
            engine.graph.set_transfer_rates(initial_rates)
            if name == "rocchio+ir":
                per_query.append(_session_rocchio(engine, user, query, False))
            elif name == "rocchio+or2":
                per_query.append(_session_rocchio(engine, user, query, True))
            elif name == "content-or2":
                per_query.append(
                    _session_paper(
                        engine, user, query,
                        SystemConfig.content_only(top_k=K), dataset, initial_rates,
                    )
                )
            else:
                per_query.append(
                    _session_paper(
                        engine, user, query,
                        SystemConfig.structure_only(top_k=K), dataset, initial_rates,
                    )
                )
        curves[name] = [
            sum(session[i] for session in per_query) / len(per_query)
            for i in range(ITERATIONS + 1)
        ]
    return curves


def test_rocchio_vs_link_based_feedback(benchmark, dblp_top):
    curves = benchmark.pedantic(run_comparison, args=(dblp_top,), rounds=1, iterations=1)

    lines = ["Extension: traditional (Rocchio) vs link-based feedback"]
    for name, curve in curves.items():
        lines.append("  " + format_series(name, range(len(curve)), curve))
    write_result("rocchio_baseline", "\n".join(lines))

    def mean_reformulated(name):
        return statistics.mean(curves[name][1:])

    # The related-work claim: structure-based (link-aware) feedback beats any
    # purely term-based strategy under the same judge and budget.
    assert mean_reformulated("structure-or2") > mean_reformulated("rocchio+or2")
    assert mean_reformulated("structure-or2") > mean_reformulated("rocchio+ir")
    # Honest side observation (recorded, not from the paper): with *untrained*
    # transfer rates, ObjectRank2 under term-only feedback can do worse than
    # plain IR — wrong rates actively misroute authority, and no amount of
    # term reweighting fixes them.  Only the structure-based component can,
    # which is exactly the paper's argument for it.
    assert mean_reformulated("structure-or2") > 2 * mean_reformulated("rocchio+or2")
