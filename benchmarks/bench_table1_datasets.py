"""Table 1: dataset sizes (#nodes, #edges, serialized size).

Paper values (real data):

    DBLPcomplete   876,110 nodes   4,166,626 edges   3950 MB
    DBLPtop         22,653 nodes     166,960 edges    136 MB
    DS7            699,199 nodes   3,533,756 edges   2189 MB
    DS7cancer       37,796 nodes     138,146 edges    111 MB

Our synthetic datasets are laptop-scaled; the *shape* to check is the
relative ordering: each complete corpus dwarfs its focused subset, and the
subsets stay in the tens-of-thousands-of-edges range where interactive
ObjectRank2 is feasible (the paper's motivation for DBLPtop/DS7cancer).
"""

from repro.bench import format_table
from repro.datasets import dataset_statistics

from benchmarks.conftest import write_result

PAPER_ROWS = [
    ("DBLPcomplete", 876_110, 4_166_626, "3950"),
    ("DBLPtop", 22_653, 166_960, "136"),
    ("DS7", 699_199, 3_533_756, "2189"),
    ("DS7cancer", 37_796, 138_146, "111"),
]


def test_table1_dataset_statistics(
    benchmark, dblp_complete, dblp_top, ds7, ds7_cancer
):
    datasets = [dblp_complete, dblp_top, ds7, ds7_cancer]

    def compute():
        return [dataset_statistics(dataset) for dataset in datasets]

    stats = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = []
    for (paper_name, paper_nodes, paper_edges, paper_mb), stat in zip(
        PAPER_ROWS, stats
    ):
        rows.append(
            (
                paper_name,
                f"{paper_nodes:,}/{paper_edges:,}",
                f"{stat.num_nodes:,}/{stat.num_edges:,}",
                f"{paper_mb} MB",
                f"{stat.size_megabytes:.1f} MB",
            )
        )
    table = format_table(
        ["dataset", "paper nodes/edges", "ours nodes/edges", "paper size", "ours size"],
        rows,
        title="Table 1: datasets (paper = real corpora, ours = synthetic laptop scale)",
    )
    write_result("table1_datasets", table)

    # Shape assertions: complete >> focused subset, in both families.
    assert stats[0].num_nodes > 4 * stats[1].num_nodes  # DBLPcomplete >> DBLPtop
    assert stats[2].num_nodes > 4 * stats[3].num_nodes  # DS7 >> DS7cancer
    assert stats[0].num_edges > stats[1].num_edges
    assert stats[2].num_edges > stats[3].num_edges
