"""Figure 11: training the authority transfer rates (internal survey).

Paper setup: rates initialized to 0.3; structure-only feedback (C_e = 0);
after each of six iterations the learned ``UserVector`` is compared to the
[BHP04] ground truth ``ObjVector = [0.7, 0, 0.2, 0.2, 0.3, 0.3, 0.3, 0.1]``
by cosine similarity, for C_f in {0.1, 0.3, 0.5, 0.7, 0.9}.

Paper findings to reproduce:
* similarity rises with iterations, then flattens/declines (overfitting);
* larger C_f values peak in fewer iterations ("larger C_f values lead to
  faster peak, since the adjustment of the rates is less smooth").
"""

from repro.bench import ascii_chart, format_series
from repro.datasets import dblp_edge_order
from repro.feedback import train_transfer_rates

from benchmarks.conftest import write_result

QUERIES = ["olap", "mining", "xml", "streams"]
ADJUSTMENT_FACTORS = [0.1, 0.3, 0.5, 0.7, 0.9]
ITERATIONS = 5


def run_training(dataset):
    order = dblp_edge_order(dataset.schema)
    return [
        train_transfer_rates(
            dataset,
            QUERIES,
            adjustment_factor=factor,
            iterations=ITERATIONS,
            edge_order=order,
        )
        for factor in ADJUSTMENT_FACTORS
    ]


def test_fig11_rate_training(benchmark, dblp_top):
    curves = benchmark.pedantic(run_training, args=(dblp_top,), rounds=1, iterations=1)

    lines = [
        "Figure 11: cosine(UserVector, ObjVector) per training iteration",
        f"  (DBLPtop, {len(QUERIES)} queries, structure-only, rates init 0.3)",
    ]
    for curve in curves:
        lines.append(
            "  "
            + format_series(
                f"Cf={curve.adjustment_factor}",
                range(len(curve.similarities)),
                curve.similarities,
            )
            + f"   peak@{curve.peak_iteration}"
        )
    lines.append("")
    lines.append(
        ascii_chart(
            {f"Cf={c.adjustment_factor}": c.similarities for c in curves},
            y_min=0.78,
            y_max=1.0,
            title="  cosine similarity per iteration",
        )
    )
    write_result("fig11_training", "\n".join(lines))

    # Shape 1: training helps — every C_f beats the untrained similarity.
    for curve in curves:
        assert max(curve.similarities) > curve.similarities[0] + 0.01

    # Shape 2: similarity rises then flattens/overfits; the largest C_f must
    # show the overfitting drop from its peak by the final iteration.
    sharpest = curves[-1]
    assert sharpest.similarities[-1] <= max(sharpest.similarities)

    # Shape 3: larger C_f peaks no later than the smoothest C_f.
    assert curves[-1].peak_iteration <= curves[0].peak_iteration
