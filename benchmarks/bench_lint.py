"""Runtime of the ``repro lint`` invariant analyzer over ``src/``.

The lint CI job carries a hard budget — no caching, well under ten seconds —
so this benchmark records what the analyzer actually costs on the current
tree (files scanned, findings kept/baselined/suppressed, wall time serial
and with ``--jobs`` process-pool parallelism, and a per-checker breakdown)
in ``benchmarks/results/lint.txt``.  Future PRs that add checkers or grow
the tree can see at a glance whether checker cost regressed.

Run directly, as the CI smoke hook, or under pytest::

    PYTHONPATH=src python benchmarks/bench_lint.py
    PYTHONPATH=src python benchmarks/bench_lint.py --smoke
    PYTHONPATH=src python -m pytest benchmarks/bench_lint.py -s

``--smoke`` skips the timing repetitions and only verifies the contract CI
cares about: the parallel runner produces a byte-identical report to the
serial one, inside the budget.

Unlike the ranking benchmarks this one needs no numpy and no dataset — the
analyzer is stdlib-only by design.
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

if __name__ == "__main__":  # script mode: make `benchmarks.` importable
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.conftest import write_result

from repro.analysis import all_checkers, load_baseline, run_lint

REPO_ROOT = Path(__file__).resolve().parent.parent
#: The CI budget the lint job promises ("must run in <10s", ISSUE 3).
BUDGET_SECONDS = 10.0
#: Timed repetitions; the reported wall time is the best of these.
REPEATS = 3
#: Worker count for the parallel runs; floored at 2 so the process-pool
#: path is exercised even on single-CPU runners (where the speedup line
#: will honestly read < 1x).
JOBS = max(2, min(4, os.cpu_count() or 1))
#: A serial smoke run slower than this factor times the recorded wall
#: time in ``benchmarks/results/lint.txt`` fails CI — a checker that
#: quietly went quadratic shows up here, not in a user's pre-commit hook.
REGRESSION_FACTOR = 2.0
#: Never fail the regression gate under this floor — recorded times from a
#: fast machine must not make a slow-but-fine CI runner red.
REGRESSION_FLOOR_SECONDS = 3.0

#: The abstract-interpretation rule groups, timed separately so the
#: results file shows what each *domain* costs on top of parse + graph.
_DOMAIN_GROUPS = [
    ("taint domain (RL014)", ["RL014"]),
    ("value domain (RL015-RL017)", ["RL015", "RL016", "RL017"]),
]


def _same_report(serial, parallel) -> bool:
    return (
        serial.findings == parallel.findings
        and serial.baselined == parallel.baselined
        and serial.suppressed == parallel.suppressed
        and serial.parse_errors == parallel.parse_errors
        and serial.files_scanned == parallel.files_scanned
    )


def run_benchmark() -> str:
    baseline = load_baseline(REPO_ROOT / ".repro-lint-baseline.json")
    src = REPO_ROOT / "src"

    best_serial = None
    report = None
    for _ in range(REPEATS):
        started = time.perf_counter()
        report = run_lint([src], baseline=baseline, root=REPO_ROOT)
        elapsed = time.perf_counter() - started
        best_serial = elapsed if best_serial is None else min(best_serial, elapsed)

    best_parallel = None
    parallel_report = None
    for _ in range(REPEATS):
        started = time.perf_counter()
        parallel_report = run_lint(
            [src], baseline=baseline, root=REPO_ROOT, jobs=JOBS
        )
        elapsed = time.perf_counter() - started
        best_parallel = (
            elapsed if best_parallel is None else min(best_parallel, elapsed)
        )
    assert _same_report(report, parallel_report), (
        "parallel lint diverged from serial"
    )

    per_checker: list[tuple[str, float, int]] = []
    for code in report.checker_codes:
        started = time.perf_counter()
        only = run_lint([src], checkers=all_checkers([code]), root=REPO_ROOT)
        per_checker.append(
            (code, time.perf_counter() - started, len(only.findings))
        )

    per_domain: list[tuple[str, float, int]] = []
    for label, codes in _DOMAIN_GROUPS:
        group = [code for code in codes if code in report.checker_codes]
        if not group:
            continue
        started = time.perf_counter()
        only = run_lint(
            [src], checkers=all_checkers(group), root=REPO_ROOT
        )
        per_domain.append(
            (label, time.perf_counter() - started, len(only.findings))
        )

    phases = _phase_breakdown(src)

    lines = [
        f"repro lint over src/ — {report.files_scanned} files, "
        f"{len(report.checker_codes)} checkers (best of {REPEATS})",
        f"  wall time (serial)   : {best_serial * 1000:8.1f} ms   "
        f"(CI budget {BUDGET_SECONDS:.0f} s)",
        f"  wall time (--jobs {JOBS}) : {best_parallel * 1000:8.1f} ms   "
        f"(speedup {best_serial / best_parallel:.2f}x, report identical)",
        f"  new findings         : {len(report.findings):5d}",
        f"  baselined            : {len(report.baselined):5d}",
        f"  pragma-suppressed    : {len(report.suppressed):5d}",
        f"  parse errors         : {len(report.parse_errors):5d}",
        "  per-phase:",
    ]
    for label, seconds in phases:
        lines.append(f"    {label:<22}: {seconds * 1000:7.1f} ms")
    lines.append("  per-domain (full pass with only that domain's rules):")
    for label, seconds, raw_findings in per_domain:
        lines.append(
            f"    {label:<30}: {seconds * 1000:7.1f} ms   "
            f"{raw_findings} non-baselined finding(s)"
        )
    lines.append("  per-checker (full pass incl. parse & project build):")
    for code, seconds, raw_findings in per_checker:
        lines.append(
            f"    {code}: {seconds * 1000:7.1f} ms   "
            f"{raw_findings} non-baselined finding(s)"
        )
    return "\n".join(lines)


def _phase_breakdown(src: Path) -> list[tuple[str, float]]:
    """Where a full serial run spends its time, one level deeper than the
    report's ``phase_seconds``: the project-build phase is split into
    parse + call-graph construction vs the summary fixpoint."""
    from repro.analysis.callgraph import Project
    from repro.analysis.runner import discover_files

    baseline = load_baseline(REPO_ROOT / ".repro-lint-baseline.json")
    report = run_lint([src], baseline=baseline, root=REPO_ROOT)

    files = [
        (str(path), path.relative_to(REPO_ROOT).as_posix())
        for path in discover_files([src])
    ]
    started = time.perf_counter()
    project = Project.from_paths(files)
    graph_seconds = time.perf_counter() - started
    started = time.perf_counter()
    project.summaries()
    summary_seconds = time.perf_counter() - started

    return [
        ("per-file checkers", report.phase_seconds.get("files", 0.0)),
        ("parse + call graph", graph_seconds),
        ("function summaries", summary_seconds),
        ("project checkers", report.phase_seconds.get("project-check", 0.0)),
    ]


def _recorded_serial_seconds() -> float | None:
    """The serial wall time recorded in ``benchmarks/results/lint.txt``."""
    results = REPO_ROOT / "benchmarks" / "results" / "lint.txt"
    try:
        for line in results.read_text().splitlines():
            if "wall time (serial)" in line:
                return float(line.split(":")[1].split("ms")[0]) / 1000.0
    except (OSError, ValueError, IndexError):
        return None
    return None


def run_smoke() -> str:
    """One serial + one parallel pass; assert byte-identical, within budget.

    The identity check renders both reports to SARIF (the format CI
    uploads, and the only one carrying no wall-clock timings) and compares
    the strings — covering the summary-dependent RL010–RL017 results and
    their ``codeFlows``, not just the finding lists.  The serial pass is
    also held against the *recorded* benchmark result: slower than
    ``REGRESSION_FACTOR`` times ``benchmarks/results/lint.txt`` fails, so
    a checker that quietly regressed the runtime budget turns CI red
    before it lands.
    """
    from repro.analysis import render

    baseline = load_baseline(REPO_ROOT / ".repro-lint-baseline.json")
    src = REPO_ROOT / "src"
    started = time.perf_counter()
    serial = run_lint([src], baseline=baseline, root=REPO_ROOT)
    serial_elapsed = time.perf_counter() - started
    parallel = run_lint([src], baseline=baseline, root=REPO_ROOT, jobs=JOBS)
    elapsed = time.perf_counter() - started
    assert _same_report(serial, parallel), "parallel lint diverged from serial"
    assert render(serial, "sarif") == render(parallel, "sarif"), (
        "parallel SARIF log is not byte-identical to serial"
    )
    assert elapsed < 2 * BUDGET_SECONDS, f"smoke pass took {elapsed:.1f}s"
    recorded = _recorded_serial_seconds()
    budget_note = ""
    if recorded is not None:
        allowed = max(
            REGRESSION_FACTOR * recorded, REGRESSION_FLOOR_SECONDS
        )
        assert serial_elapsed < allowed, (
            f"serial lint took {serial_elapsed:.2f}s — more than "
            f"{REGRESSION_FACTOR:.0f}x the recorded {recorded:.2f}s "
            "(benchmarks/results/lint.txt); rerun the benchmark if the "
            "slowdown is intentional"
        )
        budget_note = (
            f", serial {serial_elapsed:.2f}s within {allowed:.1f}s budget"
        )
    return (
        f"lint smoke OK: {serial.files_scanned} files, "
        f"{len(serial.findings)} new finding(s), serial == --jobs {JOBS} "
        f"byte-identical, {elapsed:.2f}s total{budget_note}"
    )


def test_lint_runtime_within_ci_budget():
    """Pytest entry: the analyzer stays inside the CI job's time budget."""
    text = run_benchmark()
    write_result("lint", text)
    wall_ms = float(text.splitlines()[1].split(":")[1].split("ms")[0])
    assert wall_ms / 1000.0 < BUDGET_SECONDS


if __name__ == "__main__":
    if "--smoke" in sys.argv[1:]:
        print(run_smoke())
    else:
        write_result("lint", run_benchmark())
