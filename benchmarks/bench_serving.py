"""Extension benchmark: serving latency and throughput of ``repro.serve``.

Boots the threaded HTTP server in-process on an ephemeral port over the
``dblp_complete`` corpus (the paper-scale DBLP graph, where a cold query
pays a real power iteration) and measures, through real HTTP round trips:

- **cold** latency — ``mode=live`` runs the full ObjectRank2 power iteration
  on every request (the engine itself is pre-warmed with a different query so
  the number excludes one-time index/graph construction);
- **cached** latency — repeated identical ``mode=auto`` queries served from
  the LRU result cache (verified against the ``/metrics`` hit counter);
- **precomputed** latency — ``mode=precomputed`` blends per-keyword
  ObjectRank vectors, no power iteration at query time;
- throughput at concurrency 1/4/16 with a ``ThreadPoolExecutor`` client.

The cache must undercut the cold path by >=10x — that is the acceptance bar
for result caching being worth its memory.
"""

from __future__ import annotations

import json
import statistics
import threading
import time
import urllib.request
from concurrent.futures import ThreadPoolExecutor

from repro.bench import format_table
from repro.datasets import load_dataset
from repro.serve import QueryService, ServeConfig, create_server

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED, write_result

DATASET = "dblp_complete"
QUERY = "olap"
WARMUP_QUERY = "mining"
LATENCY_SAMPLES = 30
THROUGHPUT_REQUESTS = 120
CONCURRENCY_LEVELS = (1, 4, 16)


def _get(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=60) as response:
        assert response.status == 200
        return json.loads(response.read())


def _metric(base: str, name: str) -> float:
    text = urllib.request.urlopen(f"{base}/metrics", timeout=60).read().decode()
    for line in text.splitlines():
        if line.startswith(f"{name} "):
            return float(line.split()[1])
    return 0.0


def _latency(url: str, samples: int = LATENCY_SAMPLES) -> tuple[float, float]:
    """Median and p95 request latency in seconds over ``samples`` round trips."""
    times = []
    for _ in range(samples):
        start = time.perf_counter()
        _get(url)
        times.append(time.perf_counter() - start)
    times.sort()
    return statistics.median(times), times[int(0.95 * (len(times) - 1))]


def _throughput(base: str, concurrency: int) -> float:
    url = f"{base}/search?dataset={DATASET}&q={QUERY}"
    with ThreadPoolExecutor(max_workers=concurrency) as pool:
        start = time.perf_counter()
        list(pool.map(lambda _: _get(url), range(THROUGHPUT_REQUESTS)))
        elapsed = time.perf_counter() - start
    return THROUGHPUT_REQUESTS / elapsed


def run_serving_bench():
    dataset = load_dataset(DATASET, scale=BENCH_SCALE, seed=BENCH_SEED)
    service = QueryService(
        ServeConfig(
            datasets=(DATASET,),
            precompute_keywords=(QUERY,),
            max_concurrency=32,
        ),
        datasets={DATASET: dataset},
    )
    service.preload()
    server = create_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = server.url
    try:
        # Warm the engine (BM25 index, transfer matrix) with a *different*
        # query so "cold" measures ranking, not one-time construction.
        _get(f"{base}/search?dataset={DATASET}&q={WARMUP_QUERY}&mode=live")

        cold_med, cold_p95 = _latency(
            f"{base}/search?dataset={DATASET}&q={QUERY}&mode=live"
        )
        pre_med, pre_p95 = _latency(
            f"{base}/search?dataset={DATASET}&q={QUERY}&mode=precomputed"
        )

        hits_before = _metric(base, "repro_cache_hits_total")
        cached_url = f"{base}/search?dataset={DATASET}&q={QUERY}"
        _get(cached_url)  # populate the cache entry
        cached_med, cached_p95 = _latency(cached_url)
        cache_hits = _metric(base, "repro_cache_hits_total") - hits_before

        throughput = {c: _throughput(base, c) for c in CONCURRENCY_LEVELS}
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)

    return {
        "nodes": dataset.num_nodes,
        "edges": dataset.num_edges,
        "cold": (cold_med, cold_p95),
        "precomputed": (pre_med, pre_p95),
        "cached": (cached_med, cached_p95),
        "cache_hits": cache_hits,
        "throughput": throughput,
    }


def test_serving_latency_and_throughput(benchmark):
    results = benchmark.pedantic(run_serving_bench, rounds=1, iterations=1)

    cold_med, cold_p95 = results["cold"]
    pre_med, pre_p95 = results["precomputed"]
    cached_med, cached_p95 = results["cached"]

    latency_table = format_table(
        ["path", "median (ms)", "p95 (ms)", "speedup vs cold"],
        [
            ("cold (live ObjectRank2)", f"{cold_med * 1e3:.3f}",
             f"{cold_p95 * 1e3:.3f}", "1.0x"),
            ("precomputed [BHP04]", f"{pre_med * 1e3:.3f}",
             f"{pre_p95 * 1e3:.3f}", f"{cold_med / pre_med:.1f}x"),
            ("cached (LRU hit)", f"{cached_med * 1e3:.3f}",
             f"{cached_p95 * 1e3:.3f}", f"{cold_med / cached_med:.1f}x"),
        ],
        title=(
            f"Extension: serving latency over HTTP, {DATASET} "
            f"({results['nodes']} nodes, {results['edges']} edges)"
        ),
    )
    throughput_table = format_table(
        ["concurrency", "requests/s (cached query)"],
        [(c, f"{rps:.0f}") for c, rps in sorted(results["throughput"].items())],
        title="Extension: serving throughput (threaded clients, one server)",
    )
    write_result("serving", latency_table + "\n\n" + throughput_table)

    # The /metrics hit counter proves every measured "cached" request was a
    # genuine cache hit, not a silent fallback to live ranking.
    assert results["cache_hits"] >= LATENCY_SAMPLES

    # Acceptance: a repeated identical query must be >=10x cheaper than cold.
    assert cached_med * 10 <= cold_med, (
        f"cache hit {cached_med * 1e3:.3f}ms not 10x faster than "
        f"cold {cold_med * 1e3:.3f}ms"
    )

    # Precomputed vectors skip the power iteration, so they beat live ranking.
    assert pre_med < cold_med

    # More client threads must not reduce total throughput.
    throughput = results["throughput"]
    assert throughput[16] >= throughput[1] * 0.8
