"""Extension benchmark: serving latency and throughput of ``repro.serve``.

Boots the threaded HTTP server in-process on an ephemeral port over the
``dblp_complete`` corpus (the paper-scale DBLP graph, where a cold query
pays a real power iteration) and measures, through real HTTP round trips:

- **cold** latency — ``mode=live`` runs the full ObjectRank2 power iteration
  on every request (the engine itself is pre-warmed with a different query so
  the number excludes one-time index/graph construction);
- **cached** latency — repeated identical ``mode=auto`` queries served from
  the LRU result cache (verified against the ``/metrics`` hit counter);
- **precomputed** latency — ``mode=precomputed`` blends per-keyword
  ObjectRank vectors, no power iteration at query time;
- throughput at concurrency 1/4/16 with a ``ThreadPoolExecutor`` client.

The cache must undercut the cold path by >=10x — that is the acceptance bar
for result caching being worth its memory.

The second half benchmarks the **prefork cluster** over the mmap score
store: a worker-count sweep (1/2/4) driven by wrk-style raw-socket
keep-alive clients, a bit-identity check of the mmap ``/search`` path
against the in-memory precomputed path, and a mid-benchmark generation
swap validated torn-read-free (every concurrent response must match one of
the two published score sets exactly, never a mixture).  Results land in
``benchmarks/results/serving_cluster.txt``.

Run under pytest (``pytest benchmarks/bench_serving.py --benchmark-only -s``)
or directly as a script::

    PYTHONPATH=src python benchmarks/bench_serving.py --smoke   # CI quick mode

Smoke mode builds a store over the tiny dataset, serves it from a 2-worker
cluster, and checks answer identity across workers and across a generation
swap (no throughput bar — tiny graphs are overhead-dominated).
"""

from __future__ import annotations

import argparse
import json
import socket
import statistics
import sys
import tempfile
import threading
import time
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

if __name__ == "__main__":  # script mode: make `benchmarks.` importable
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from repro.bench import format_table
from repro.datasets import load_dataset
from repro.ranking.precompute import PrecomputedRanker
from repro.serve import QueryService, ServeConfig, create_server
from repro.serve.cluster import ClusterConfig, ClusterSupervisor
from repro.store import build_and_publish

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED, write_result

DATASET = "dblp_complete"
QUERY = "olap"
WARMUP_QUERY = "mining"
LATENCY_SAMPLES = 30
THROUGHPUT_REQUESTS = 120
CONCURRENCY_LEVELS = (1, 4, 16)


def _get(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=60) as response:
        assert response.status == 200
        return json.loads(response.read())


def _metric(base: str, name: str) -> float:
    text = urllib.request.urlopen(f"{base}/metrics", timeout=60).read().decode()
    for line in text.splitlines():
        if line.startswith(f"{name} "):
            return float(line.split()[1])
    return 0.0


def _latency(url: str, samples: int = LATENCY_SAMPLES) -> tuple[float, float]:
    """Median and p95 request latency in seconds over ``samples`` round trips."""
    times = []
    for _ in range(samples):
        start = time.perf_counter()
        _get(url)
        times.append(time.perf_counter() - start)
    times.sort()
    return statistics.median(times), times[int(0.95 * (len(times) - 1))]


def _throughput(base: str, concurrency: int) -> float:
    url = f"{base}/search?dataset={DATASET}&q={QUERY}"
    with ThreadPoolExecutor(max_workers=concurrency) as pool:
        start = time.perf_counter()
        list(pool.map(lambda _: _get(url), range(THROUGHPUT_REQUESTS)))
        elapsed = time.perf_counter() - start
    return THROUGHPUT_REQUESTS / elapsed


def run_serving_bench():
    dataset = load_dataset(DATASET, scale=BENCH_SCALE, seed=BENCH_SEED)
    service = QueryService(
        ServeConfig(
            datasets=(DATASET,),
            precompute_keywords=(QUERY,),
            max_concurrency=32,
        ),
        datasets={DATASET: dataset},
    )
    service.preload()
    server = create_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = server.url
    try:
        # Warm the engine (BM25 index, transfer matrix) with a *different*
        # query so "cold" measures ranking, not one-time construction.
        _get(f"{base}/search?dataset={DATASET}&q={WARMUP_QUERY}&mode=live")

        cold_med, cold_p95 = _latency(
            f"{base}/search?dataset={DATASET}&q={QUERY}&mode=live"
        )
        pre_med, pre_p95 = _latency(
            f"{base}/search?dataset={DATASET}&q={QUERY}&mode=precomputed"
        )

        hits_before = _metric(base, "repro_cache_hits_total")
        cached_url = f"{base}/search?dataset={DATASET}&q={QUERY}"
        _get(cached_url)  # populate the cache entry
        cached_med, cached_p95 = _latency(cached_url)
        cache_hits = _metric(base, "repro_cache_hits_total") - hits_before

        throughput = {c: _throughput(base, c) for c in CONCURRENCY_LEVELS}
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)

    return {
        "nodes": dataset.num_nodes,
        "edges": dataset.num_edges,
        "cold": (cold_med, cold_p95),
        "precomputed": (pre_med, pre_p95),
        "cached": (cached_med, cached_p95),
        "cache_hits": cache_hits,
        "throughput": throughput,
    }


def test_serving_latency_and_throughput(benchmark):
    results = benchmark.pedantic(run_serving_bench, rounds=1, iterations=1)

    cold_med, cold_p95 = results["cold"]
    pre_med, pre_p95 = results["precomputed"]
    cached_med, cached_p95 = results["cached"]

    latency_table = format_table(
        ["path", "median (ms)", "p95 (ms)", "speedup vs cold"],
        [
            ("cold (live ObjectRank2)", f"{cold_med * 1e3:.3f}",
             f"{cold_p95 * 1e3:.3f}", "1.0x"),
            ("precomputed [BHP04]", f"{pre_med * 1e3:.3f}",
             f"{pre_p95 * 1e3:.3f}", f"{cold_med / pre_med:.1f}x"),
            ("cached (LRU hit)", f"{cached_med * 1e3:.3f}",
             f"{cached_p95 * 1e3:.3f}", f"{cold_med / cached_med:.1f}x"),
        ],
        title=(
            f"Extension: serving latency over HTTP, {DATASET} "
            f"({results['nodes']} nodes, {results['edges']} edges)"
        ),
    )
    throughput_table = format_table(
        ["concurrency", "requests/s (cached query)"],
        [(c, f"{rps:.0f}") for c, rps in sorted(results["throughput"].items())],
        title="Extension: serving throughput (threaded clients, one server)",
    )
    write_result("serving", latency_table + "\n\n" + throughput_table)

    # The /metrics hit counter proves every measured "cached" request was a
    # genuine cache hit, not a silent fallback to live ranking.
    assert results["cache_hits"] >= LATENCY_SAMPLES

    # Acceptance: a repeated identical query must be >=10x cheaper than cold.
    assert cached_med * 10 <= cold_med, (
        f"cache hit {cached_med * 1e3:.3f}ms not 10x faster than "
        f"cold {cold_med * 1e3:.3f}ms"
    )

    # Precomputed vectors skip the power iteration, so they beat live ranking.
    assert pre_med < cold_med

    # More client threads must not reduce total throughput.
    throughput = results["throughput"]
    assert throughput[16] >= throughput[1] * 0.8


# ---------------------------------------------------------------------------
# Prefork cluster over the mmap score store
# ---------------------------------------------------------------------------

WORKER_SWEEP = (1, 2, 4)
CLUSTER_REQUESTS = 6000
CLUSTER_ROUNDS = 2
SWAP_REQUESTS = 4000
SWAP_WORKERS = 4
# Single-process throughput recorded in results/serving.txt before the
# cluster tier existed (923-1127 req/s across concurrency levels).  The
# sweep's acceptance bar is 3x the top of that range.
BASELINE_SINGLE_PROCESS_RPS = 1127.0
CLUSTER_SPEEDUP_BAR = 3.0


def _raw_fetch(sock: socket.socket, reader, request: bytes) -> bytes:
    """One keep-alive round trip; returns the response body."""
    sock.sendall(request)
    status = reader.readline()
    if b" 200 " not in status:
        raise AssertionError(f"non-200 response: {status!r}")
    length = 0
    while True:
        line = reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        if line.lower().startswith(b"content-length:"):
            length = int(line.split(b":", 1)[1])
    return reader.read(length)


def _keepalive_client(host, port, path, count, collect=None):
    """Issue ``count`` GETs over one persistent connection.

    The stdlib HTTP client burns ~150us per response in the email-parser
    header machinery — on a shared core that understates server capacity,
    so throughput runs use this minimal wrk-style client instead.  When
    ``collect`` is given every JSON body is parsed and appended to it.
    """
    request = (
        f"GET {path} HTTP/1.1\r\nHost: {host}:{port}\r\n"
        "Connection: keep-alive\r\n\r\n"
    ).encode()
    sock = socket.create_connection((host, port), timeout=60)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    reader = sock.makefile("rb")
    try:
        for _ in range(count):
            body = _raw_fetch(sock, reader, request)
            if collect is not None:
                collect(json.loads(body))
    finally:
        reader.close()
        sock.close()
    return count


def _cluster_throughput(host, port, path, total, concurrency):
    per = total // concurrency
    with ThreadPoolExecutor(max_workers=concurrency) as pool:
        start = time.perf_counter()
        done = sum(
            pool.map(
                lambda _: _keepalive_client(host, port, path, per),
                range(concurrency),
            )
        )
        return done / (time.perf_counter() - start)


def _wait_for_workers(supervisor, expected, timeout=15.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        workers = supervisor.workers()
        if len(workers) >= expected:
            return workers
        time.sleep(0.05)
    raise AssertionError(f"cluster never reached {expected} live workers")


def _store_rankers(runtime, keywords):
    """Two precomputed rankers with distinct score content.

    The second uses a different damping factor, so generations 1 and 2
    disagree on every score — a torn or mislabelled read during the swap
    phase cannot masquerade as a valid response.
    """
    primary = PrecomputedRanker(
        runtime.engine.graph, runtime.engine.index, keywords=keywords
    )
    variant = PrecomputedRanker(
        runtime.engine.graph, runtime.engine.index, keywords=keywords, damping=0.7
    )
    return primary, variant


def run_cluster_bench(store_root: str):
    dataset = load_dataset(DATASET, scale=BENCH_SCALE, seed=BENCH_SEED)
    path = f"/search?dataset={DATASET}&q={QUERY}"

    service = QueryService(
        ServeConfig(datasets=(DATASET,), store_dir=store_root, max_concurrency=64),
        datasets={DATASET: dataset},
    )
    service.preload()
    runtime = service.runtime(DATASET)
    ranker, variant = _store_rankers(runtime, (QUERY,))
    generation = build_and_publish(
        Path(store_root) / DATASET, ranker, DATASET
    ).generation

    # Bit-identity: the mmap path must reproduce the in-memory precomputed
    # path exactly — same ranked ids, same scores, same coverage.
    memory_service = QueryService(
        ServeConfig(datasets=(DATASET,), precompute_keywords=(QUERY,)),
        datasets={DATASET: dataset},
    )
    from_store = service.search(DATASET, QUERY)
    from_memory = memory_service.search(DATASET, QUERY)
    assert from_store["served_from"] == "store"
    assert from_memory["served_from"] == "precomputed"
    bit_identical = (
        from_store["results"] == from_memory["results"]
        and from_store["coverage"] == from_memory["coverage"]
    )
    expected_by_generation = {generation: from_store["results"]}

    throughput = {}
    for workers in WORKER_SWEEP:
        supervisor = ClusterSupervisor(
            ClusterConfig(
                serve=ServeConfig(
                    datasets=(DATASET,), store_dir=store_root, max_concurrency=64
                ),
                workers=workers,
            ),
            service=service,
        )
        supervisor.start()
        try:
            _wait_for_workers(supervisor, workers)
            host, port = supervisor.address
            concurrency = max(2, workers)
            _cluster_throughput(host, port, path, 400, concurrency)  # warm
            throughput[workers] = max(
                _cluster_throughput(
                    host, port, path, CLUSTER_REQUESTS, concurrency
                )
                for _ in range(CLUSTER_ROUNDS)
            )
        finally:
            supervisor.stop()

    # Mid-benchmark generation swap under full concurrent load.
    supervisor = ClusterSupervisor(
        ClusterConfig(
            serve=ServeConfig(
                datasets=(DATASET,), store_dir=store_root, max_concurrency=64
            ),
            workers=SWAP_WORKERS,
        ),
        service=service,
    )
    responses = []
    lock = threading.Lock()

    def collect(body):
        with lock:
            responses.append(body)

    supervisor.start()
    try:
        _wait_for_workers(supervisor, SWAP_WORKERS)
        host, port = supervisor.address

        def publish_when_half_done():
            while True:
                with lock:
                    if len(responses) >= SWAP_REQUESTS // 3:
                        break
                time.sleep(0.01)
            build_and_publish(Path(store_root) / DATASET, variant, DATASET)

        publisher = threading.Thread(target=publish_when_half_done, daemon=True)
        publisher.start()
        concurrency = max(2, SWAP_WORKERS)
        per = SWAP_REQUESTS // concurrency
        with ThreadPoolExecutor(max_workers=concurrency) as pool:
            list(
                pool.map(
                    lambda _: _keepalive_client(host, port, path, per, collect),
                    range(concurrency),
                )
            )
        publisher.join(timeout=30)
    finally:
        supervisor.stop()

    # The parent shares the store dir, so its next search loads generation 2
    # and yields the expected post-swap results.
    after = service.search(DATASET, QUERY)
    assert after["store_generation"] == generation + 1
    expected_by_generation[generation + 1] = after["results"]
    assert (
        expected_by_generation[generation]
        != expected_by_generation[generation + 1]
    ), "damping variant produced identical scores; swap check would be vacuous"

    torn = 0
    seen_generations = set()
    for body in responses:
        visible = body.get("store_generation")
        seen_generations.add(visible)
        if (
            body.get("served_from") not in ("store", "cache")
            or visible not in expected_by_generation
            or body["results"] != expected_by_generation[visible]
        ):
            torn += 1

    return {
        "nodes": dataset.num_nodes,
        "edges": dataset.num_edges,
        "throughput": throughput,
        "bit_identical": bit_identical,
        "swap_responses": len(responses),
        "swap_generations": seen_generations,
        "torn": torn,
    }


def test_cluster_worker_sweep(benchmark, tmp_path):
    results = benchmark.pedantic(
        run_cluster_bench, args=(str(tmp_path / "stores"),), rounds=1, iterations=1
    )

    throughput = results["throughput"]
    sweep_table = format_table(
        ["workers", "requests/s (cached, keep-alive)", "vs single-process baseline"],
        [
            (w, f"{rps:.0f}", f"{rps / BASELINE_SINGLE_PROCESS_RPS:.1f}x")
            for w, rps in sorted(throughput.items())
        ],
        title=(
            f"Extension: prefork cluster over the mmap score store, {DATASET} "
            f"({results['nodes']} nodes, {results['edges']} edges)"
        ),
    )
    notes = "\n".join(
        [
            f"single-process baseline: {BASELINE_SINGLE_PROCESS_RPS:.0f} req/s "
            "(results/serving.txt, stdlib client, one connection per request)",
            "mmap bit-identity vs in-memory precomputed path: "
            + ("ok" if results["bit_identical"] else "FAILED"),
            f"generation swap under load: {results['swap_responses']} responses "
            f"across generations {sorted(results['swap_generations'])}, "
            f"torn reads: {results['torn']}",
        ]
    )
    write_result("serving_cluster", sweep_table + "\n\n" + notes)

    assert results["bit_identical"], "mmap /search diverged from in-memory path"

    # Acceptance: 4 workers must clear 3x the recorded single-process ceiling.
    best = throughput[max(WORKER_SWEEP)]
    assert best >= CLUSTER_SPEEDUP_BAR * BASELINE_SINGLE_PROCESS_RPS, (
        f"{best:.0f} req/s at {max(WORKER_SWEEP)} workers is under "
        f"{CLUSTER_SPEEDUP_BAR}x the {BASELINE_SINGLE_PROCESS_RPS:.0f} req/s baseline"
    )

    # The swap must have happened mid-run and every response must match one
    # published generation exactly — no torn or mislabelled reads.
    assert len(results["swap_generations"]) == 2, results["swap_generations"]
    assert results["torn"] == 0, f"{results['torn']} torn reads during swap"


# ---------------------------------------------------------------------------
# CI smoke mode: store build -> 2-worker cluster -> swap, answers identical
# ---------------------------------------------------------------------------


def run_cluster_smoke() -> int:
    dataset_name = "dblp_tiny"
    query = "mining"
    with tempfile.TemporaryDirectory() as store_root:
        service = QueryService(
            ServeConfig(datasets=(dataset_name,), store_dir=store_root),
        )
        service.preload()
        runtime = service.runtime(dataset_name)
        ranker, variant = _store_rankers(runtime, (query,))
        build_and_publish(Path(store_root) / dataset_name, ranker, dataset_name)

        expected = service.search(dataset_name, query)
        assert expected["served_from"] == "store", expected["served_from"]
        print(f"smoke: store generation 1 published under {store_root}")

        supervisor = ClusterSupervisor(
            ClusterConfig(
                serve=ServeConfig(datasets=(dataset_name,), store_dir=store_root),
                workers=2,
                monitor_interval=0.05,
            ),
            service=service,
        )
        supervisor.start()
        try:
            workers = _wait_for_workers(supervisor, 2)
            host, port = supervisor.address
            print(f"smoke: 2 workers serving on http://{host}:{port}")

            def worker_answer(status, generation):
                url = (
                    f"http://{host}:{status.control_port}"
                    f"/search?dataset={dataset_name}&q={query}"
                )
                deadline = time.monotonic() + 15.0
                while True:
                    with urllib.request.urlopen(url, timeout=30) as response:
                        body = json.loads(response.read())
                    if (
                        body.get("store_generation") == generation
                        or time.monotonic() > deadline
                    ):
                        return body

            # Every worker must give the main listener's answer, bit-identical.
            for status in workers:
                body = worker_answer(status, 1)
                assert body["store_generation"] == 1, body.get("store_generation")
                assert body["results"] == expected["results"], (
                    f"worker {status.worker_id} diverged on generation 1"
                )
            print("smoke: generation 1 answers identical across workers")

            build_and_publish(Path(store_root) / dataset_name, variant, dataset_name)
            swapped = service.search(dataset_name, query)
            assert swapped["store_generation"] == 2
            assert swapped["results"] != expected["results"]

            # Workers pick up generation 2 between requests, no restart.
            for status in supervisor.workers():
                body = worker_answer(status, 2)
                assert body["store_generation"] == 2, (
                    f"worker {status.worker_id} never saw generation 2"
                )
                assert body["results"] == swapped["results"], (
                    f"worker {status.worker_id} diverged after the swap"
                )
            print("smoke: generation swap picked up by every worker, answers identical")

            metrics = supervisor.aggregate_metrics()
            assert 'worker_id="' in metrics
            assert "repro_cluster_workers 2" in metrics
            print("smoke: aggregate /metrics carries worker_id labels")
        finally:
            clean = supervisor.stop()
        assert clean, "workers did not drain cleanly on SIGTERM"
        print("smoke OK: store built, 2 workers identical across a generation swap")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="quick CI mode: tiny dataset, 2 workers, swap-identity checks only",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        return run_cluster_smoke()
    with tempfile.TemporaryDirectory() as store_root:
        results = run_cluster_bench(store_root)
    for workers, rps in sorted(results["throughput"].items()):
        print(f"workers={workers}: {rps:.0f} req/s")
    print(f"torn reads during swap: {results['torn']}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
